"""The partition-based dependence testing driver (the paper's Section 3).

For a pair of references to the same array:

1. Partition the subscript positions into separable positions and minimal
   coupled groups (Section 2.2).
2. Classify each separable subscript as ZIV, SIV, or MIV and apply the
   single-subscript test for its class.
3. Apply the Delta test to each coupled group.
4. If any test proves independence, no dependence exists.
5. Otherwise merge all direction/distance information into a single
   :class:`~repro.dirvec.vectors.DependenceInfo` for the pair.

This is the algorithm PFC and ParaScope implement; the optional
:class:`~repro.instrument.TestRecorder` collects the Table 3 statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.classify.pairs import PairContext
from repro.classify.partition import Partition, partition_subscripts
from repro.classify.subscript import SubscriptKind, classify
from repro.delta.delta import DEFAULT_OPTIONS, DeltaOptions, delta_test
from repro.dirvec.vectors import DependenceInfo
from repro.instrument import TestRecorder, maybe_record
from repro.ir.context import SymbolEnv
from repro.ir.loop import AccessSite
from repro.single.miv import banerjee_gcd_test
from repro.single.outcome import TestOutcome
from repro.single.rdiv import rdiv_test
from repro.single.siv import siv_test
from repro.single.ziv import ziv_test


@dataclass
class DependenceResult:
    """The driver's verdict on one ordered reference pair.

    ``independent`` — some test proved the references never overlap.
    ``info`` — merged per-index direction/distance knowledge (meaningful
    only when not independent).
    ``exact`` — every contributing test was exact, so the reported
    dependence really exists (not just "could not be disproven").
    """

    context: PairContext
    independent: bool
    info: DependenceInfo
    exact: bool
    outcomes: List[TestOutcome] = field(default_factory=list)

    @property
    def direction_vectors(self):
        """Possible direction vectors over the common loops (empty if independent)."""
        if self.independent:
            return frozenset()
        return self.info.direction_vectors()

    def __str__(self) -> str:
        if self.independent:
            return "independent"
        from repro.dirvec.vectors import format_vector_set

        return f"dependence {format_vector_set(self.direction_vectors)}"


def test_dependence(
    src_site: AccessSite,
    sink_site: AccessSite,
    symbols: Optional[SymbolEnv] = None,
    recorder: Optional[TestRecorder] = None,
    delta_options: DeltaOptions = DEFAULT_OPTIONS,
    context: Optional[PairContext] = None,
) -> DependenceResult:
    """Run the full partition-based algorithm on one ordered reference pair.

    A prebuilt ``context`` for the pair may be passed to avoid constructing
    it twice (the caching engine builds one to derive the canonical key and
    hands it through here on a miss).
    """
    if src_site.ref.array != sink_site.ref.array:
        raise ValueError(
            f"references name different arrays: "
            f"{src_site.ref.array} vs {sink_site.ref.array}"
        )
    if context is None:
        context = PairContext(src_site, sink_site, symbols)
    info = DependenceInfo(context.common_indices)
    result = DependenceResult(context, independent=False, info=info, exact=True)
    if context.rank_mismatch:
        # Non-conforming references: assume a dependence with no information.
        result.exact = False
        return result
    partitions = partition_subscripts(context.subscripts, context)
    for partition in partitions:
        outcome = _test_partition(partition, context, recorder, delta_options)
        result.outcomes.append(outcome)
        if not outcome.applicable:
            result.exact = False
            continue
        if outcome.independent:
            result.independent = True
            result.exact = result.exact and outcome.exact
            return result
        if not outcome.exact:
            result.exact = False
        for index, constraint in outcome.constraints.items():
            if index in info.indices:
                info.merge_index(index, constraint)
        for coupling in outcome.couplings:
            info.add_coupling(*coupling)
    if info.refuted:
        # Merged constraints became inconsistent (e.g. conflicting exact
        # distances from two separable positions sharing no index cannot
        # happen, but couplings can empty the vector set).
        result.independent = True
    return result


def _test_partition(
    partition: Partition,
    context: PairContext,
    recorder: Optional[TestRecorder],
    delta_options: DeltaOptions,
) -> TestOutcome:
    if not partition.is_separable:
        return delta_test(partition.pairs, context, recorder, delta_options)
    pair = partition.pairs[0]
    kind = classify(pair, context)
    if kind is SubscriptKind.NONLINEAR:
        return TestOutcome.not_applicable("nonlinear")
    if kind is SubscriptKind.ZIV:
        return maybe_record(recorder, ziv_test(pair, context))
    if kind.is_siv:
        return maybe_record(recorder, siv_test(pair, context))
    if kind is SubscriptKind.RDIV:
        outcome = maybe_record(recorder, rdiv_test(pair, context))
        if outcome.applicable:
            return outcome
        # Symbolic RDIV shapes fall back to the general MIV test.
        return maybe_record(recorder, banerjee_gcd_test(pair, context))
    return maybe_record(recorder, banerjee_gcd_test(pair, context))


# Keep pytest from collecting the driver entry point when imported into
# test modules (its name begins with "test_").
test_dependence.__test__ = False  # type: ignore[attr-defined]
