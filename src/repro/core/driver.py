"""The partition-based dependence testing driver (the paper's Section 3).

For a pair of references to the same array:

1. Partition the subscript positions into separable positions and minimal
   coupled groups (Section 2.2).
2. Classify each separable subscript as ZIV, SIV, or MIV and apply the
   single-subscript test for its class.
3. Apply the Delta test to each coupled group.
4. If any test proves independence, no dependence exists.
5. Otherwise merge all direction/distance information into a single
   :class:`~repro.dirvec.vectors.DependenceInfo` for the pair.

This is the algorithm PFC and ParaScope implement; the optional
:class:`~repro.instrument.TestRecorder` collects the Table 3 statistics.

Two fast-path hooks overlay the algorithm without changing its output:

* a precompiled :class:`~repro.core.plan.TestPlan` replays a previously
  recorded partition shape and per-partition dispatch decision, skipping
  ``partition_subscripts`` and ``classify`` for structurally identical
  pairs (callers must validate the plan against the pair's canonical key
  via ``plan.check(key)`` first);
* a :class:`~repro.engine.profile.PhaseProfile` (duck-typed: anything with
  ``add_test``) accumulates per-test-tier wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import FrozenSet, List, Optional, Tuple

from repro.classify.pairs import PairContext, SubscriptPair
from repro.classify.partition import partition_subscripts
from repro.classify.subscript import SubscriptKind, classify
from repro.core.plan import PlanAction, PlanRecorder, TestPlan
from repro.delta.delta import DEFAULT_OPTIONS, DeltaOptions, delta_test
from repro.dirvec.vectors import DependenceInfo, DirectionVector
from repro.instrument import TestRecorder, maybe_record
from repro.ir.context import SymbolEnv
from repro.ir.loop import AccessSite
from repro.single.miv import banerjee_gcd_test
from repro.single.outcome import TestOutcome
from repro.single.rdiv import rdiv_test
from repro.single.siv import siv_test
from repro.single.ziv import ziv_test


@dataclass
class DependenceResult:
    """The driver's verdict on one ordered reference pair.

    ``independent`` — some test proved the references never overlap.
    ``info`` — merged per-index direction/distance knowledge (meaningful
    only when not independent).
    ``exact`` — every contributing test was exact, so the reported
    dependence really exists (not just "could not be disproven").
    """

    context: PairContext
    independent: bool
    info: DependenceInfo
    exact: bool
    outcomes: List[TestOutcome] = field(default_factory=list)
    #: Cache-engine shortcut: the precomputed direction-vector set of a
    #: rehydrated verdict (vectors are name-free, so the canonical entry's
    #: set is the pair's).  None for fresh driver results.
    cached_vectors: Optional[FrozenSet[DirectionVector]] = field(
        default=None, repr=False, compare=False
    )
    #: True when this verdict was *not* computed but assumed after a test
    #: failure (crash, injected fault, exhausted step budget).  Assumed
    #: verdicts are maximally conservative: dependence with every
    #: direction vector possible.  ``failure`` carries the reason.
    assumed: bool = False
    failure: Optional[str] = None

    @property
    def direction_vectors(self):
        """Possible direction vectors over the common loops (empty if independent)."""
        if self.independent:
            return frozenset()
        if self.cached_vectors is None:
            # Memoized: a miss needs the set twice (once to build edges,
            # once to store the canonical entry), and expanding the
            # constraint system dominates both.
            self.cached_vectors = frozenset(self.info.direction_vectors())
        return self.cached_vectors

    def __str__(self) -> str:
        if self.independent:
            return "independent"
        from repro.dirvec.vectors import format_vector_set

        text = f"dependence {format_vector_set(self.direction_vectors)}"
        if self.assumed:
            text += " [assumed]"
        return text


def assumed_dependence_result(
    context: PairContext, reason: str
) -> DependenceResult:
    """The maximally conservative verdict for a pair whose test failed.

    Every common index is left unconstrained, so the direction-vector set
    is the full ``{<, =, >}`` product — an all-``*`` edge.  The verdict is
    inexact and tagged ``assumed=True`` with the failure ``reason``, so
    graph consumers and reports can tell degradation from real analysis.
    Never independent: degradation must not invent parallelism.
    """
    return DependenceResult(
        context=context,
        independent=False,
        info=DependenceInfo(context.common_indices),
        exact=False,
        assumed=True,
        failure=reason,
    )


def test_dependence(
    src_site: AccessSite,
    sink_site: AccessSite,
    symbols: Optional[SymbolEnv] = None,
    recorder: Optional[TestRecorder] = None,
    delta_options: DeltaOptions = DEFAULT_OPTIONS,
    context: Optional[PairContext] = None,
    plan: Optional[TestPlan] = None,
    plan_recorder: Optional[PlanRecorder] = None,
    profile=None,
    budget=None,
    dispatcher=None,
) -> DependenceResult:
    """Run the full partition-based algorithm on one ordered reference pair.

    A prebuilt ``context`` for the pair may be passed to avoid constructing
    it twice (the caching engine builds one to derive the canonical key and
    hands it through here on a miss).  ``plan`` replays a precompiled
    dispatch schedule for the pair's shape; ``plan_recorder`` records one
    while the driver derives the schedule from scratch.  Both are dispatch
    shortcuts only — every test still runs on this pair's own subscripts.

    ``budget`` is an optional step allowance (duck-typed: anything with
    ``spend(n)``, normally a :class:`repro.engine.faults.StepBudget`);
    one unit is charged per partition dispatch and the Delta test charges
    per reduction pass, so a pathological pair raises
    ``BudgetExceededError`` instead of monopolizing the process.

    ``dispatcher`` overrides the per-partition classify-and-test step: a
    callable with the signature of :func:`default_dispatch` that may serve
    a precomputed outcome for a partition (the batched backend's hook) and
    must fall back to :func:`default_dispatch` otherwise.  Everything else
    — budget charging, plan recording, constraint merging, early exit — is
    unaffected, so a dispatcher that returns the outcomes the default
    dispatch would produce yields byte-identical results.
    """
    if src_site.ref.array != sink_site.ref.array:
        raise ValueError(
            f"references name different arrays: "
            f"{src_site.ref.array} vs {sink_site.ref.array}"
        )
    if context is None:
        context = PairContext(src_site, sink_site, symbols)
    info = DependenceInfo(context.common_indices)
    result = DependenceResult(context, independent=False, info=info, exact=True)
    if context.rank_mismatch:
        # Non-conforming references: assume a dependence with no information.
        result.exact = False
        return result

    if plan is not None:
        subscripts = context.subscripts
        schedule: List[Tuple[List[SubscriptPair], Tuple[int, ...], Optional[PlanAction]]] = [
            ([subscripts[p] for p in positions], positions, action)
            for positions, action in plan.steps
        ]
    else:
        schedule = [
            (partition.pairs, partition.positions, None)
            for partition in partition_subscripts(context.subscripts, context)
        ]

    for pairs, positions, action in schedule:
        if budget is not None:
            budget.spend(1)
        if dispatcher is not None:
            outcome, action = dispatcher(
                pairs, positions, action, context, recorder, delta_options,
                profile, budget,
            )
        elif action is None:
            outcome, action = _dispatch(
                pairs, context, recorder, delta_options, profile, budget
            )
        else:
            outcome = _replay(
                action, pairs, context, recorder, delta_options, profile, budget
            )
        if plan_recorder is not None:
            plan_recorder.add(positions, action)
        result.outcomes.append(outcome)
        if not outcome.applicable:
            result.exact = False
            continue
        if outcome.independent:
            result.independent = True
            result.exact = result.exact and outcome.exact
            return result
        if not outcome.exact:
            result.exact = False
        for index, constraint in outcome.constraints.items():
            if index in info.indices:
                info.merge_index(index, constraint)
        for coupling in outcome.couplings:
            info.add_coupling(*coupling)
    if info.refuted:
        # Merged constraints became inconsistent (e.g. conflicting exact
        # distances from two separable positions sharing no index cannot
        # happen, but couplings can empty the vector set).
        result.independent = True
    return result


def default_dispatch(
    pairs: List[SubscriptPair],
    positions: Tuple[int, ...],
    action: Optional[PlanAction],
    context: PairContext,
    recorder: Optional[TestRecorder],
    delta_options: DeltaOptions,
    profile,
    budget=None,
) -> Tuple[TestOutcome, PlanAction]:
    """The driver's own per-partition step, in the ``dispatcher`` signature.

    Custom dispatchers (see :func:`test_dependence`) delegate here for any
    partition they have no precomputed outcome for; ``action`` is the plan
    action being replayed, or None when the schedule was derived fresh.
    """
    if action is None:
        return _dispatch(pairs, context, recorder, delta_options, profile, budget)
    return (
        _replay(action, pairs, context, recorder, delta_options, profile, budget),
        action,
    )


def _timed(profile, tier: str, func, *args):
    """Run one test, attributing its wall time to ``tier`` when profiling."""
    if profile is None:
        return func(*args)
    start = perf_counter()
    try:
        return func(*args)
    finally:
        profile.add_test(tier, perf_counter() - start)


def _dispatch(
    pairs: List[SubscriptPair],
    context: PairContext,
    recorder: Optional[TestRecorder],
    delta_options: DeltaOptions,
    profile,
    budget=None,
) -> Tuple[TestOutcome, PlanAction]:
    """Classify a partition and run its test; report the dispatch decision."""
    if len(pairs) > 1:
        outcome = _timed(
            profile, "delta", delta_test, pairs, context, recorder,
            delta_options, budget,
        )
        return outcome, PlanAction.DELTA
    pair = pairs[0]
    kind = classify(pair, context)
    if kind is SubscriptKind.NONLINEAR:
        return TestOutcome.not_applicable("nonlinear"), PlanAction.NONLINEAR
    if kind is SubscriptKind.ZIV:
        outcome = maybe_record(recorder, _timed(profile, "ziv", ziv_test, pair, context))
        return outcome, PlanAction.ZIV
    if kind.is_siv:
        outcome = maybe_record(recorder, _timed(profile, "siv", siv_test, pair, context))
        return outcome, PlanAction.SIV
    if kind is SubscriptKind.RDIV:
        outcome = maybe_record(recorder, _timed(profile, "rdiv", rdiv_test, pair, context))
        if outcome.applicable:
            return outcome, PlanAction.RDIV
        # Symbolic RDIV shapes fall back to the general MIV test.
        outcome = maybe_record(
            recorder, _timed(profile, "miv", banerjee_gcd_test, pair, context)
        )
        return outcome, PlanAction.RDIV_MIV
    outcome = maybe_record(
        recorder, _timed(profile, "miv", banerjee_gcd_test, pair, context)
    )
    return outcome, PlanAction.MIV


def _replay(
    action: PlanAction,
    pairs: List[SubscriptPair],
    context: PairContext,
    recorder: Optional[TestRecorder],
    delta_options: DeltaOptions,
    profile,
    budget=None,
) -> TestOutcome:
    """Run the test a plan resolved a partition to, skipping classification.

    The canonical key determines classification, so a checked plan's action
    is always the one ``classify`` would pick; the RDIV arm still keeps the
    applicability fallback so even a hypothetical divergence degrades to
    exactly the fresh driver's behavior.
    """
    if action is PlanAction.DELTA:
        return _timed(
            profile, "delta", delta_test, pairs, context, recorder,
            delta_options, budget,
        )
    pair = pairs[0]
    if action is PlanAction.NONLINEAR:
        return TestOutcome.not_applicable("nonlinear")
    if action is PlanAction.ZIV:
        return maybe_record(recorder, _timed(profile, "ziv", ziv_test, pair, context))
    if action is PlanAction.SIV:
        return maybe_record(recorder, _timed(profile, "siv", siv_test, pair, context))
    if action is PlanAction.RDIV:
        outcome = maybe_record(recorder, _timed(profile, "rdiv", rdiv_test, pair, context))
        if outcome.applicable:
            return outcome
        return maybe_record(
            recorder, _timed(profile, "miv", banerjee_gcd_test, pair, context)
        )
    # RDIV_MIV (RDIV preconditions failed at record time) and MIV both run
    # the general test; the fresh path records the failed RDIV attempt as
    # not-applicable, which the recorder never counts, so skipping the
    # re-attempt is observation-equivalent.
    return maybe_record(
        recorder, _timed(profile, "miv", banerjee_gcd_test, pair, context)
    )


# Keep pytest from collecting the driver entry point when imported into
# test modules (its name begins with "test_").
test_dependence.__test__ = False  # type: ignore[attr-defined]
