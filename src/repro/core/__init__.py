"""The paper's primary contribution: the partition-based testing driver."""

from repro.core.driver import DependenceResult, test_dependence

__all__ = ["DependenceResult", "test_dependence"]
