"""Precompiled test plans: the driver's dispatch, recorded once per shape.

The partition-based driver does the same structural work for every pair it
tests: partition the subscript positions (Section 2.2), classify each
separable position (Section 3), and walk the classify→dispatch ladder to
the test that finally runs.  For structurally identical pairs — the
overwhelmingly common case the paper's empirical study documents — all of
that re-derivation produces the same answer every time.

A :class:`TestPlan` captures the derivation for one canonical pair key:
the partition shape (which subscript positions group together, in driver
order) and the :class:`PlanAction` each partition resolved to.  Replaying
a plan skips ``partition_subscripts`` and ``classify`` entirely and jumps
straight to the resolved test.  The canonical key rides inside the plan,
and :meth:`TestPlan.check` refuses to apply a plan to any other key, so a
stale plan can never leak across shapes.

Plans deliberately store *dispatch* decisions, never verdicts: the actual
tests still run on the pair's own subscripts, so a plan replay is
byte-identical to a fresh driver run (the parity tests in
``tests/test_plan.py`` hold this invariant).  Verdict reuse is the
canonical-key cache's job; plans are the cheaper second tier that survives
verdict eviction.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Hashable, List, Optional, Tuple


class PlanAction(Enum):
    """The test a partition resolved to (one driver dispatch decision)."""

    NONLINEAR = "nonlinear"
    ZIV = "ziv"
    SIV = "siv"
    RDIV = "rdiv"
    RDIV_MIV = "rdiv-miv"  # RDIV preconditions failed; fell through to MIV
    MIV = "miv"
    DELTA = "delta"

    def __str__(self) -> str:
        return self.value


#: One plan entry: the partition's subscript positions (driver order) and
#: the action that resolved it.
PlanStep = Tuple[Tuple[int, ...], PlanAction]


class StalePlanError(ValueError):
    """Raised when a plan is applied to a pair with a different canonical key."""


@dataclass(frozen=True)
class TestPlan:
    """The precompiled dispatch schedule for one canonical pair shape.

    ``steps`` follow driver order; a plan recorded from a run that proved
    independence early is truncated at the deciding partition — replay
    reaches the same partition, proves the same independence, and stops at
    the same place, so truncation is invisible.
    """

    __test__ = False  # not a pytest test class despite the name

    key: Hashable
    steps: Tuple[PlanStep, ...]

    def check(self, key: Hashable) -> "TestPlan":
        """Validate this plan against the key of the pair it will drive.

        Raises :class:`StalePlanError` on any mismatch; returns ``self``
        so call sites can chain ``plan.check(key)`` into application.
        """
        if key != self.key:
            raise StalePlanError(
                "test plan was compiled for a different canonical key; "
                "refusing to apply it"
            )
        return self

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        inner = ", ".join(
            f"{positions}→{action}" for positions, action in self.steps
        )
        return f"TestPlan[{inner}]"


class PlanRecorder:
    """Accumulates the steps of a plan while the driver runs uncompiled.

    The driver appends one step per partition as it dispatches; callers
    (the caching engine) finish with :meth:`compile` to get the immutable
    :class:`TestPlan` for the pair's canonical key.
    """

    __slots__ = ("_steps",)

    def __init__(self) -> None:
        self._steps: List[PlanStep] = []

    def add(self, positions: Tuple[int, ...], action: PlanAction) -> None:
        """Record that ``positions`` resolved to ``action``."""
        self._steps.append((positions, action))

    def compile(self, key: Hashable) -> TestPlan:
        """The finished plan, bound to ``key``."""
        return TestPlan(key=key, steps=tuple(self._steps))
