"""Command-line interface: ``repro-deps`` / ``python -m repro``.

Subcommands:

* ``analyze FILE`` — parse a Fortran file and print its dependence graph,
  parallel-loop verdicts, and transformation suggestions.
* ``study`` — regenerate the paper's tables over the corpus
  (``--table 1|2|3`` for a single table, default all).
* ``corpus [list]`` — list the corpus suites and programs.
* ``corpus run TREE`` — stream-analyze every Fortran source under a
  directory tree: per-routine content tokens skip unchanged work, a
  killed run resumes where it left off, and malformed files or crashed
  routines quarantine without stopping the walk.
* ``store {info,verify,compact,migrate}`` — inspect, check, compact, or
  upgrade a persistent verdict store created with ``--store``.

``analyze`` and ``study`` accept ``--store PATH`` (write-through
crash-safe verdict persistence; format v2 stores are shard directories
that any number of concurrent processes may share — ``--store-shards``
sets the shard count at creation) and ``--resume`` (continue a killed
``--store`` run from its last checkpoint; previously tested pairs are
served from the store and the output is byte-identical to an
uninterrupted run).  A legacy v1 single-file store opens read-only;
``store migrate`` upgrades it in place.

Exit codes: 0 — success (including degraded runs that assumed some
verdicts after absorbed faults; a fault report is printed); 1 — input
file unreadable; 2 — Fortran syntax error (a diagnostic with line,
column, and caret is printed, never a traceback) or bad command line;
3 — ``--strict`` run aborted on the first engine fault; 4 — verdict
store unusable (unreadable path, failed migrate) or ``store verify``
found unrecoverable corruption.  Shard-scoped store failures (lock
starvation, one corrupt segment) do *not* change the exit code: the
affected shard is quarantined, the run continues memory-only for those
keys, and the fault report says so.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.backends import backend_names
from repro.corpus.loader import (
    available_programs,
    available_suites,
    default_symbols,
)
from repro.engine import (
    DEFAULT_SHARDS,
    CheckpointLog,
    DependenceEngine,
    EngineFaultError,
    FaultPolicy,
    StoreError,
    VerdictStore,
    migrate_store,
    run_token,
)
from repro.engine.faults import FailureRecord
from repro.fortran.errors import FortranSyntaxError
from repro.fortran.parser import parse_program
from repro.instrument import TestRecorder
from repro.ir.normalize import normalize_program
from repro.transform.parallel import find_parallel_loops
from repro.transform.peel import find_peeling_opportunities
from repro.transform.split import find_splitting_opportunities

#: Exit code for a Fortran syntax error in the input file.
EXIT_SYNTAX_ERROR = 2

#: Exit code for a ``--strict`` run aborted by an engine fault.
EXIT_STRICT_FAULT = 3

#: Exit code for an unusable verdict store (lock, I/O) or a failed
#: ``store verify``.
EXIT_STORE_ERROR = 4


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-deps",
        description="Practical Dependence Testing (PLDI 1991) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze a Fortran file")
    analyze.add_argument("file", type=Path)
    analyze.add_argument(
        "--transforms", action="store_true",
        help="also report peeling/splitting suggestions",
    )
    analyze.add_argument(
        "--counts", action="store_true", help="print per-test application counts"
    )
    analyze.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="test reference pairs over N worker processes (default 1)",
    )
    analyze.add_argument(
        "--backend", choices=backend_names(), default=None, metavar="NAME",
        help="test backend: 'reference' (per-pair) or 'batched' "
        "(numpy-vectorized; falls back to reference without numpy). "
        "Default: $REPRO_BACKEND or 'reference'",
    )
    analyze.add_argument(
        "--no-cache", action="store_true",
        help="disable the canonical-pair verdict cache",
    )
    analyze.add_argument(
        "--profile", action="store_true",
        help="print per-phase and per-test-tier wall timings",
    )
    analyze.add_argument(
        "--strict", action="store_true",
        help="abort on the first engine fault instead of degrading to "
        "assumed-dependence verdicts (exit code 3)",
    )
    analyze.add_argument(
        "--store", type=Path, default=None, metavar="PATH",
        help="persist verdicts and test plans to a crash-safe store at "
        "PATH (created if missing; reused entries skip re-testing)",
    )
    analyze.add_argument(
        "--resume", action="store_true",
        help="resume a killed --store run from its last checkpoint "
        "(requires --store)",
    )
    analyze.add_argument(
        "--store-shards", type=int, default=None, metavar="N",
        help=f"shard count when creating a new store (default "
        f"{DEFAULT_SHARDS}; an existing store keeps its manifest count)",
    )

    study = sub.add_parser("study", help="regenerate the paper's tables")
    study.add_argument("--table", type=int, choices=(1, 2, 3), default=None)
    study.add_argument("--suite", action="append", default=None)
    study.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="test reference pairs over N worker processes (default 1)",
    )
    study.add_argument(
        "--backend", choices=backend_names(), default=None, metavar="NAME",
        help="test backend: 'reference' (per-pair) or 'batched' "
        "(numpy-vectorized; falls back to reference without numpy). "
        "Default: $REPRO_BACKEND or 'reference'",
    )
    study.add_argument(
        "--strict", action="store_true",
        help="abort on the first engine fault instead of skipping the "
        "affected pair or routine (exit code 3)",
    )
    study.add_argument(
        "--store", type=Path, default=None, metavar="PATH",
        help="persist verdicts and test plans to a crash-safe store at "
        "PATH (created if missing; reused entries skip re-testing)",
    )
    study.add_argument(
        "--resume", action="store_true",
        help="resume a killed --store run from its last checkpoint "
        "(requires --store)",
    )
    study.add_argument(
        "--store-shards", type=int, default=None, metavar="N",
        help=f"shard count when creating a new store (default "
        f"{DEFAULT_SHARDS}; an existing store keeps its manifest count)",
    )

    vector = sub.add_parser("vectorize", help="Allen-Kennedy vectorization")
    vector.add_argument("file", type=Path)

    serve = sub.add_parser(
        "serve", help="run the long-lived dependence-analysis service"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="bind port; 0 picks an ephemeral one and prints it (default 0)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for large builds (default 1)",
    )
    serve.add_argument(
        "--backend", choices=backend_names(), default=None, metavar="NAME",
        help="test backend (default: $REPRO_BACKEND or 'reference')",
    )
    serve.add_argument(
        "--store", type=Path, default=None, metavar="PATH",
        help="share a persistent verdict store across requests and restarts",
    )
    serve.add_argument(
        "--store-shards", type=int, default=None, metavar="N",
        help=f"shard count when creating a new store (default "
        f"{DEFAULT_SHARDS})",
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=4, metavar="N",
        help="concurrent analyses before requests queue (default 4)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=8, metavar="N",
        help="queued requests before new arrivals are shed with 503 "
        "(default 8)",
    )
    serve.add_argument(
        "--default-deadline-ms", type=float, default=None, metavar="MS",
        help="deadline applied to requests that carry none (default: "
        "unbounded)",
    )
    serve.add_argument(
        "--breaker-reset", type=float, default=2.0, metavar="SECONDS",
        help="seconds an open circuit breaker waits before probing "
        "recovery (default 2)",
    )

    client = sub.add_parser(
        "client", help="send a Fortran file to a running analysis service"
    )
    client.add_argument("file", type=Path)
    client.add_argument(
        "--url", default="http://127.0.0.1:8077", metavar="URL",
        help="service endpoint (default http://127.0.0.1:8077)",
    )
    client.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request analysis deadline; expiry returns conservative "
        "assumed-dependence results flagged degraded",
    )
    client.add_argument(
        "--transforms", action="store_true",
        help="also report peeling/splitting suggestions",
    )
    client.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="retry attempts for shed (503) or unreachable service "
        "(default 3)",
    )
    client.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the raw JSON response instead of the analyze-style text",
    )

    corpus = sub.add_parser(
        "corpus", help="list corpus suites or stream-analyze a source tree"
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command")
    corpus_sub.add_parser("list", help="list corpus suites and programs")
    corpus_run = corpus_sub.add_parser(
        "run", help="walk a directory tree of Fortran sources, analyzing "
        "each routine once per content version (incremental, resumable)"
    )
    corpus_run.add_argument("tree", type=Path)
    corpus_run.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="test reference pairs over N worker processes (default 1)",
    )
    corpus_run.add_argument(
        "--backend", choices=backend_names(), default=None, metavar="NAME",
        help="test backend: 'reference' (per-pair) or 'batched' "
        "(numpy-vectorized; falls back to reference without numpy). "
        "Default: $REPRO_BACKEND or 'reference'",
    )
    corpus_run.add_argument(
        "--strict", action="store_true",
        help="abort on the first engine fault instead of quarantining the "
        "affected routine (exit code 3)",
    )
    corpus_run.add_argument(
        "--store", type=Path, default=None, metavar="PATH",
        help="persist per-routine reports and verdicts at PATH; re-runs "
        "skip unchanged routines and killed runs resume where they "
        "left off",
    )
    corpus_run.add_argument(
        "--store-shards", type=int, default=None, metavar="N",
        help=f"shard count when creating a new store (default "
        f"{DEFAULT_SHARDS}; an existing store keeps its manifest count)",
    )
    corpus_run.add_argument(
        "--rebuild", action="store_true",
        help="ignore stored reports and re-analyze every routine "
        "(refreshes the store in place)",
    )
    corpus_run.add_argument(
        "--max-rss-mb", type=float, default=None, metavar="MB",
        help="memory watermark: over MB resident, shed in-memory caches "
        "and throttle streaming instead of dying",
    )
    corpus_run.add_argument(
        "--compact", action="store_true",
        help="compact the store after the walk (delta-compresses "
        "near-identical plan/report records per shard)",
    )

    store = sub.add_parser(
        "store", help="inspect or maintain a persistent verdict store"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    for name, text in (
        ("info", "print store contents, per-shard breakdown, and "
         "checkpoint summary"),
        ("verify", "check every record, report per-recovery-rule drops; "
         "exit 4 on unrecoverable corruption"),
        ("compact", "rewrite every shard, dropping superseded records"),
    ):
        store_sub.add_parser(name, help=text).add_argument("path", type=Path)
    migrate = store_sub.add_parser(
        "migrate", help="upgrade a legacy v1 store file to a v2 shard "
        "directory in place"
    )
    migrate.add_argument("path", type=Path)
    migrate.add_argument(
        "--shards", type=int, default=DEFAULT_SHARDS, metavar="N",
        help=f"shard count for the upgraded store (default {DEFAULT_SHARDS})",
    )

    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and getattr(args, "store", None) is None:
        parser.error("--resume requires --store PATH")
    if args.command == "analyze":
        return _analyze(args)
    if args.command == "study":
        return _study(args)
    if args.command == "vectorize":
        return _vectorize(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "client":
        return _client(args)
    if args.command == "corpus":
        if getattr(args, "corpus_command", None) == "run":
            return _corpus_run(args)
        return _corpus()
    if args.command == "store":
        return _store(args)
    return 2


def _read_source(path: Path) -> Optional[str]:
    """Read an input file; on failure print a clean error and return None."""
    try:
        return path.read_text()
    except OSError as exc:
        reason = exc.strerror or str(exc)
        print(f"repro-deps: cannot read '{path}': {reason}", file=sys.stderr)
        return None


def _parse_input(path: Path):
    """Parse a Fortran input file: ``(program, exit_code)``.

    ``program`` is None on failure; syntax errors print the front end's
    diagnostic (line, column, snippet, caret) instead of a traceback.
    """
    source = _read_source(path)
    if source is None:
        return None, 1
    try:
        program = normalize_program(parse_program(source, name=path.stem))
    except FortranSyntaxError as exc:
        print(f"repro-deps: {path}:", file=sys.stderr)
        print(exc.diagnostic(), file=sys.stderr)
        return None, EXIT_SYNTAX_ERROR
    return program, 0


def _strict_abort(exc: EngineFaultError) -> int:
    print(f"repro-deps: aborted by --strict: {exc}", file=sys.stderr)
    return EXIT_STRICT_FAULT


def _open_store(
    path: Path, shards: Optional[int] = None
) -> Optional[VerdictStore]:
    """Open (or create) a verdict store; on failure print and return None.

    Unreadable paths and I/O errors surface as one clean diagnostic —
    the caller maps None to :data:`EXIT_STORE_ERROR`.  Corrupt tails and
    schema mismatches do *not* fail: the store recovers them per shard
    on open (printing what it dropped) by design, and lock contention
    quarantines the contended shard rather than failing the run.  A
    legacy v1 file opens read-only with a migration hint.
    """
    try:
        store = VerdictStore(path, shards=shards)
    except (StoreError, OSError, ValueError) as exc:
        print(f"repro-deps: cannot open store '{path}': {exc}", file=sys.stderr)
        return None
    if store.read_only:
        print(
            f"repro-deps: store '{path}' is a legacy v1 file; serving "
            "reads only (no new verdicts persisted). Run "
            f"`repro-deps store migrate {path}` to upgrade it.",
            file=sys.stderr,
        )
    return store


def _attach_checkpoint(
    store: VerdictStore, token: str, label: str, resume: bool
) -> CheckpointLog:
    """Build the run's checkpoint log; print the resume banner if asked."""
    log = CheckpointLog(store, token)
    if resume:
        print(log.resume_summary())
    log.begin_run(label)
    return log


def _store(args: argparse.Namespace) -> int:
    """``repro-deps store {info,verify,compact,migrate}`` dispatcher."""
    path: Path = args.path
    if args.store_command == "migrate":
        try:
            verdicts, plans = migrate_store(path, shards=args.shards)
        except (StoreError, OSError) as exc:
            print(f"repro-deps: cannot migrate '{path}': {exc}", file=sys.stderr)
            return EXIT_STORE_ERROR
        print(
            f"migrated {path} to v2 ({args.shards} shard(s), "
            f"{verdicts} verdict(s), {plans} plan(s))"
        )
        return 0
    if args.store_command == "verify":
        report = VerdictStore.scan(path)
        for line in report.lines():
            print(line)
        print(report.rule_report())
        return 0 if report.clean else EXIT_STORE_ERROR
    if args.store_command == "info":
        report = VerdictStore.scan(path)
        if report.size == 0 and report.problems:
            print(f"repro-deps: cannot read store '{path}'", file=sys.stderr)
            return EXIT_STORE_ERROR
        for line in report.lines():
            print(line)
        print(report.compaction_line())
        store = _open_store(path)
        if store is None:
            return EXIT_STORE_ERROR
        try:
            runs = store.runs()
            if runs:
                token, label = next(
                    (
                        (t, lbl)
                        for t, lbl in reversed(runs)
                        if not lbl.startswith("routine:")
                    ),
                    runs[-1],
                )
                print(f"  last run: {label} (token {token})")
                routines = len({
                    lbl
                    for t, lbl in runs
                    if t == token and lbl.startswith("routine:")
                })
                if routines:
                    print(f"  routines checkpointed: {routines}")
        finally:
            store.close()
        return 0
    # compact
    store = _open_store(path)
    if store is None:
        return EXIT_STORE_ERROR
    try:
        result = store.compact()
    except (StoreError, OSError) as exc:
        store.close()
        print(f"repro-deps: compaction failed for '{path}': {exc}", file=sys.stderr)
        return EXIT_STORE_ERROR
    store.close()
    before, after = result
    print(
        f"compacted {path}: {before} -> {after} bytes "
        f"({len(store)} verdict(s), {store.plan_count} plan(s), "
        f"{store.report_count} report(s) kept)"
    )
    for label, shard_before, shard_after in getattr(result, "shards", []):
        print(
            f"  {label}: {shard_before} -> {shard_after} bytes "
            f"({shard_before - shard_after} reclaimed)"
        )
    return 0


def _vectorize(args: argparse.Namespace) -> int:
    from repro.transform.vectorize import vectorize

    program, code = _parse_input(args.file)
    if program is None:
        return code
    symbols = default_symbols()
    for routine in program.routines:
        print(f"== routine {routine.name} ==")
        report = vectorize(routine.body, symbols=symbols)
        for line in report.lines:
            print(line)
        print()
    return 0


def _analyze(args: argparse.Namespace) -> int:
    from repro.engine import faultinject
    from repro.engine.faults import describe_error

    source = _read_source(args.file)
    if source is None:
        return 1
    try:
        program = normalize_program(parse_program(source, name=args.file.stem))
    except FortranSyntaxError as exc:
        print(f"repro-deps: {args.file}:", file=sys.stderr)
        print(exc.diagnostic(), file=sys.stderr)
        return EXIT_SYNTAX_ERROR
    store = checkpoint = None
    if args.store is not None:
        if args.no_cache:
            print(
                "repro-deps: --store requires the verdict cache "
                "(drop --no-cache)",
                file=sys.stderr,
            )
            return EXIT_STORE_ERROR
        store = _open_store(args.store, args.store_shards)
        if store is None:
            return EXIT_STORE_ERROR
        checkpoint = _attach_checkpoint(
            store,
            run_token("analyze", source, str(args.jobs)),
            f"analyze:{args.file.name}",
            args.resume,
        )
    symbols = default_symbols()
    engine = DependenceEngine(
        symbols=symbols,
        jobs=max(args.jobs, 1),
        use_cache=not args.no_cache,
        profile=args.profile,
        policy=FaultPolicy.from_env(strict=args.strict),
        store=store,
        checkpoint=checkpoint,
        backend=args.backend,
    )
    recorder = TestRecorder()
    try:
        with engine:
            for routine in program.routines:
                print(f"== routine {routine.name} ==")
                try:
                    faultinject.on_routine(routine.name)
                    graph = engine.build_graph(routine.body, recorder=recorder)
                except EngineFaultError as exc:
                    return _strict_abort(exc)
                except Exception as exc:
                    if args.strict:
                        raise
                    engine.stats.record_failure(
                        FailureRecord(
                            "routine", f"{args.file.stem}/{routine.name}",
                            describe_error(exc),
                        )
                    )
                    print(f"routine skipped after failure: {describe_error(exc)}")
                    print()
                    continue
                print(graph)
                for verdict in find_parallel_loops(routine.body, symbols, graph):
                    print(verdict)
                if args.transforms:
                    for suggestion in find_peeling_opportunities(
                        routine.body, symbols, graph
                    ):
                        print(suggestion)
                    for suggestion in find_splitting_opportunities(
                        routine.body, symbols, graph
                    ):
                        print(suggestion)
                print()
                if checkpoint is not None and engine.store is not None:
                    try:
                        checkpoint.mark_routine(routine.name)
                    except Exception as exc:
                        engine.driver._degrade_store(exc)
                    else:
                        engine.driver.drain_store_events()
    finally:
        if store is not None:
            store.close()
            if engine.driver is not None:
                engine.driver.drain_store_events()
    if args.counts:
        print("test applications:")
        print(recorder)
        if not args.no_cache:
            print(engine.stats)
    if args.profile and engine.profile is not None:
        print(engine.profile)
        coverage = engine.stats.coverage_report()
        if coverage:
            print(coverage)
    if engine.stats.degraded:
        print(engine.stats.failure_report())
    return 0


def _study(args: argparse.Namespace) -> int:
    from repro.study.report import full_report
    from repro.study.tables import render_table1, render_table2, render_table3

    jobs = max(args.jobs, 1)
    if args.table == 1:
        print(render_table1())
        return 0
    if args.table == 2:
        print(render_table2())
        return 0
    store = checkpoint = None
    if args.store is not None:
        store = _open_store(args.store, args.store_shards)
        if store is None:
            return EXIT_STORE_ERROR
        suites = sorted(args.suite) if args.suite else ["<all>"]
        checkpoint = _attach_checkpoint(
            store,
            run_token("study", args.table, *suites, str(jobs)),
            f"study:table{args.table or 'all'}",
            args.resume,
        )
    engine = DependenceEngine(
        symbols=default_symbols(),
        jobs=jobs,
        policy=FaultPolicy.from_env(strict=args.strict),
        store=store,
        checkpoint=checkpoint,
        backend=args.backend,
    )
    try:
        with engine:
            if args.table == 3:
                from repro.study.tables import table3

                print(render_table3(table3(args.suite, jobs=jobs, engine=engine)))
                if engine.stats.degraded:
                    print()
                    print(engine.stats.failure_report())
            else:
                print(full_report(args.suite, jobs=jobs, engine=engine))
    except EngineFaultError as exc:
        return _strict_abort(exc)
    finally:
        if store is not None:
            store.close()
            if engine.driver is not None:
                engine.driver.drain_store_events()
    return 0


def _serve(args: argparse.Namespace) -> int:
    """Run the analysis service until SIGTERM/SIGINT drains it."""
    from repro.service.server import ServiceConfig, run_service

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=max(args.jobs, 1),
        backend=args.backend,
        store_path=args.store,
        store_shards=args.store_shards,
        max_in_flight=args.max_in_flight,
        queue_depth=args.queue_depth,
        default_deadline_ms=args.default_deadline_ms,
        breaker_reset_timeout=args.breaker_reset,
        policy=FaultPolicy.from_env(),
    )

    def banner(service) -> None:
        print(
            f"repro-deps: serving on http://{config.host}:{service.port} "
            f"(jobs={config.jobs}, "
            f"store={config.store_path or 'none'})",
            flush=True,
        )

    try:
        return run_service(config, banner=banner)
    except (StoreError, OSError, ValueError) as exc:
        print(f"repro-deps: cannot start service: {exc}", file=sys.stderr)
        return EXIT_STORE_ERROR


def _client(args: argparse.Namespace) -> int:
    """Send one file to a running service; mirrors ``analyze`` output.

    Exit codes follow ``analyze``: 0 for ok *and* degraded answers (the
    degradation report is printed), 1 for an unreadable input file, 2
    for a syntax error (the server's diagnostic is printed), 4 when the
    service is unreachable or still shedding after every retry.
    """
    import json as _json

    from repro.service.client import (
        ServiceClient,
        ServiceError,
        ServiceUnavailable,
    )
    from repro.service.protocol import render_analysis

    source = _read_source(args.file)
    if source is None:
        return 1
    client = ServiceClient(args.url, retries=max(args.retries, 0))
    try:
        payload = client.analyze(
            source,
            name=args.file.stem,
            deadline_ms=args.deadline_ms,
            transforms=args.transforms,
        )
    except ServiceUnavailable as exc:
        print(f"repro-deps: {exc}", file=sys.stderr)
        return EXIT_STORE_ERROR
    except ServiceError as exc:
        if exc.status == 422:
            print(f"repro-deps: {args.file}:", file=sys.stderr)
            print(
                exc.payload.get("detail", str(exc)), file=sys.stderr
            )
            return EXIT_SYNTAX_ERROR
        print(f"repro-deps: service error: {exc}", file=sys.stderr)
        return EXIT_STORE_ERROR
    if args.as_json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_analysis(payload))
    return 0


def _corpus() -> int:
    for suite in available_suites():
        programs = ", ".join(available_programs(suite))
        print(f"{suite}: {programs}")
    return 0


def _corpus_run(args: argparse.Namespace) -> int:
    """``repro-deps corpus run <tree>`` — the streaming corpus driver.

    Exit codes follow ``analyze``: 0 for complete *and* degraded walks
    (quarantines and pressure events print as a fault report), 1 for an
    unusable tree, 3 on a --strict abort, 4 for an unusable store.
    """
    from repro.corpus.stream import StreamingCorpusRunner
    from repro.engine.store import StoreError

    tree: Path = args.tree
    if not tree.is_dir():
        print(f"repro-deps: '{tree}' is not a directory", file=sys.stderr)
        return 1
    store = None
    if args.store is not None:
        store = _open_store(args.store, args.store_shards)
        if store is None:
            return EXIT_STORE_ERROR
    engine = DependenceEngine(
        symbols=default_symbols(),
        jobs=max(args.jobs, 1),
        policy=FaultPolicy.from_env(strict=args.strict),
        store=store,
        backend=args.backend,
    )
    runner = StreamingCorpusRunner(
        tree,
        engine,
        rebuild=args.rebuild,
        max_rss_mb=args.max_rss_mb,
    )
    try:
        with engine:
            stats = runner.run()
    except EngineFaultError as exc:
        if store is not None:
            store.close()
        return _strict_abort(exc)
    except Exception as exc:
        if not args.strict:
            raise
        from repro.engine.faults import describe_error

        if store is not None:
            store.close()
        print(
            f"repro-deps: aborted by --strict: {describe_error(exc)}",
            file=sys.stderr,
        )
        return EXIT_STRICT_FAULT
    finally:
        if store is not None and engine.driver is not None:
            engine.driver.drain_store_events()
    for line in stats.summary_lines():
        print(line, file=sys.stderr)
    print(engine.stats.provenance_report(), file=sys.stderr)
    if engine.stats.degraded:
        print(engine.stats.failure_report(), file=sys.stderr)
    if store is not None:
        live = engine.store is not None  # None when the run degraded
        if args.compact and live:
            try:
                result = store.compact()
            except (StoreError, OSError) as exc:
                print(
                    f"repro-deps: compaction failed for '{args.store}': {exc}",
                    file=sys.stderr,
                )
                store.close()
                return EXIT_STORE_ERROR
            print(
                f"compacted {args.store}: {result.before} -> "
                f"{result.after} bytes ({result.reclaimed} reclaimed)",
                file=sys.stderr,
            )
        store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
