"""Command-line interface: ``repro-deps`` / ``python -m repro``.

Subcommands:

* ``analyze FILE`` — parse a Fortran file and print its dependence graph,
  parallel-loop verdicts, and transformation suggestions.
* ``study`` — regenerate the paper's tables over the corpus
  (``--table 1|2|3`` for a single table, default all).
* ``corpus`` — list the corpus suites and programs.

Exit codes: 0 — success (including degraded runs that assumed some
verdicts after absorbed faults; a fault report is printed); 1 — input
file unreadable; 2 — Fortran syntax error (a diagnostic with line,
column, and caret is printed, never a traceback); 3 — ``--strict`` run
aborted on the first engine fault.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.corpus.loader import (
    available_programs,
    available_suites,
    default_symbols,
)
from repro.engine import DependenceEngine, EngineFaultError, FaultPolicy
from repro.engine.faults import FailureRecord
from repro.fortran.errors import FortranSyntaxError
from repro.fortran.parser import parse_program
from repro.instrument import TestRecorder
from repro.ir.normalize import normalize_program
from repro.transform.parallel import find_parallel_loops
from repro.transform.peel import find_peeling_opportunities
from repro.transform.split import find_splitting_opportunities

#: Exit code for a Fortran syntax error in the input file.
EXIT_SYNTAX_ERROR = 2

#: Exit code for a ``--strict`` run aborted by an engine fault.
EXIT_STRICT_FAULT = 3


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-deps",
        description="Practical Dependence Testing (PLDI 1991) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze a Fortran file")
    analyze.add_argument("file", type=Path)
    analyze.add_argument(
        "--transforms", action="store_true",
        help="also report peeling/splitting suggestions",
    )
    analyze.add_argument(
        "--counts", action="store_true", help="print per-test application counts"
    )
    analyze.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="test reference pairs over N worker processes (default 1)",
    )
    analyze.add_argument(
        "--no-cache", action="store_true",
        help="disable the canonical-pair verdict cache",
    )
    analyze.add_argument(
        "--profile", action="store_true",
        help="print per-phase and per-test-tier wall timings",
    )
    analyze.add_argument(
        "--strict", action="store_true",
        help="abort on the first engine fault instead of degrading to "
        "assumed-dependence verdicts (exit code 3)",
    )

    study = sub.add_parser("study", help="regenerate the paper's tables")
    study.add_argument("--table", type=int, choices=(1, 2, 3), default=None)
    study.add_argument("--suite", action="append", default=None)
    study.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="test reference pairs over N worker processes (default 1)",
    )
    study.add_argument(
        "--strict", action="store_true",
        help="abort on the first engine fault instead of skipping the "
        "affected pair or routine (exit code 3)",
    )

    vector = sub.add_parser("vectorize", help="Allen-Kennedy vectorization")
    vector.add_argument("file", type=Path)

    sub.add_parser("corpus", help="list corpus suites and programs")

    args = parser.parse_args(argv)
    if args.command == "analyze":
        return _analyze(args)
    if args.command == "study":
        return _study(args)
    if args.command == "vectorize":
        return _vectorize(args)
    if args.command == "corpus":
        return _corpus()
    return 2


def _read_source(path: Path) -> Optional[str]:
    """Read an input file; on failure print a clean error and return None."""
    try:
        return path.read_text()
    except OSError as exc:
        reason = exc.strerror or str(exc)
        print(f"repro-deps: cannot read '{path}': {reason}", file=sys.stderr)
        return None


def _parse_input(path: Path):
    """Parse a Fortran input file: ``(program, exit_code)``.

    ``program`` is None on failure; syntax errors print the front end's
    diagnostic (line, column, snippet, caret) instead of a traceback.
    """
    source = _read_source(path)
    if source is None:
        return None, 1
    try:
        program = normalize_program(parse_program(source, name=path.stem))
    except FortranSyntaxError as exc:
        print(f"repro-deps: {path}:", file=sys.stderr)
        print(exc.diagnostic(), file=sys.stderr)
        return None, EXIT_SYNTAX_ERROR
    return program, 0


def _strict_abort(exc: EngineFaultError) -> int:
    print(f"repro-deps: aborted by --strict: {exc}", file=sys.stderr)
    return EXIT_STRICT_FAULT


def _vectorize(args: argparse.Namespace) -> int:
    from repro.transform.vectorize import vectorize

    program, code = _parse_input(args.file)
    if program is None:
        return code
    symbols = default_symbols()
    for routine in program.routines:
        print(f"== routine {routine.name} ==")
        report = vectorize(routine.body, symbols=symbols)
        for line in report.lines:
            print(line)
        print()
    return 0


def _analyze(args: argparse.Namespace) -> int:
    from repro.engine import faultinject
    from repro.engine.faults import describe_error

    program, code = _parse_input(args.file)
    if program is None:
        return code
    symbols = default_symbols()
    engine = DependenceEngine(
        symbols=symbols,
        jobs=max(args.jobs, 1),
        use_cache=not args.no_cache,
        profile=args.profile,
        policy=FaultPolicy.from_env(strict=args.strict),
    )
    recorder = TestRecorder()
    with engine:
        for routine in program.routines:
            print(f"== routine {routine.name} ==")
            try:
                faultinject.on_routine(routine.name)
                graph = engine.build_graph(routine.body, recorder=recorder)
            except EngineFaultError as exc:
                return _strict_abort(exc)
            except Exception as exc:
                if args.strict:
                    raise
                engine.stats.record_failure(
                    FailureRecord(
                        "routine", f"{args.file.stem}/{routine.name}",
                        describe_error(exc),
                    )
                )
                print(f"routine skipped after failure: {describe_error(exc)}")
                print()
                continue
            print(graph)
            for verdict in find_parallel_loops(routine.body, symbols, graph):
                print(verdict)
            if args.transforms:
                for suggestion in find_peeling_opportunities(
                    routine.body, symbols, graph
                ):
                    print(suggestion)
                for suggestion in find_splitting_opportunities(
                    routine.body, symbols, graph
                ):
                    print(suggestion)
            print()
    if args.counts:
        print("test applications:")
        print(recorder)
        if not args.no_cache:
            print(engine.stats)
    if args.profile and engine.profile is not None:
        print(engine.profile)
    if engine.stats.degraded:
        print(engine.stats.failure_report())
    return 0


def _study(args: argparse.Namespace) -> int:
    from repro.study.report import full_report
    from repro.study.tables import render_table1, render_table2, render_table3

    jobs = max(args.jobs, 1)
    if args.table == 1:
        print(render_table1())
        return 0
    if args.table == 2:
        print(render_table2())
        return 0
    engine = DependenceEngine(
        symbols=default_symbols(),
        jobs=jobs,
        policy=FaultPolicy.from_env(strict=args.strict),
    )
    try:
        with engine:
            if args.table == 3:
                from repro.study.tables import table3

                print(render_table3(table3(args.suite, jobs=jobs, engine=engine)))
                if engine.stats.degraded:
                    print()
                    print(engine.stats.failure_report())
            else:
                print(full_report(args.suite, jobs=jobs, engine=engine))
    except EngineFaultError as exc:
        return _strict_abort(exc)
    return 0


def _corpus() -> int:
    for suite in available_suites():
        programs = ", ".join(available_programs(suite))
        print(f"{suite}: {programs}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
