"""Command-line interface: ``repro-deps`` / ``python -m repro``.

Subcommands:

* ``analyze FILE`` — parse a Fortran file and print its dependence graph,
  parallel-loop verdicts, and transformation suggestions.
* ``study`` — regenerate the paper's tables over the corpus
  (``--table 1|2|3`` for a single table, default all).
* ``corpus`` — list the corpus suites and programs.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.corpus.loader import (
    available_programs,
    available_suites,
    default_symbols,
)
from repro.engine import DependenceEngine
from repro.fortran.parser import parse_program
from repro.instrument import TestRecorder
from repro.ir.normalize import normalize_program
from repro.transform.parallel import find_parallel_loops
from repro.transform.peel import find_peeling_opportunities
from repro.transform.split import find_splitting_opportunities


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-deps",
        description="Practical Dependence Testing (PLDI 1991) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="analyze a Fortran file")
    analyze.add_argument("file", type=Path)
    analyze.add_argument(
        "--transforms", action="store_true",
        help="also report peeling/splitting suggestions",
    )
    analyze.add_argument(
        "--counts", action="store_true", help="print per-test application counts"
    )
    analyze.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="test reference pairs over N worker processes (default 1)",
    )
    analyze.add_argument(
        "--no-cache", action="store_true",
        help="disable the canonical-pair verdict cache",
    )
    analyze.add_argument(
        "--profile", action="store_true",
        help="print per-phase and per-test-tier wall timings",
    )

    study = sub.add_parser("study", help="regenerate the paper's tables")
    study.add_argument("--table", type=int, choices=(1, 2, 3), default=None)
    study.add_argument("--suite", action="append", default=None)
    study.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="test reference pairs over N worker processes (default 1)",
    )

    vector = sub.add_parser("vectorize", help="Allen-Kennedy vectorization")
    vector.add_argument("file", type=Path)

    sub.add_parser("corpus", help="list corpus suites and programs")

    args = parser.parse_args(argv)
    if args.command == "analyze":
        return _analyze(args)
    if args.command == "study":
        return _study(args)
    if args.command == "vectorize":
        return _vectorize(args)
    if args.command == "corpus":
        return _corpus()
    return 2


def _read_source(path: Path) -> Optional[str]:
    """Read an input file; on failure print a clean error and return None."""
    try:
        return path.read_text()
    except OSError as exc:
        reason = exc.strerror or str(exc)
        print(f"repro-deps: cannot read '{path}': {reason}", file=sys.stderr)
        return None


def _vectorize(args: argparse.Namespace) -> int:
    from repro.transform.vectorize import vectorize

    source = _read_source(args.file)
    if source is None:
        return 1
    program = normalize_program(parse_program(source, name=args.file.stem))
    symbols = default_symbols()
    for routine in program.routines:
        print(f"== routine {routine.name} ==")
        report = vectorize(routine.body, symbols=symbols)
        for line in report.lines:
            print(line)
        print()
    return 0


def _analyze(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    if source is None:
        return 1
    program = normalize_program(parse_program(source, name=args.file.stem))
    symbols = default_symbols()
    engine = DependenceEngine(
        symbols=symbols,
        jobs=max(args.jobs, 1),
        use_cache=not args.no_cache,
        profile=args.profile,
    )
    recorder = TestRecorder()
    for routine in program.routines:
        print(f"== routine {routine.name} ==")
        graph = engine.build_graph(routine.body, recorder=recorder)
        print(graph)
        for verdict in find_parallel_loops(routine.body, symbols, graph):
            print(verdict)
        if args.transforms:
            for suggestion in find_peeling_opportunities(
                routine.body, symbols, graph
            ):
                print(suggestion)
            for suggestion in find_splitting_opportunities(
                routine.body, symbols, graph
            ):
                print(suggestion)
        print()
    if args.counts:
        print("test applications:")
        print(recorder)
        if not args.no_cache:
            print(engine.stats)
    if args.profile and engine.profile is not None:
        print(engine.profile)
    return 0


def _study(args: argparse.Namespace) -> int:
    from repro.study.report import full_report
    from repro.study.tables import render_table1, render_table2, render_table3

    jobs = max(args.jobs, 1)
    if args.table == 1:
        print(render_table1())
    elif args.table == 2:
        print(render_table2())
    elif args.table == 3:
        from repro.study.tables import table3

        print(render_table3(table3(jobs=jobs)))
    else:
        print(full_report(args.suite, jobs=jobs))
    return 0


def _corpus() -> int:
    for suite in available_suites():
        programs = ", ".join(available_programs(suite))
        print(f"{suite}: {programs}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
