"""The long-running dependence-analysis service.

``repro-deps serve`` keeps one warm :class:`~repro.engine.engine.DependenceEngine`
— interning pools, LRU verdict/plan tiers, a shared persistent store, a
persistent worker pool — resident behind a small stdlib-``asyncio`` HTTP
front end, so the corpus-wide canonical-key hit rate the paper's
empirical argument rests on accumulates across clients rather than being
rebuilt per CLI invocation.  The robustness layers:

* :mod:`repro.service.protocol` — the JSON request/response schema,
  including the degraded-response contract (timed-out or faulted
  analyses return complete *conservative* graphs, never spurious
  independences);
* :mod:`repro.service.limiter` — admission control: bounded in-flight
  work plus a bounded wait queue, overflow shed with ``503`` and
  ``Retry-After``;
* :mod:`repro.service.breaker` — circuit breakers tripping a failing
  store to memory-only caching and a failing pool to all-serial builds,
  with half-open probe recovery;
* :mod:`repro.service.server` — the asyncio server: per-request
  deadlines wired into the engine's step budgets, in-flight coalescing
  of identical requests, graceful SIGTERM drain;
* :mod:`repro.service.client` — a blocking retrying client
  (``repro-deps client``).
"""

from repro.service.breaker import CircuitBreaker
from repro.service.client import ServiceClient, ServiceError, ServiceUnavailable
from repro.service.limiter import AdmissionLimiter
from repro.service.protocol import (
    AnalyzeRequest,
    ProtocolError,
    render_analysis,
)
from repro.service.server import (
    DependenceService,
    ServiceConfig,
    run_service,
)

__all__ = [
    "AdmissionLimiter",
    "AnalyzeRequest",
    "CircuitBreaker",
    "DependenceService",
    "ProtocolError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceUnavailable",
    "render_analysis",
    "run_service",
]
