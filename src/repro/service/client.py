"""A blocking client for the analysis service.

``repro-deps client FILE --url ...`` is the CLI face; the
:class:`ServiceClient` underneath is deliberately boring — stdlib
``http.client``, JSON in, JSON out — because its interesting part is the
retry discipline, which is the client half of the server's backpressure
contract:

* a ``503`` (shed or draining) is *not* an error on the first attempts:
  the client honors the server's ``Retry-After`` hint (bounded by its
  own backoff cap) and tries again;
* connection failures retry with exponential backoff, covering the
  window where a restarting server has not yet bound its socket;
* anything else — 4xx, a degraded-but-200 analysis, a real 5xx after
  retries are exhausted — is returned or raised immediately, because
  retrying cannot change it.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit


class ServiceError(Exception):
    """A request that failed for good (no retry can help)."""

    def __init__(self, message: str, status: Optional[int] = None,
                 payload: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServiceUnavailable(ServiceError):
    """Shed or unreachable after every retry."""


class ServiceClient:
    """Thin retrying JSON client for one service endpoint."""

    def __init__(
        self,
        url: str,
        timeout: float = 60.0,
        retries: int = 3,
        backoff: float = 0.25,
        max_backoff: float = 5.0,
        sleep=time.sleep,
    ):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in service url: {url}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 80
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self._sleep = sleep

    # -- transport --------------------------------------------------------

    def _request_once(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {"status": "error", "error": "unparseable response"}
            return (
                response.status,
                payload,
                {k.lower(): v for k, v in response.getheaders()},
            )
        finally:
            conn.close()

    def request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """One logical request, with the retry discipline applied."""
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        delay = self.backoff
        last_error: Optional[str] = None
        last_status: Optional[int] = None
        last_payload: Dict[str, Any] = {}
        for attempt in range(self.retries + 1):
            try:
                status, decoded, headers = self._request_once(
                    method, path, body
                )
            except (OSError, http.client.HTTPException) as exc:
                last_error = str(exc) or type(exc).__name__
                if attempt < self.retries:
                    self._sleep(delay)
                    delay = min(delay * 2, self.max_backoff)
                continue
            if status == 503 and attempt < self.retries:
                hinted = headers.get("retry-after")
                try:
                    wait = min(float(hinted), self.max_backoff) if hinted else delay
                except ValueError:
                    wait = delay
                self._sleep(wait)
                delay = min(delay * 2, self.max_backoff)
                last_status, last_payload = status, decoded
                last_error = decoded.get("error", "service unavailable")
                continue
            return status, decoded
        if last_status == 503:
            raise ServiceUnavailable(
                f"service at {self.host}:{self.port} still shedding after "
                f"{self.retries + 1} attempts",
                status=503,
                payload=last_payload,
            )
        raise ServiceUnavailable(
            f"cannot reach service at {self.host}:{self.port}: "
            f"{last_error or 'unknown error'}"
        )

    # -- endpoints --------------------------------------------------------

    def analyze(
        self,
        source: str,
        name: str = "request",
        deadline_ms: Optional[float] = None,
        include_input: bool = False,
        transforms: bool = False,
    ) -> Dict[str, Any]:
        """Analyze one kernel; returns the decoded response payload.

        Raises :class:`ServiceError` for 4xx/5xx answers (the payload is
        attached) and :class:`ServiceUnavailable` when every retry shed
        or failed to connect.  A ``degraded`` 200 is returned normally —
        degradation is an answer, not an error.
        """
        payload: Dict[str, Any] = {"source": source, "name": name}
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if include_input:
            payload["include_input"] = True
        if transforms:
            payload["transforms"] = True
        status, decoded = self.request("POST", "/analyze", payload)
        if status != 200:
            raise ServiceError(
                decoded.get("detail") or decoded.get("error")
                or f"HTTP {status}",
                status=status,
                payload=decoded,
            )
        return decoded

    def healthz(self) -> Dict[str, Any]:
        """The server's health report."""
        status, decoded = self.request("GET", "/healthz")
        if status != 200:
            raise ServiceError(f"HTTP {status}", status=status, payload=decoded)
        return decoded

    def stats(self) -> Dict[str, Any]:
        """Service- and engine-level counters."""
        status, decoded = self.request("GET", "/stats")
        if status != 200:
            raise ServiceError(f"HTTP {status}", status=status, payload=decoded)
        return decoded
