"""Circuit breakers for the service's fallible backends.

The long-running service wraps each unreliable collaborator — the
persistent verdict store, the worker pool — in a :class:`CircuitBreaker`.
The pattern is the classic three-state machine:

* **closed** — normal operation; failures are counted within a sliding
  window.  Enough failures close together trip the breaker.
* **open** — the collaborator is bypassed entirely (store detached →
  memory-only caching; pool bypassed → all-serial builds).  Requests keep
  succeeding, just degraded.  After ``reset_timeout`` seconds the breaker
  becomes willing to probe.
* **half-open** — exactly one probe is allowed through to the real
  collaborator.  Success closes the breaker (full service restored);
  failure re-opens it and restarts the timer.

Tripping is *load-shedding for a dependency*: it converts a storm of
per-request failures (each one a degraded verdict and a logged fault)
into one mode switch, and converts recovery from "every request retries
the broken store" into one cheap periodic probe.

The clock is injectable so the state machine is testable without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Sliding-window failure counter with open/half-open/closed states.

    Not thread-safe by itself: the service mutates it only from the event
    loop thread (analysis threads report outcomes back to the loop).
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        window: float = 30.0,
        reset_timeout: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.window = window
        self.reset_timeout = reset_timeout
        self._clock = clock
        self.state = CLOSED
        self.opened_at = 0.0
        self.trips = 0
        self.probes = 0
        self.total_failures = 0
        self._recent: List[float] = []

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        self._recent = [t for t in self._recent if t > cutoff]

    def record_failure(self, count: int = 1) -> bool:
        """Count ``count`` failures; returns True when this call trips.

        In the half-open state any failure means the probe failed: the
        breaker re-opens immediately and the reset timer restarts.
        """
        if count <= 0:
            return False
        now = self._clock()
        self.total_failures += count
        if self.state == HALF_OPEN:
            self.state = OPEN
            self.opened_at = now
            self._recent = []
            return True
        if self.state == OPEN:
            return False
        self._recent.extend([now] * count)
        self._prune(now)
        if len(self._recent) >= self.failure_threshold:
            self.state = OPEN
            self.opened_at = now
            self.trips += 1
            self._recent = []
            return True
        return False

    def trip(self) -> None:
        """Force the breaker open (e.g. the collaborator is already gone).

        Used when a lower layer has unilaterally abandoned the
        collaborator — the engine's driver detaches a failing store on
        its own — so the breaker's view must catch up regardless of how
        many failures its window has seen.
        """
        if self.state != OPEN:
            self.state = OPEN
            self.trips += 1
        self.opened_at = self._clock()
        self._recent = []

    def record_success(self) -> bool:
        """Report a successful interaction; returns True when this closes.

        A half-open success closes the breaker.  Closed successes clear
        the failure window, so only failure *bursts* trip it.
        """
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self._recent = []
            return True
        if self.state == CLOSED:
            self._recent = []
        return False

    @property
    def allows(self) -> bool:
        """True while the collaborator may be used (closed or probing)."""
        return self.state != OPEN

    def should_probe(self) -> bool:
        """True exactly once per reset interval: moves open → half-open.

        The caller that receives True owns the probe; concurrent callers
        see False until the probe reports success or failure.
        """
        if self.state != OPEN:
            return False
        if self._clock() - self.opened_at < self.reset_timeout:
            return False
        self.state = HALF_OPEN
        self.probes += 1
        return True

    def as_dict(self) -> Dict[str, object]:
        """Health-endpoint form."""
        return {
            "state": self.state,
            "trips": self.trips,
            "probes": self.probes,
            "failures": self.total_failures,
        }

    def __str__(self) -> str:
        return f"breaker[{self.name}]: {self.state} ({self.trips} trips)"
