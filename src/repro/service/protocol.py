"""Request/response schema of the analysis service.

The service speaks JSON over HTTP.  One request carries one Fortran
kernel; one response carries the full dependence analysis — typed edges
with direction vectors, per-loop parallelism verdicts, recorder counters
— plus the degradation metadata that makes the service's conservative
contract auditable: every response says whether it is ``complete`` or
``degraded``, and a degraded response lists the absorbed failures that
forced assumed-dependence edges.  Degraded responses never drop edges;
they only *add* conservative ones, so a client consuming a degraded
response can still parallelize safely (it just parallelizes less).

The module is deliberately free of any server machinery so the client,
the server, and the tests share one encoding.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.dirvec.vectors import format_vector
from repro.engine.stats import EngineStats
from repro.graph.depgraph import DependenceEdge, DependenceGraph
from repro.instrument import TestRecorder
from repro.transform.parallel import LoopParallelism

#: Largest accepted request body, in bytes.  Kernels in the paper's corpus
#: are a few hundred lines; 2 MiB leaves two orders of magnitude of slack
#: while keeping a misbehaving client from ballooning the server.
MAX_BODY_BYTES = 2 * 1024 * 1024

#: Smallest accepted deadline.  Below this the request would expire before
#: the parser finishes and every answer would be fully assumed — reject it
#: up front instead of burning a slot on it.
MIN_DEADLINE_MS = 1.0


class ProtocolError(ValueError):
    """A malformed request (maps to HTTP 400)."""


@dataclass
class AnalyzeRequest:
    """One parsed, validated ``POST /analyze`` body.

    ``deadline_ms`` caps the request's wall-clock analysis time (``None``
    defers to the server default); ``include_input`` and ``transforms``
    mirror the CLI's ``analyze`` flags.
    """

    source: str
    name: str = "request"
    deadline_ms: Optional[float] = None
    include_input: bool = False
    transforms: bool = False

    @classmethod
    def from_payload(cls, payload: Any) -> "AnalyzeRequest":
        """Validate a decoded JSON body; raises :class:`ProtocolError`."""
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ProtocolError('"source" must be a non-empty string')
        name = payload.get("name", "request")
        if not isinstance(name, str) or not name:
            raise ProtocolError('"name" must be a non-empty string')
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            if not isinstance(deadline_ms, (int, float)) or isinstance(
                deadline_ms, bool
            ):
                raise ProtocolError('"deadline_ms" must be a number')
            if deadline_ms < MIN_DEADLINE_MS:
                raise ProtocolError(
                    f'"deadline_ms" must be >= {MIN_DEADLINE_MS:g}'
                )
            deadline_ms = float(deadline_ms)
        include_input = payload.get("include_input", False)
        transforms = payload.get("transforms", False)
        for flag, value in (
            ("include_input", include_input),
            ("transforms", transforms),
        ):
            if not isinstance(value, bool):
                raise ProtocolError(f'"{flag}" must be a boolean')
        unknown = set(payload) - {
            "source",
            "name",
            "deadline_ms",
            "include_input",
            "transforms",
        }
        if unknown:
            raise ProtocolError(
                "unknown request fields: " + ", ".join(sorted(unknown))
            )
        return cls(
            source=source,
            name=name,
            deadline_ms=deadline_ms,
            include_input=include_input,
            transforms=transforms,
        )

    @classmethod
    def from_body(cls, body: bytes) -> "AnalyzeRequest":
        """Decode and validate a raw request body."""
        if len(body) > MAX_BODY_BYTES:
            raise ProtocolError(
                f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")
        return cls.from_payload(payload)

    def coalesce_key(self) -> str:
        """Digest identifying requests whose answers are interchangeable.

        Everything that shapes the *result* participates; the deadline
        does not — a tight-deadline request may ride on the full answer a
        generous one is already computing (it only gets a better answer).
        """
        basis = json.dumps(
            [self.source, self.name, self.include_input, self.transforms],
            separators=(",", ":"),
        )
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()


def edge_payload(
    edge: DependenceEdge, stmt_ids: Optional[Dict[int, int]] = None
) -> Dict[str, Any]:
    """JSON form of one dependence edge.

    ``source``/``sink`` are reference strings (``a(i+1)``); statement
    ids are renumbered through ``stmt_ids`` when given.
    """
    src_stmt = edge.source.stmt.stmt_id
    sink_stmt = edge.sink.stmt.stmt_id
    if stmt_ids is not None:
        src_stmt = stmt_ids.get(src_stmt, src_stmt)
        sink_stmt = stmt_ids.get(sink_stmt, sink_stmt)
    return {
        "type": str(edge.dep_type),
        "source": str(edge.source.ref),
        "sink": str(edge.sink.ref),
        "source_stmt": src_stmt,
        "sink_stmt": sink_stmt,
        "vectors": sorted(format_vector(v) for v in edge.vectors),
        "assumed": edge.assumed,
    }


def graph_payload(graph: DependenceGraph) -> Dict[str, Any]:
    """JSON form of one routine's dependence graph.

    Statement ids are renumbered densely in access-site order: the
    parser's statement counter is process-global, so raw ids drift
    between requests (and between server restarts).  Renumbering makes
    the payload a pure function of the routine's source — two requests
    for the same kernel produce byte-identical bodies no matter which
    process, or which parse, served them.
    """
    stmt_ids: Dict[int, int] = {}
    for site in graph.sites:
        raw = site.stmt.stmt_id
        if raw not in stmt_ids:
            stmt_ids[raw] = len(stmt_ids) + 1
    return {
        "edges": [edge_payload(edge, stmt_ids) for edge in graph.edges],
        "tested_pairs": graph.tested_pairs,
        "independent_pairs": graph.independent_pairs,
    }


def parallelism_payload(verdicts: List[LoopParallelism]) -> List[Dict[str, Any]]:
    """JSON form of the per-loop parallelism verdicts."""
    return [
        {
            "loop": verdict.loop.index,
            "parallel": verdict.parallel,
            "blocking_edges": len(verdict.blocking_edges),
        }
        for verdict in verdicts
    ]


def recorder_payload(recorder: TestRecorder) -> List[Dict[str, Any]]:
    """JSON form of the Table-3 test-application counters."""
    return [
        {"test": name, "applications": apps, "independences": inds}
        for name, apps, inds in recorder.rows()
    ]


def analysis_payload(
    request: AnalyzeRequest,
    routines: List[Dict[str, Any]],
    stats: EngineStats,
    recorder: TestRecorder,
    elapsed: float,
) -> Dict[str, Any]:
    """Assemble the full ``/analyze`` response body.

    ``status`` is ``"ok"`` when every pair was genuinely tested and
    ``"degraded"`` when any verdict was assumed (deadline expiry, store
    loss, worker crash, …).  Degraded responses carry the failure records
    so the client can see *why* the answer is conservative.
    """
    degraded = stats.degraded
    payload: Dict[str, Any] = {
        "status": "degraded" if degraded else "ok",
        "name": request.name,
        "degraded": degraded,
        "routines": routines,
        "tests": recorder_payload(recorder),
        "stats": stats.as_dict(),
        "elapsed_ms": round(elapsed * 1000.0, 3),
    }
    if degraded:
        payload["failures"] = [record.as_dict() for record in stats.failures]
        payload["assumed_pairs"] = stats.assumed
    return payload


def error_payload(error: str, detail: str = "") -> Dict[str, Any]:
    """Uniform error body for non-200 responses."""
    payload = {"status": "error", "error": error}
    if detail:
        payload["detail"] = detail
    return payload


def render_analysis(payload: Dict[str, Any]) -> str:
    """Human-readable rendering of an ``/analyze`` response.

    Mirrors the shape of ``repro-deps analyze`` output so the service
    client's text mode reads like the offline CLI.
    """
    lines: List[str] = []
    for routine in payload.get("routines", []):
        lines.append(f"=== {routine['name']} ===")
        graph = routine["graph"]
        for edge in graph["edges"]:
            vectors = ", ".join(edge["vectors"])
            text = (
                f"{edge['type']} {edge['source']} (S{edge['source_stmt']})"
                f" -> {edge['sink']} (S{edge['sink_stmt']}) {{{vectors}}}"
            )
            if edge["assumed"]:
                text += " [assumed]"
            lines.append(text)
        lines.append(
            f"({graph['tested_pairs']} pairs tested, "
            f"{graph['independent_pairs']} independent)"
        )
        for verdict in routine["parallel_loops"]:
            tag = "PARALLEL" if verdict["parallel"] else (
                f"serial (blocked by {verdict['blocking_edges']} edges)"
            )
            lines.append(f"DO {verdict['loop']}: {tag}")
        for suggestion in routine.get("transforms", []):
            lines.append(suggestion)
    if payload.get("degraded"):
        lines.append("")
        lines.append("DEGRADED RESULTS: some verdicts assumed conservatively")
        for failure in payload.get("failures", []):
            lines.append(
                f"  [{failure['kind']}] {failure['where']}: {failure['error']}"
            )
    return "\n".join(lines)
