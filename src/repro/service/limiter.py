"""Admission control: bounded concurrency with load shedding.

A long-running service that accepts every connection eventually serves
none of them well.  The :class:`AdmissionLimiter` bounds the work the
service holds at once in two layers:

* at most ``max_in_flight`` requests analyze concurrently (each one owns
  an executor thread and takes turns on the engine lock);
* at most ``max_queue`` further requests wait for a slot.

A request arriving beyond both bounds is *shed* immediately — the server
answers ``503`` with a ``Retry-After`` hint instead of letting the queue
(and every queued client's latency) grow without bound.  Shedding is the
backpressure half of the service's degradation story: under overload the
answers that are given stay fast and correct, and the overflow is told
honestly to come back later.

Coalesced requests bypass admission entirely — a duplicate of an
in-flight analysis consumes no slot, so deduplication happens *before*
backpressure and a thundering herd of identical kernels costs one slot.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Deque, Dict


class AdmissionLimiter:
    """Semaphore with a bounded wait queue and shed accounting.

    Event-loop only (no internal locking): every method must run on the
    loop thread.
    """

    def __init__(self, max_in_flight: int, max_queue: int):
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_in_flight = max_in_flight
        self.max_queue = max_queue
        self.in_flight = 0
        self.admitted = 0
        self.shed = 0
        self._waiters: Deque[asyncio.Future] = deque()

    @property
    def queued(self) -> int:
        """Requests currently waiting for a slot."""
        return sum(1 for f in self._waiters if not f.done())

    @property
    def saturated(self) -> bool:
        """True when a new arrival would be shed."""
        return (
            self.in_flight >= self.max_in_flight
            and self.queued >= self.max_queue
        )

    async def acquire(self) -> bool:
        """Take a slot; False means the request was shed.

        Sheds synchronously when both layers are full, otherwise waits
        (FIFO) until :meth:`release` hands this waiter a slot.
        """
        if self.in_flight < self.max_in_flight:
            self.in_flight += 1
            self.admitted += 1
            return True
        if self.queued >= self.max_queue:
            self.shed += 1
            return False
        future = asyncio.get_running_loop().create_future()
        self._waiters.append(future)
        try:
            await future
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                # The slot was granted concurrently with cancellation;
                # pass it to the next waiter so it isn't leaked.
                self._grant_or_free()
            raise
        self.admitted += 1
        return True

    def _grant_or_free(self) -> None:
        while self._waiters:
            future = self._waiters.popleft()
            if not future.done():
                # Transfer the slot: in_flight stays constant.
                future.set_result(True)
                return
        self.in_flight -= 1

    def release(self) -> None:
        """Return a slot, waking the oldest live waiter if any."""
        if self.in_flight <= 0:
            raise RuntimeError("release without matching acquire")
        self._grant_or_free()

    def retry_after(self) -> float:
        """Seconds a shed client should wait before retrying.

        Scales with the depth of the backlog: an almost-empty queue says
        "right away", a full one says "give it a few seconds".
        """
        backlog = self.in_flight + self.queued
        capacity = self.max_in_flight + self.max_queue
        return round(1.0 + 4.0 * (backlog / max(capacity, 1)), 1)

    def as_dict(self) -> Dict[str, object]:
        """Health-endpoint form."""
        return {
            "in_flight": self.in_flight,
            "queued": self.queued,
            "max_in_flight": self.max_in_flight,
            "max_queue": self.max_queue,
            "admitted": self.admitted,
            "shed": self.shed,
        }
