"""The long-running dependence-analysis service.

``repro-deps serve`` turns the engine into a resident process: one warm
:class:`~repro.engine.engine.DependenceEngine` — interning pools, LRU
verdict and plan tiers, a shared persistent store, a persistent worker
pool — serves every request, so the corpus-wide hit rate the paper's
empirical argument rests on accumulates across *clients*, not just
within one CLI invocation.

The server is a small hand-rolled HTTP/1.1 front end over ``asyncio``
(stdlib only, one reason this module exists at all), with the robustness
machinery layered around the engine seam:

* **Deadlines** — each request's ``deadline_ms`` becomes a
  :class:`~repro.engine.faults.Deadline` installed on the driver for the
  request's builds; pairs starting after expiry degrade O(1) to assumed
  dependence, so a timed-out request returns a *complete, conservative*
  graph flagged ``degraded`` — never a spurious independence, and (via a
  second, asyncio-side watchdog) never a hung connection.
* **Admission control** — an :class:`~repro.service.limiter.AdmissionLimiter`
  bounds in-flight work and queue depth; overflow is shed with ``503``
  and ``Retry-After``.
* **Coalescing** — concurrent requests for the same canonical body share
  one analysis; duplicates cost no admission slot.
* **Circuit breakers** — repeated store failures trip to memory-only
  mode, repeated pool failures trip to all-serial builds; both surface
  in ``/healthz`` and recover through half-open probes.
* **Graceful shutdown** — SIGTERM/SIGINT stop accepting work (new
  requests get ``503``), drain in-flight requests, checkpoint the store,
  and exit cleanly.

One invariant ties the layers together: the event loop thread never
acquires ``engine.serve_lock``.  A handler thread holds that lock for a
whole build, so a loop-side acquire would let one stuck build stall
every response — including the watchdog answer for the very request
that is stuck.  Engine mutations decided on the loop (breaker trips,
probe restores) are recorded as pending flags and applied by the next
analysis thread; ``/stats`` serves a snapshot the last analysis took.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import signal
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.corpus.loader import default_symbols
from repro.engine import faultinject
from repro.engine.engine import DependenceEngine
from repro.engine.faults import Deadline, FaultPolicy, DEFAULT_POLICY
from repro.engine.stats import EngineStats
from repro.engine.store import StoreError, VerdictStore
from repro.fortran.errors import FortranSyntaxError
from repro.fortran.parser import parse_program
from repro.instrument import TestRecorder
from repro.ir.normalize import normalize_program
from repro.service.breaker import CircuitBreaker
from repro.service.limiter import AdmissionLimiter
from repro.service.protocol import (
    MAX_BODY_BYTES,
    AnalyzeRequest,
    ProtocolError,
    analysis_payload,
    error_payload,
    graph_payload,
    parallelism_payload,
)
from repro.transform.parallel import find_parallel_loops
from repro.transform.peel import find_peeling_opportunities
from repro.transform.split import find_splitting_opportunities

class _BadRequest(Exception):
    """A request malformed below the JSON layer (e.g. bad Content-Length)."""


#: Reasons phrase for the HTTP status line.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServiceConfig:
    """Everything ``repro-deps serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 0
    jobs: int = 1
    backend: Optional[str] = None
    store_path: Optional[Path] = None
    store_shards: Optional[int] = None
    max_in_flight: int = 4
    queue_depth: int = 8
    #: Applied when a request carries no ``deadline_ms``; None = unbounded.
    default_deadline_ms: Optional[float] = None
    #: Extra wall time the asyncio watchdog grants past the engine
    #: deadline before answering for a stuck handler thread.
    watchdog_grace: float = 2.0
    #: Watchdog bound for requests with no deadline at all.
    max_request_seconds: float = 300.0
    #: How long shutdown waits for in-flight requests to drain.
    drain_timeout: float = 30.0
    #: Store breaker: this many ``store`` failures within ``window`` trip.
    store_failure_threshold: int = 3
    #: Pool breaker: this many crash/timeout failures within ``window`` trip.
    pool_failure_threshold: int = 3
    breaker_window: float = 30.0
    breaker_reset_timeout: float = 2.0
    policy: FaultPolicy = field(default_factory=lambda: DEFAULT_POLICY)
    cache_size: Optional[int] = None


@dataclass
class ServiceStats:
    """Service-level counters (the engine keeps the analysis ones)."""

    requests: int = 0
    ok: int = 0
    degraded: int = 0
    shed: int = 0
    coalesced: int = 0
    watchdog_timeouts: int = 0
    bad_requests: int = 0
    syntax_errors: int = 0
    internal_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "degraded": self.degraded,
            "shed": self.shed,
            "coalesced": self.coalesced,
            "watchdog_timeouts": self.watchdog_timeouts,
            "bad_requests": self.bad_requests,
            "syntax_errors": self.syntax_errors,
            "internal_errors": self.internal_errors,
        }


@dataclass
class _Coalesced:
    """One in-flight analysis shared by every duplicate request."""

    task: "asyncio.Task"
    waiters: int = 1
    started: float = field(default_factory=time.monotonic)


class DependenceService:
    """One warm engine behind an asyncio HTTP front end."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.engine: Optional[DependenceEngine] = None
        self.symbols = default_symbols()
        self.stats = ServiceStats()
        self.limiter = AdmissionLimiter(
            config.max_in_flight, config.queue_depth
        )
        self.store_breaker = CircuitBreaker(
            "store",
            failure_threshold=config.store_failure_threshold,
            window=config.breaker_window,
            reset_timeout=config.breaker_reset_timeout,
        )
        self.pool_breaker = CircuitBreaker(
            "pool",
            failure_threshold=config.pool_failure_threshold,
            window=config.breaker_window,
            reset_timeout=config.breaker_reset_timeout,
        )
        self._inflight: Dict[str, _Coalesced] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._tasks: set = set()
        self.port: Optional[int] = None
        self._detached_store_path: Optional[Path] = None
        #: Whether the service believes a store is currently attached;
        #: ``persist is None`` while this is True means the driver
        #: detached it unilaterally (whole-store failure) — the breaker
        #: must register that as a trip.
        self._store_attached = config.store_path is not None
        self._probing_store = False
        self._probing_pool = False
        #: Loop-decided engine transitions, applied by the next analysis
        #: thread: the event loop never takes ``engine.serve_lock`` (a
        #: build stuck while holding it would stall every response, the
        #: watchdog path included), so trips and probe-restores are
        #: recorded here and consumed executor-side before building.
        self._pending_store_trip = False
        self._pending_pool_trip = False
        self._pending_pool_restore = False
        #: ``engine.stats.as_dict()`` captured under the serve lock by
        #: the most recently completed analysis; ``/stats`` serves this
        #: snapshot so the loop never blocks on an in-progress build.
        self._engine_snapshot: Optional[Dict[str, Any]] = None
        self._started_at = time.monotonic()

    # -- lifecycle --------------------------------------------------------

    def _open_engine(self) -> None:
        config = self.config
        store = None
        if config.store_path is not None:
            store = VerdictStore(config.store_path, shards=config.store_shards)
        kwargs: Dict[str, Any] = {}
        if config.cache_size is not None:
            kwargs["cache_size"] = config.cache_size
        self.engine = DependenceEngine(
            symbols=self.symbols,
            jobs=config.jobs,
            backend=config.backend,
            store=store,
            policy=config.policy,
            **kwargs,
        )
        # Single-threaded at startup: safe to read without the lock.
        self._engine_snapshot = self.engine.stats.as_dict()

    async def start(self) -> None:
        """Open the engine and start listening; sets :attr:`port`."""
        self._stopped = asyncio.Event()
        self._open_engine()
        # One analysis per thread; sized to the admission bound so a slot
        # always has a thread (never queue inside the executor — admission
        # control is the only queue).
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.max_in_flight,
            thread_name_prefix="repro-analyze",
        )
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            family=socket.AF_INET,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (idempotent; loop required)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.stop())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass

    async def stop(self) -> None:
        """Drain in-flight work, checkpoint the store, release everything."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [t for t in self._tasks if not t.done()]
        if pending:
            await asyncio.wait(
                pending, timeout=self.config.drain_timeout
            )
        engine, self.engine = self.engine, None
        if engine is not None:
            store = engine.store
            await asyncio.get_running_loop().run_in_executor(
                None, self._close_engine, engine, store
            )
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        if self._stopped is not None:
            self._stopped.set()

    @staticmethod
    def _close_engine(engine: DependenceEngine, store: Optional[VerdictStore]) -> None:
        try:
            engine.close()
        finally:
            if store is not None and not store.closed:
                store.close()

    async def run(self) -> None:
        """Start, then block until a signal (or :meth:`stop`) finishes."""
        await self.start()
        self.install_signal_handlers()
        assert self._stopped is not None
        await self._stopped.wait()

    # -- HTTP plumbing ----------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        try:
            request = await asyncio.wait_for(
                self._read_request(reader), timeout=15.0
            )
            if request is None:
                return
            method, path, body = request
            status, payload, headers = await self._route(method, path, body)
            await self._respond(writer, status, payload, headers)
        except (asyncio.TimeoutError, ConnectionError, asyncio.IncompleteReadError):
            pass
        except _BadRequest as exc:
            self.stats.bad_requests += 1
            try:
                await self._respond(
                    writer, 400, error_payload("bad request", str(exc)), {}
                )
            except Exception:
                pass
        except Exception as exc:  # pragma: no cover - last-resort guard
            self.stats.internal_errors += 1
            try:
                await self._respond(
                    writer, 500, error_payload("internal", str(exc)), {}
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        try:
            method, target, _version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _BadRequest("malformed Content-Length header")
        if length < 0:
            raise _BadRequest("negative Content-Length header")
        if length > MAX_BODY_BYTES + 1024:
            # Read nothing further; the route layer answers 413.
            return method, target, b"\x00" * (MAX_BODY_BYTES + 1)
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        headers: Dict[str, str],
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if path == "/analyze":
            if method != "POST":
                return 405, error_payload("method not allowed"), {}
            return await self._analyze_route(body)
        if path == "/healthz":
            if method != "GET":
                return 405, error_payload("method not allowed"), {}
            return 200, self.health_payload(), {}
        if path == "/stats":
            if method != "GET":
                return 405, error_payload("method not allowed"), {}
            return 200, self.stats_payload(), {}
        return 404, error_payload("not found", path), {}

    # -- the analyze pipeline ---------------------------------------------

    async def _analyze_route(
        self, body: bytes
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        self.stats.requests += 1
        if self._draining or self.engine is None:
            return (
                503,
                error_payload("draining", "server is shutting down"),
                {"Retry-After": "5"},
            )
        if len(body) > MAX_BODY_BYTES:
            self.stats.bad_requests += 1
            return 413, error_payload("payload too large"), {}
        try:
            request = AnalyzeRequest.from_body(body)
        except ProtocolError as exc:
            self.stats.bad_requests += 1
            return 400, error_payload("bad request", str(exc)), {}

        deadline_ms = request.deadline_ms
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        wait_budget = (
            deadline_ms / 1000.0 + self.config.watchdog_grace
            if deadline_ms is not None
            else self.config.max_request_seconds
        )

        key = request.coalesce_key()
        entry = self._inflight.get(key)
        if entry is not None and not entry.task.done():
            # Coalesce: ride the in-flight analysis, consuming no slot.
            entry.waiters += 1
            self.stats.coalesced += 1
            return await self._await_analysis(entry.task, request, wait_budget)

        # Shed before queueing when saturated beyond both bounds.
        admitted = await self.limiter.acquire()
        if not admitted:
            self.stats.shed += 1
            return (
                503,
                error_payload("overloaded", "try again later"),
                {"Retry-After": f"{self.limiter.retry_after():g}"},
            )
        if self._draining or self.engine is None:
            self.limiter.release()
            return (
                503,
                error_payload("draining", "server is shutting down"),
                {"Retry-After": "5"},
            )

        task = asyncio.ensure_future(self._run_analysis(request, deadline_ms))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        self._inflight[key] = _Coalesced(task=task)

        def _cleanup(done: "asyncio.Task", key=key) -> None:
            if self._inflight.get(key) is not None and self._inflight[key].task is done:
                del self._inflight[key]
            self.limiter.release()

        task.add_done_callback(_cleanup)
        return await self._await_analysis(task, request, wait_budget)

    async def _await_analysis(
        self,
        task: "asyncio.Task",
        request: AnalyzeRequest,
        wait_budget: float,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Wait for a (possibly shared) analysis, bounded by the watchdog.

        The task is shielded: a watchdog timeout answers *this* client
        conservatively without cancelling the shared computation, which
        keeps filling the cache for coalesced waiters and future requests.
        """
        try:
            status, payload = await asyncio.wait_for(
                asyncio.shield(task), timeout=wait_budget
            )
        except asyncio.TimeoutError:
            self.stats.watchdog_timeouts += 1
            self.stats.degraded += 1
            return (
                200,
                {
                    "status": "degraded",
                    "name": request.name,
                    "degraded": True,
                    "watchdog_timeout": True,
                    "routines": [],
                    "failures": [
                        {
                            "kind": "deadline",
                            "where": request.name,
                            "error": "request exceeded its deadline before "
                            "analysis completed; no partial graph available",
                            "attempts": 1,
                        }
                    ],
                },
                {},
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.stats.internal_errors += 1
            return 500, error_payload("internal", str(exc)), {}
        if status == 200:
            if payload.get("degraded"):
                self.stats.degraded += 1
            else:
                self.stats.ok += 1
        elif status == 422:
            self.stats.syntax_errors += 1
        return status, dict(payload), {}

    async def _run_analysis(
        self, request: AnalyzeRequest, deadline_ms: Optional[float]
    ) -> Tuple[int, Dict[str, Any]]:
        """Run one analysis in the executor; owns breaker bookkeeping.

        ``probe_store``/``probe_pool`` mark this request as the *owner*
        of a half-open probe — only the owner's outcome settles the
        breaker, so a concurrent request that happened to run while the
        probe was outstanding (and may never have touched the
        collaborator at all) cannot close it.
        """
        engine = self.engine
        assert engine is not None and self._executor is not None
        loop = asyncio.get_running_loop()
        probe_store, probe_pool = await self._maybe_probe(loop)
        try:
            status, payload, outcome = await loop.run_in_executor(
                self._executor,
                self._analyze_sync,
                engine,
                request,
                deadline_ms,
            )
        except Exception as exc:
            self._settle_probe_failure(probe_store, probe_pool)
            self.stats.internal_errors += 1
            return 500, error_payload("internal", str(exc))
        self._settle_breakers(outcome, probe_store, probe_pool)
        return status, payload

    def _analyze_sync(
        self,
        engine: DependenceEngine,
        request: AnalyzeRequest,
        deadline_ms: Optional[float],
    ) -> Tuple[int, Dict[str, Any], Dict[str, int]]:
        """The blocking analysis body (runs on an executor thread).

        Returns ``(http_status, payload, outcome)`` where ``outcome``
        counts this request's store and pool failures for the breakers.
        """
        self._apply_pending_transitions(engine)
        started = time.perf_counter()
        faultinject.on_request()
        deadline = (
            Deadline(deadline_ms / 1000.0) if deadline_ms is not None else None
        )
        try:
            program = normalize_program(
                parse_program(request.source, name=request.name)
            )
        except FortranSyntaxError as exc:
            return (
                422,
                error_payload("syntax error", exc.diagnostic()),
                {"store": 0, "pool": 0, "syntax": 1},
            )
        stats = EngineStats()
        recorder = TestRecorder()
        routines = []
        for routine in program.routines:
            graph = engine.serve_build(
                routine.body,
                recorder=recorder,
                include_input=request.include_input,
                deadline=deadline,
                stats=stats,
            )
            verdicts = find_parallel_loops(
                routine.body, self.symbols, graph=graph
            )
            entry: Dict[str, Any] = {
                "name": routine.name,
                "graph": graph_payload(graph),
                "parallel_loops": parallelism_payload(verdicts),
            }
            if request.transforms:
                suggestions = [
                    str(s)
                    for s in find_peeling_opportunities(
                        routine.body, self.symbols, graph
                    )
                ]
                suggestions.extend(
                    str(s)
                    for s in find_splitting_opportunities(
                        routine.body, self.symbols, graph
                    )
                )
                entry["transforms"] = suggestions
            routines.append(entry)
        payload = analysis_payload(
            request, routines, stats, recorder, time.perf_counter() - started
        )
        outcome = {
            "store": sum(1 for f in stats.failures if f.kind == "store"),
            "pool": sum(
                1
                for f in stats.failures
                if f.kind in ("worker-crash", "chunk-timeout")
            ),
            "syntax": 0,
        }
        with engine.serve_lock:
            self._engine_snapshot = engine.stats.as_dict()
        return 200, payload, outcome

    # -- breakers ---------------------------------------------------------

    def _settle_breakers(
        self, outcome: Dict[str, int], probe_store: bool, probe_pool: bool
    ) -> None:
        """Feed one request's failure counts into both breakers.

        Runs on the event loop (the breakers are loop-owned), but never
        touches the engine under ``serve_lock`` — a trip decision is
        recorded as a pending flag and applied by the next analysis
        thread in :meth:`_apply_pending_transitions`.  Only the probe
        owner settles a half-open breaker; other requests feed the
        failure window only while the breaker is closed.

        The store needs one extra wrinkle: the driver detaches a failing
        store *itself* (first whole-store failure → memory-only, PR 3
        semantics), so by the time this runs the store may already be
        gone.  That self-detach is the trip — the breaker's window never
        sees a second failure because there is no store left to fail.
        Shard quarantines, by contrast, leave the store attached; those
        accumulate in the window and trip on repetition.
        """
        engine = self.engine
        if engine is None:
            return
        if outcome.get("syntax"):
            # Parse never touched store or pool, so an owned probe
            # proved nothing: settle it as a failure (re-open, retry
            # after the reset timeout) rather than leaving the breaker
            # half-open with no owner left to ever settle it.
            self._settle_probe_failure(probe_store, probe_pool)
            return
        store_failures = outcome.get("store", 0)
        driver_detached = (
            engine.driver.persist is None and self._store_attached
        )
        if driver_detached:
            self._store_attached = False
            self._detached_store_path = self.config.store_path
            self.store_breaker.record_failure(store_failures or 1)
            self.store_breaker.trip()
            if probe_store:
                self._probing_store = False
        elif probe_store:
            self._probing_store = False
            if store_failures:
                self.store_breaker.record_failure(store_failures)
                self._pending_store_trip = True
            else:
                self.store_breaker.record_success()
        elif self.store_breaker.state == "closed":
            if store_failures:
                if self.store_breaker.record_failure(store_failures):
                    self._pending_store_trip = True
            else:
                self.store_breaker.record_success()

        pool_failures = outcome.get("pool", 0)
        if probe_pool:
            self._probing_pool = False
            if pool_failures:
                self.pool_breaker.record_failure(pool_failures)
                self._pending_pool_trip = True
            else:
                # Probe passed: keep the restored worker count.
                self.pool_breaker.record_success()
        elif self.pool_breaker.state == "closed":
            if pool_failures:
                if self.pool_breaker.record_failure(pool_failures):
                    self._pending_pool_trip = True
            else:
                self.pool_breaker.record_success()

    def _settle_probe_failure(self, probe_store: bool, probe_pool: bool) -> None:
        """Settle owned probes as failed (re-open + re-degrade pending)."""
        if probe_store:
            self._probing_store = False
            self.store_breaker.record_failure()
            self._pending_store_trip = True
        if probe_pool:
            self._probing_pool = False
            self.pool_breaker.record_failure()
            self._pending_pool_trip = True

    def _apply_pending_transitions(self, engine: DependenceEngine) -> None:
        """Consume loop-decided trips/restores (analysis threads only).

        Order matters: a trip pending alongside a restore means a probe
        was granted after the trip decision, so the restore — the newer
        intent — must win.
        """
        if self._pending_store_trip:
            self._pending_store_trip = False
            self._trip_store_now(engine)
        if self._pending_pool_trip:
            self._pending_pool_trip = False
            self._trip_pool_now(engine)
        if self._pending_pool_restore:
            self._pending_pool_restore = False
            with engine.serve_lock:
                engine.jobs = self.config.jobs

    def _trip_store_now(self, engine: DependenceEngine) -> None:
        """Detach the persistent tier: memory-only until a probe succeeds."""
        with engine.serve_lock:
            store = engine.driver.persist
            engine.driver.persist = None
        self._store_attached = False
        if store is not None:
            self._detached_store_path = Path(store.path)
            try:
                if not store.closed:
                    store.close()
            except Exception:
                pass
        elif self.config.store_path is not None:
            self._detached_store_path = self.config.store_path

    def _trip_pool_now(self, engine: DependenceEngine) -> None:
        """Degrade to all-serial builds until a probe succeeds."""
        with engine.serve_lock:
            pool, engine._pool = engine._pool, None
            engine.jobs = 1
        if pool is not None:
            try:
                pool.shutdown(wait=False)
            except Exception:
                pass

    async def _maybe_probe(self, loop) -> Tuple[bool, bool]:
        """Half-open recovery: reattach store / restore pool for one probe.

        Returns ``(store_owner, pool_owner)``: True marks the calling
        request as the probe's owner — the one request whose outcome is
        allowed to settle the half-open breaker.  The store reattach
        runs on the default executor (it takes ``serve_lock``); the pool
        restore is a pending flag the owner's own analysis thread
        applies before building, so the probe request itself exercises
        the restored pool.
        """
        own_store = False
        own_pool = False
        if (
            not self._probing_store
            and self._detached_store_path is not None
            and self.store_breaker.should_probe()
        ):
            self._probing_store = True
            reattached = await loop.run_in_executor(
                None, self._reattach_store
            )
            if reattached:
                own_store = True
            else:
                # Couldn't even open: the probe fails without a request.
                self._probing_store = False
                self.store_breaker.record_failure()
        if (
            self.config.jobs > 1
            and not self._probing_pool
            and self.pool_breaker.should_probe()
        ):
            self._probing_pool = True
            self._pending_pool_restore = True
            own_pool = True
        return own_store, own_pool

    def _reattach_store(self) -> bool:
        engine = self.engine
        path = self._detached_store_path
        if engine is None or path is None:
            return False
        try:
            store = VerdictStore(path, shards=self.config.store_shards)
        except (StoreError, OSError, ValueError):
            return False
        with engine.serve_lock:
            engine.driver.persist = store
        self._store_attached = True
        return True

    # -- introspection ----------------------------------------------------

    def health_payload(self) -> Dict[str, Any]:
        engine = self.engine
        store_mode = "none"
        if engine is not None and engine.store is not None:
            store_mode = "attached"
        elif self._detached_store_path is not None:
            store_mode = "memory-only"
        elif self.config.store_path is not None:
            store_mode = "detached"
        healthy = (
            not self._draining
            and engine is not None
            and self.store_breaker.state == "closed"
            and self.pool_breaker.state == "closed"
        )
        return {
            "status": "ok" if healthy else ("draining" if self._draining else "degraded"),
            "draining": self._draining,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "store": {
                "mode": store_mode,
                "breaker": self.store_breaker.as_dict(),
            },
            "pool": {
                "jobs": engine.jobs if engine is not None else 0,
                "configured_jobs": self.config.jobs,
                "breaker": self.pool_breaker.as_dict(),
            },
            "admission": self.limiter.as_dict(),
        }

    def stats_payload(self) -> Dict[str, Any]:
        """Service and engine counters; never blocks on a build.

        The engine half is the snapshot the most recently completed
        analysis captured under ``serve_lock``; the request-level
        counters (shed/coalesced/degraded live on the loop, not on the
        engine) are overlaid here, mirroring ``EngineStats.as_dict``'s
        only-when-nonzero convention.
        """
        payload: Dict[str, Any] = {"service": self.stats.as_dict()}
        snapshot = self._engine_snapshot
        if self.engine is not None and snapshot is not None:
            engine_dict = dict(snapshot)
            if self.stats.shed or self.stats.coalesced or self.stats.degraded:
                engine_dict["shed_requests"] = self.stats.shed
                engine_dict["coalesced_requests"] = self.stats.coalesced
                engine_dict["degraded_requests"] = self.stats.degraded
            payload["engine"] = engine_dict
        return payload


def run_service(config: ServiceConfig, banner=None) -> int:
    """Blocking entry point for ``repro-deps serve``."""

    async def _main() -> None:
        service = DependenceService(config)
        await service.start()
        service.install_signal_handlers()
        if banner is not None:
            banner(service)
        assert service._stopped is not None
        await service._stopped.wait()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    return 0
