"""Constraint propagation for the Delta test (Section 5.3).

Two propagation mechanisms:

* **SIV constraint propagation** (5.3.1): a distance, point, or pinning
  line constraint on index ``i`` is turned into variable substitutions
  (``i' := i + d``; ``i := x, i' := y``; ``i := c/a`` / ``i' := c/b``) that
  are applied to the remaining MIV subscripts of the coupled group,
  typically reducing them to SIV or ZIV subscripts that can be retested.

* **RDIV constraint propagation** (5.3.2): a pair of coupled RDIV
  subscripts in opposite orientation (the classic ``A(i, j)`` vs
  ``A(j, i)`` shape) yields *linked* dependence distances
  ``d_u + d_v = s``; the legal joint direction vectors are derived exactly
  by integer feasibility over the loop spans.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.classify.pairs import PairContext, prime
from repro.classify.subscript import SIVShape
from repro.delta.constraints import (
    Constraint,
    DistanceConstraint,
    LineConstraint,
    PointConstraint,
)
from repro.dirvec.direction import Direction
from repro.symbolic.linexpr import LinearExpr
from repro.symbolic.ranges import Interval, is_finite


def substitutions_from_constraint(
    base: str, constraint: Constraint, context: PairContext
) -> Dict[str, LinearExpr]:
    """Variable substitutions implied by an index constraint.

    Only constraints that *pin* an occurrence (or tie the primed occurrence
    to the unprimed one) propagate; a general line constraint relates the
    occurrences without eliminating either, and the paper's algorithm does
    not propagate it.
    """
    src_name, sink_name = context.occurrence_names(base)
    substitutions: Dict[str, LinearExpr] = {}
    if isinstance(constraint, DistanceConstraint) and src_name and sink_name:
        substitutions[sink_name] = LinearExpr.var(src_name) + constraint.distance
    elif isinstance(constraint, PointConstraint):
        if src_name:
            substitutions[src_name] = constraint.x
        if sink_name:
            substitutions[sink_name] = constraint.y
    elif isinstance(constraint, LineConstraint):
        pinned_src = constraint.pinned_source()
        if pinned_src is not None and src_name:
            substitutions[src_name] = pinned_src
        pinned_sink = constraint.pinned_sink()
        if pinned_sink is not None and sink_name:
            substitutions[sink_name] = pinned_sink
    return substitutions


def rdiv_substitution(
    shape: SIVShape, context: PairContext
) -> Optional[Dict[str, LinearExpr]]:
    """Express one occurrence of an RDIV equation in terms of the other.

    ``a1*x + c1 = a2*y + c2`` gives ``y := (a1*x + c1 - c2)/a2`` when the
    division is exact, else ``x := (a2*y + c2 - c1)/a1``.  Returns None when
    neither direction divides evenly (the equation then only participates
    through the RDIV independence test).
    """
    if shape.src_name is None or shape.sink_name is None:
        return None
    x = LinearExpr.var(shape.src_name)
    y = LinearExpr.var(shape.sink_name)
    if shape.a2 != 0:
        numerator = x.scale(shape.a1) + shape.c1 - shape.c2
        try:
            return {shape.sink_name: numerator.exact_div(shape.a2)}
        except ValueError:
            pass
    if shape.a1 != 0:
        numerator = y.scale(shape.a2) + shape.c2 - shape.c1
        try:
            return {shape.src_name: numerator.exact_div(shape.a1)}
        except ValueError:
            pass
    return None


# ---------------------------------------------------------------------------
# RDIV coupling (Section 5.3.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RDIVLink:
    """Two opposite-orientation RDIV subscripts linking indices ``u`` and ``v``.

    Derived relation: ``u' = v + k2`` and ``v' = u + k1``, hence the
    dependence distances satisfy ``d_u + d_v = k1 + k2``.
    """

    u: str
    v: str
    k1: int  # v' = u + k1
    k2: int  # u' = v + k2

    @property
    def distance_sum(self) -> int:
        return self.k1 + self.k2


def match_rdiv_link(
    first: SIVShape, second: SIVShape, context: PairContext
) -> Optional[RDIVLink]:
    """Detect the linked-RDIV pattern between two RDIV shapes.

    ``first`` must relate source index ``u`` to sink index ``v``; ``second``
    the reverse.  Both equations must have equal coefficients on their two
    occurrences (the swap pattern ``A(a*i + c, a*j + e)`` vs
    ``A(a*j + c', a*i + e')``) and integral offsets.
    """
    if first.src_name is None or first.sink_name is None:
        return None
    if second.src_name is None or second.sink_name is None:
        return None
    u = first.src_name
    v_primed = first.sink_name
    if second.src_name != _unprime(v_primed) or second.sink_name != prime(u):
        return None
    if first.a1 != first.a2 or first.a1 == 0:
        return None
    if second.a1 != second.a2 or second.a1 == 0:
        return None
    # first: a*u + c1 = a*v' + c2  ->  v' = u + (c1 - c2)/a
    k1_expr = first.c1 - first.c2
    k2_expr = second.c1 - second.c2
    if not (k1_expr.is_constant() and k2_expr.is_constant()):
        return None
    if k1_expr.constant_value() % first.a1 != 0:
        return None
    if k2_expr.constant_value() % second.a1 != 0:
        return None
    k1 = k1_expr.constant_value() // first.a1
    k2 = k2_expr.constant_value() // second.a1
    return RDIVLink(u=u, v=_unprime(v_primed), k1=k1, k2=k2)


def rdiv_link_vectors(
    link: RDIVLink, context: PairContext
) -> FrozenSet[Tuple[Direction, Direction]]:
    """Joint direction vectors over ``(u, v)`` consistent with the link.

    Distances satisfy ``d_u = t`` and ``d_v = s - t`` with ``|t|`` bounded
    by the ``u`` loop span and ``|s - t|`` by the ``v`` loop span; each
    joint direction pair is kept iff an integer ``t`` realizes it.
    """
    s = link.distance_sum
    span_u = context.trip_span(link.u)
    span_v = context.trip_span(link.v)
    legal: List[Tuple[Direction, Direction]] = []
    for du, dv in itertools.product(
        (Direction.LT, Direction.EQ, Direction.GT), repeat=2
    ):
        t_range = _direction_interval(du, span_u)
        # d_v = s - t  ->  t = s - d_v
        dv_range = _direction_interval(dv, span_v)
        t_from_v = Interval(s, s) - dv_range
        if not t_range.intersect(t_from_v).is_empty():
            legal.append((du, dv))
    return frozenset(legal)


def _direction_interval(direction: Direction, span: Interval) -> Interval:
    """Integer distances compatible with a direction, bounded by the span."""
    hi = span.hi if is_finite(span.hi) else float("inf")
    if direction is Direction.LT:
        return Interval(1, hi)
    if direction is Direction.GT:
        return Interval(-hi, -1)
    return Interval(0, 0)


def _unprime(name: str) -> str:
    from repro.classify.pairs import unprime

    return unprime(name)
