"""The Delta test (Section 5 of the paper)."""

from repro.delta.constraints import (
    BOTTOM,
    Constraint,
    DistanceConstraint,
    EmptyConstraint,
    LineConstraint,
    NoConstraint,
    PointConstraint,
    TOP,
)
from repro.delta.delta import DEFAULT_OPTIONS, DeltaOptions, constraint_from_siv, delta_test
from repro.delta.normalize import normalize_pair, substitute_in_pair
from repro.delta.propagate import (
    RDIVLink,
    match_rdiv_link,
    rdiv_link_vectors,
    rdiv_substitution,
    substitutions_from_constraint,
)

__all__ = [
    "BOTTOM",
    "Constraint",
    "DistanceConstraint",
    "EmptyConstraint",
    "LineConstraint",
    "NoConstraint",
    "PointConstraint",
    "TOP",
    "DEFAULT_OPTIONS",
    "DeltaOptions",
    "constraint_from_siv",
    "delta_test",
    "normalize_pair",
    "substitute_in_pair",
    "RDIVLink",
    "match_rdiv_link",
    "rdiv_link_vectors",
    "rdiv_substitution",
    "substitutions_from_constraint",
]
