"""Normalization of subscript pairs for the Delta test.

The Delta test rewrites subscripts as constraints are propagated into them
(e.g. substituting ``i' := i + 1`` can make the *same* unprimed index
appear on both sides of a pair).  Classification and shape extraction
assume source subscripts mention only unprimed occurrences and sink
subscripts only primed ones, so after every substitution the pair is
re-normalized around the dependence difference ``h = src - sink``:

    src' = (unprimed index terms of h) + (invariant terms of h)
    sink' = -(primed index terms of h)

``src' - sink' == h`` always holds, identical occurrences cancel, and the
pair's classification reflects the *reduced* equation — exactly the
reduction step of the paper's Figure 3 examples.
"""

from __future__ import annotations

from typing import Dict

from repro.classify.pairs import PairContext, SubscriptPair, unprime, PRIME_SUFFIX
from repro.symbolic.linexpr import LinearExpr


def normalize_pair(pair: SubscriptPair, context: PairContext) -> SubscriptPair:
    """Re-normalize a (linear) pair around its dependence difference."""
    if not pair.is_linear:
        return pair
    h = pair.difference()
    src_terms: Dict[str, int] = {}
    sink_terms: Dict[str, int] = {}
    for name, coeff in h.terms:
        if name.endswith(PRIME_SUFFIX) and context.is_index(unprime(name)):
            sink_terms[name] = -coeff
        else:
            src_terms[name] = coeff
    src = LinearExpr(src_terms, h.const)
    sink = LinearExpr(sink_terms, 0)
    return SubscriptPair(pair.position, pair.src_raw, pair.sink_raw, src, sink)


def substitute_in_pair(
    pair: SubscriptPair,
    context: PairContext,
    substitutions: Dict[str, LinearExpr],
) -> SubscriptPair:
    """Apply variable substitutions to both sides and re-normalize.

    Returns the original pair object unchanged when no substituted variable
    occurs in it (so callers can detect progress by identity).
    """
    if not pair.is_linear:
        return pair
    assert pair.src is not None and pair.sink is not None
    mentioned = pair.src.variables() | pair.sink.variables()
    relevant = {name: expr for name, expr in substitutions.items() if name in mentioned}
    if not relevant:
        return pair
    src = pair.src.substitute_all(relevant)
    sink = pair.sink.substitute_all(relevant)
    updated = SubscriptPair(pair.position, pair.src_raw, pair.sink_raw, src, sink)
    return normalize_pair(updated, context)
