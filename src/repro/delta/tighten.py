"""FME-style range reduction inside the Delta test (Section 5.3 remark).

"If desired, additional precision may be gained by utilizing the
constraint to reduce the range of the remaining index, as in
Fourier-Motzkin Elimination [44]."

Each per-index constraint relates the two occurrences ``i`` and ``i'`` of
an index, so it projects each occurrence's range through the other's:

* ``i' = i + d``            →  ``R(i') ∩= R(i) + d`` and symmetrically;
* ``a*i + b*i' = c``        →  ``R(i) ∩= (c - b*R(i')) / a`` (etc.);
* ``i = x, i' = y``          →  point ranges.

Resulting rational bounds are rounded inward (variables are integers), so
ranges only ever shrink and remain integral.  The tightened ranges feed the
SIV/RDIV/Banerjee tests of the group's remaining subscripts, buying extra
refutations the constraint lattice alone cannot see.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional

from repro.classify.pairs import PairContext
from repro.delta.constraints import (
    Constraint,
    DistanceConstraint,
    LineConstraint,
    PointConstraint,
)
from repro.symbolic.ranges import Interval, ceil_frac, floor_frac, is_finite


def integerize(interval: Interval) -> Interval:
    """Round an interval inward to integer endpoints."""
    lo = interval.lo
    hi = interval.hi
    if is_finite(lo):
        lo = ceil_frac(lo if isinstance(lo, (int, Fraction)) else Fraction(lo))
    if is_finite(hi):
        hi = floor_frac(hi if isinstance(hi, (int, Fraction)) else Fraction(hi))
    return Interval(lo, hi)


def ranges_from_constraint(
    base: str,
    constraint: Constraint,
    context: PairContext,
    current: Dict[str, Interval],
) -> Dict[str, Interval]:
    """Range overrides implied by one index's constraint.

    ``current`` holds overrides accumulated so far (consulted so chains of
    constraints compose); returns only the *new* entries to merge.
    """
    src_name, sink_name = context.occurrence_names(base)
    if src_name is None or sink_name is None:
        return {}

    def range_of(name: str) -> Interval:
        return current.get(name, context.range_of(name))

    overrides: Dict[str, Interval] = {}
    if isinstance(constraint, DistanceConstraint):
        if not constraint.distance.is_constant():
            return {}
        d = constraint.distance.constant_value()
        overrides[sink_name] = integerize(range_of(src_name).shift(d))
        overrides[src_name] = integerize(range_of(sink_name).shift(-d))
    elif isinstance(constraint, PointConstraint):
        if constraint.x.is_constant():
            overrides[src_name] = Interval.point(constraint.x.constant_value())
        if constraint.y.is_constant():
            overrides[sink_name] = Interval.point(constraint.y.constant_value())
    elif isinstance(constraint, LineConstraint):
        if not constraint.c.is_constant():
            return {}
        c = constraint.c.constant_value()
        a, b = constraint.a, constraint.b
        if a != 0:
            projected = (
                Interval.point(c) - range_of(sink_name).scale(b)
            ).scale(Fraction(1, a))
            overrides[src_name] = integerize(projected)
        if b != 0:
            projected = (
                Interval.point(c) - range_of(src_name).scale(a)
            ).scale(Fraction(1, b))
            overrides[sink_name] = integerize(projected)
    return overrides


def tighten_ranges(
    constraints: Dict[str, Constraint],
    context: PairContext,
    rounds: int = 3,
) -> Dict[str, Interval]:
    """Fixpoint-ish range reduction over all current index constraints."""
    overrides: Dict[str, Interval] = {}
    for _ in range(rounds):
        changed = False
        for base, constraint in constraints.items():
            for name, interval in ranges_from_constraint(
                base, constraint, context, overrides
            ).items():
                previous = overrides.get(name, context.range_of(name))
                merged = previous.intersect(interval)
                if merged != previous:
                    overrides[name] = merged
                    changed = True
        if not changed:
            break
    return overrides
