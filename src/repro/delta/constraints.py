"""The Delta test's constraint lattice (Section 5.1-5.2).

Cheap SIV tests on the subscripts of a coupled group yield *constraints* on
each index's pair of iteration instances ``(i, i')``:

* :class:`NoConstraint` — ⊤, nothing known yet;
* :class:`DistanceConstraint` — ``i' - i = d`` (strong SIV; ``d`` possibly
  symbolic);
* :class:`LineConstraint` — ``a*i + b*i' = c`` (general/weak SIV; weak-zero
  is the ``b == 0`` case);
* :class:`PointConstraint` — ``i = x, i' = y`` (intersection of lines);
* :class:`EmptyConstraint` — ⊥, the constraints are inconsistent and the
  whole reference pair is independent.

Constraint *intersection* (Section 5.2) is closed-form on every pair of
shapes.  When symbolic terms keep an intersection from being decided, the
lattice keeps one operand — a sound over-approximation (the true solution
set is a subset of either operand).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.classify.pairs import PairContext
from repro.dirvec.direction import (
    ALL_DIRECTIONS,
    Direction,
    IndexConstraint,
    REFUTED,
    UNCONSTRAINED,
    constraint_from_distance,
)
from repro.symbolic.diophantine import has_solution_with_conditions
from repro.symbolic.linexpr import LinearExpr
from repro.symbolic.ranges import NEG_INF, POS_INF


class Constraint:
    """Base class of the Delta constraint lattice."""

    __slots__ = ()

    def intersect(self, other: "Constraint") -> "Constraint":
        """Lattice meet — dispatches on both shapes."""
        raise NotImplementedError

    def to_index_constraint(self, index: str, context: PairContext) -> IndexConstraint:
        """Direction/distance summary of this constraint for the merge step."""
        raise NotImplementedError


@dataclass(frozen=True)
class NoConstraint(Constraint):
    """⊤: the index is unconstrained."""

    def intersect(self, other: Constraint) -> Constraint:
        return other

    def to_index_constraint(self, index: str, context: PairContext) -> IndexConstraint:
        return UNCONSTRAINED

    def __str__(self) -> str:
        return "<none>"


@dataclass(frozen=True)
class EmptyConstraint(Constraint):
    """⊥: inconsistent constraints — independence proven."""

    def intersect(self, other: Constraint) -> Constraint:
        return self

    def to_index_constraint(self, index: str, context: PairContext) -> IndexConstraint:
        return REFUTED

    def __str__(self) -> str:
        return "<empty>"


TOP = NoConstraint()
BOTTOM = EmptyConstraint()


@dataclass(frozen=True)
class DistanceConstraint(Constraint):
    """``i' - i = d`` with ``d`` a (possibly symbolic) invariant expression."""

    distance: LinearExpr

    def intersect(self, other: Constraint) -> Constraint:
        if isinstance(other, (NoConstraint, EmptyConstraint)):
            return other.intersect(self)
        if isinstance(other, DistanceConstraint):
            difference = self.distance - other.distance
            if difference == LinearExpr.ZERO:
                return self
            if difference.is_constant():
                return BOTTOM
            # Undecidable symbolically: keeping either operand soundly
            # over-approximates the intersection; prefer a constant
            # distance (it yields exact directions downstream).
            if other.distance.is_constant():
                return other
            return self
        if isinstance(other, LineConstraint):
            return _intersect_distance_line(self, other)
        if isinstance(other, PointConstraint):
            return _check_point_against(other, self)
        raise TypeError(f"cannot intersect with {other!r}")

    def to_index_constraint(self, index: str, context: PairContext) -> IndexConstraint:
        if self.distance.is_constant():
            return constraint_from_distance(self.distance.constant_value())
        return constraint_from_distance(self.distance)

    def __str__(self) -> str:
        return f"<distance {self.distance}>"


@dataclass(frozen=True)
class LineConstraint(Constraint):
    """``a*i + b*i' = c`` — a line in the (i, i') dependence plane."""

    a: int
    b: int
    c: LinearExpr

    def __post_init__(self) -> None:
        if self.a == 0 and self.b == 0:
            raise ValueError("a line constraint needs a nonzero coefficient")

    def intersect(self, other: Constraint) -> Constraint:
        if isinstance(other, (NoConstraint, EmptyConstraint)):
            return other.intersect(self)
        if isinstance(other, DistanceConstraint):
            return _intersect_distance_line(other, self)
        if isinstance(other, LineConstraint):
            return _intersect_lines(self, other)
        if isinstance(other, PointConstraint):
            return _check_point_against(other, self)
        raise TypeError(f"cannot intersect with {other!r}")

    def pinned_source(self) -> Optional[LinearExpr]:
        """``i = c/a`` when the line pins the source occurrence (``b == 0``)."""
        if self.b == 0 and self.a != 0:
            try:
                return self.c.exact_div(self.a)
            except ValueError:
                return None
        return None

    def pinned_sink(self) -> Optional[LinearExpr]:
        """``i' = c/b`` when the line pins the sink occurrence (``a == 0``)."""
        if self.a == 0 and self.b != 0:
            try:
                return self.c.exact_div(self.b)
            except ValueError:
                return None
        return None

    def to_index_constraint(self, index: str, context: PairContext) -> IndexConstraint:
        from repro.classify.pairs import prime

        if not self.c.is_constant():
            return UNCONSTRAINED
        c = self.c.constant_value()
        src_range = context.range_of(index)
        sink_range = context.range_of(prime(index))
        box = [
            (1, 0, src_range.lo, src_range.hi),
            (0, 1, sink_range.lo, sink_range.hi),
        ]
        if not has_solution_with_conditions(self.a, self.b, c, box):
            return REFUTED
        directions = set()
        if has_solution_with_conditions(self.a, self.b, c, box + [(1, -1, NEG_INF, -1)]):
            directions.add(Direction.LT)
        if has_solution_with_conditions(self.a, self.b, c, box + [(1, -1, 0, 0)]):
            directions.add(Direction.EQ)
        if has_solution_with_conditions(self.a, self.b, c, box + [(1, -1, 1, POS_INF)]):
            directions.add(Direction.GT)
        return IndexConstraint(frozenset(directions))

    def __str__(self) -> str:
        return f"<line {self.a}*i + {self.b}*i' = {self.c}>"


@dataclass(frozen=True)
class PointConstraint(Constraint):
    """``i = x`` and ``i' = y`` with invariant expressions ``x``, ``y``."""

    x: LinearExpr
    y: LinearExpr

    def intersect(self, other: Constraint) -> Constraint:
        if isinstance(other, (NoConstraint, EmptyConstraint)):
            return other.intersect(self)
        if isinstance(other, PointConstraint):
            if self.x == other.x and self.y == other.y:
                return self
            dx = self.x - other.x
            dy = self.y - other.y
            if (dx.is_constant() and dx.constant_value() != 0) or (
                dy.is_constant() and dy.constant_value() != 0
            ):
                return BOTTOM
            return self
        return _check_point_against(self, other)

    def to_index_constraint(self, index: str, context: PairContext) -> IndexConstraint:
        distance = self.y - self.x
        if distance.is_constant():
            return constraint_from_distance(distance.constant_value())
        return constraint_from_distance(distance)

    def __str__(self) -> str:
        return f"<point i={self.x}, i'={self.y}>"


# ---------------------------------------------------------------------------
# Intersection helpers
# ---------------------------------------------------------------------------


def _intersect_distance_line(
    distance: DistanceConstraint, line: LineConstraint
) -> Constraint:
    """Substitute ``i' = i + d`` into ``a*i + b*i' = c``."""
    coeff = line.a + line.b
    rhs = line.c - distance.distance.scale(line.b)
    if coeff == 0:
        if rhs == LinearExpr.ZERO:
            return distance  # the line contains the whole distance family
        if rhs.is_constant():
            return BOTTOM
        return distance
    try:
        x = rhs.exact_div(coeff)
    except ValueError:
        if rhs.is_constant():
            return BOTTOM  # non-integer intersection point
        return distance
    return PointConstraint(x, x + distance.distance)


def _intersect_lines(first: LineConstraint, second: LineConstraint) -> Constraint:
    """Solve the 2x2 system of two line constraints."""
    det = first.a * second.b - second.a * first.b
    if det == 0:
        # Parallel lines: same line or no intersection.
        scaled_diff = first.c.scale(second.a or second.b) - second.c.scale(
            first.a or first.b
        )
        if scaled_diff == LinearExpr.ZERO:
            return first
        if scaled_diff.is_constant():
            return BOTTOM
        return first
    x_num = first.c.scale(second.b) - second.c.scale(first.b)
    y_num = second.c.scale(first.a) - first.c.scale(second.a)
    try:
        x = x_num.exact_div(det)
        y = y_num.exact_div(det)
    except ValueError:
        if x_num.is_constant() and y_num.is_constant():
            return BOTTOM  # rational but non-integer intersection
        return first
    return PointConstraint(x, y)


def _check_point_against(point: PointConstraint, other: Constraint) -> Constraint:
    """Verify a point against a distance or line constraint."""
    if isinstance(other, DistanceConstraint):
        residue = (point.y - point.x) - other.distance
    elif isinstance(other, LineConstraint):
        residue = point.x.scale(other.a) + point.y.scale(other.b) - other.c
    else:
        raise TypeError(f"cannot check point against {other!r}")
    if residue == LinearExpr.ZERO:
        return point
    if residue.is_constant():
        return BOTTOM
    return point  # undecidable: keep the tighter operand
