"""The Delta test (Section 5): exact, efficient testing of coupled groups.

Algorithm (the paper's Figure 3):

1. Apply the cheap single-subscript tests (ZIV, the SIV suite) to every
   ZIV/SIV subscript of the coupled group.  Each SIV subscript yields a
   *constraint* on its index (distance / line / point); constraints on the
   same index are *intersected* — an empty intersection proves independence
   for the whole reference pair.
2. *Propagate* pinning constraints into the remaining MIV subscripts
   (substituting ``i' := i + d`` etc.), which often reduces them to SIV or
   ZIV subscripts; iterate until no subscript changes (multiple passes).
3. Apply RDIV handling: the RDIV independence test, the linked-RDIV
   direction coupling of Section 5.3.2, and RDIV substitution.
4. Any subscripts still MIV are handed to the Banerjee-GCD test; the final
   result merges every index's constraint into direction/distance vectors.

Each subscript is fully tested at most once per reduction, so the test is
linear in the number of subscripts (Section 5.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.classify.pairs import PairContext, SubscriptPair
from repro.classify.subscript import (
    SIVShape,
    SubscriptKind,
    classify,
    rdiv_shape,
    siv_shape,
)
from repro.delta.constraints import (
    BOTTOM,
    Constraint,
    DistanceConstraint,
    EmptyConstraint,
    LineConstraint,
    TOP,
)
from repro.delta.normalize import normalize_pair, substitute_in_pair
from repro.delta.tighten import tighten_ranges
from repro.delta.propagate import (
    match_rdiv_link,
    rdiv_link_vectors,
    rdiv_substitution,
    substitutions_from_constraint,
)
from repro.dirvec.vectors import Coupling
from repro.instrument import TestRecorder, maybe_record
from repro.single.miv import banerjee_gcd_test
from repro.single.outcome import TestOutcome
from repro.single.rdiv import rdiv_test
from repro.single.siv import siv_test
from repro.single.ziv import ziv_test
from repro.symbolic.linexpr import LinearExpr

TEST_NAME = "delta"


class DeltaOptions:
    """Ablation switches for the Delta test (used by the ablation benches).

    ``propagate`` disables step 2 (SIV constraint propagation) when False;
    ``multipass`` restricts the reduction to a single pass; ``rdiv_links``
    disables the Section 5.3.2 linked-RDIV coupling.
    """

    def __init__(
        self,
        propagate: bool = True,
        multipass: bool = True,
        rdiv_links: bool = True,
        tighten: bool = True,
    ):
        self.propagate = propagate
        self.multipass = multipass
        self.rdiv_links = rdiv_links
        self.tighten = tighten


DEFAULT_OPTIONS = DeltaOptions()


def delta_test(
    pairs: List[SubscriptPair],
    context: PairContext,
    recorder: Optional[TestRecorder] = None,
    options: DeltaOptions = DEFAULT_OPTIONS,
    budget=None,
) -> TestOutcome:
    """Run the Delta test on one minimal coupled group.

    Returns a ``TestOutcome`` named ``"delta"`` whose constraints/couplings
    summarize the group; independence is reported as soon as any constraint
    intersection empties or any inner test refutes the group.  ``budget``
    is an optional step allowance (anything with ``spend(n)``): each
    reduction pass charges one unit per pending subscript, bounding the
    multipass loop on pathological systems.
    """
    state = _DeltaState(context, recorder, options, budget)
    for pair in pairs:
        if pair.is_linear:
            state.pending.append(normalize_pair(pair, context))
        else:
            state.opaque.append(pair)
    independent = state.run()
    if independent:
        return maybe_record(
            recorder, TestOutcome.proves_independence(TEST_NAME, exact=state.exact)
        )
    outcome = TestOutcome(TEST_NAME, exact=state.exact)
    final_context = state.current_context()
    for base, constraint in state.constraints.items():
        outcome.constraints[base] = constraint.to_index_constraint(
            base, final_context
        )
    outcome.couplings.extend(state.couplings)
    outcome.notes["reduction_passes"] = state.passes
    outcome.notes["residual_miv"] = len(state.pending)
    return maybe_record(recorder, outcome)


class _DeltaState:
    """Mutable working state of one Delta test run."""

    def __init__(
        self,
        context: PairContext,
        recorder: Optional[TestRecorder],
        options: DeltaOptions,
        budget=None,
    ):
        self.context = context
        self.recorder = recorder
        self.options = options
        self.budget = budget
        self.pending: List[SubscriptPair] = []
        self.opaque: List[SubscriptPair] = []  # nonlinear: never testable
        self.constraints: Dict[str, Constraint] = {}
        self.couplings: List[Coupling] = []
        self.exact = True
        self.passes = 0
        self._rdiv_tested: Set[int] = set()
        self._tight_context: Optional[PairContext] = None

    def current_context(self) -> PairContext:
        """The pair context, with FME-style tightened ranges when enabled."""
        if not self.options.tighten or not self.constraints:
            return self.context
        if self._tight_context is None:
            overrides = tighten_ranges(self.constraints, self.context)
            if any(interval.is_empty() for interval in overrides.values()):
                raise _Independent()
            self._tight_context = (
                self.context.tightened(overrides) if overrides else self.context
            )
        return self._tight_context

    def _invalidate_context(self) -> None:
        self._tight_context = None

    # -- main loop -------------------------------------------------------

    def run(self) -> bool:
        """Execute the reduction loop; True means independence was proven."""
        if self.opaque:
            self.exact = False
        try:
            while True:
                self.passes += 1
                if self.budget is not None:
                    self.budget.spend(1 + len(self.pending))
                result = self._siv_pass()
                if result is not None:
                    return result
                if not self.pending:
                    break
                changed = self._rdiv_pass()
                if self.options.propagate and self._propagate_pass():
                    changed = True
                if not changed or not self.options.multipass:
                    break
        except _Independent:
            return True
        return self._finish_miv()

    # -- step 1: ZIV/SIV testing and constraint intersection ---------------

    def _siv_pass(self) -> Optional[bool]:
        """Test every ZIV/SIV subscript; returns True/False when decided."""
        remaining: List[SubscriptPair] = []
        for pair in self.pending:
            ctx = self.current_context()
            kind = classify(pair, self.context)
            if kind is SubscriptKind.ZIV:
                outcome = maybe_record(self.recorder, ziv_test(pair, ctx))
                if outcome.independent:
                    return True
                if not outcome.exact:
                    self.exact = False
                continue
            if kind.is_siv:
                outcome = maybe_record(self.recorder, siv_test(pair, ctx))
                if outcome.independent:
                    return True
                if not outcome.exact:
                    self.exact = False
                base = next(iter(self.context.subscript_bases(pair)))
                constraint = constraint_from_siv(
                    siv_shape(pair, self.context, base)
                )
                merged = self.constraints.get(base, TOP).intersect(constraint)
                merged = self._validate_against_ranges(base, merged)
                if isinstance(merged, EmptyConstraint):
                    return True
                self.constraints[base] = merged
                self._invalidate_context()
                continue
            remaining.append(pair)
        self.pending = remaining
        return None

    def _validate_against_ranges(self, base: str, constraint: Constraint) -> Constraint:
        """Refute a point constraint whose coordinates leave the loop bounds.

        Line intersections can land on integer points outside the iteration
        space (e.g. a weak-zero pin meeting a crossing line at ``i = 7`` in
        a 5-iteration loop); the constraint lattice itself is range-blind,
        so the bound check happens here.
        """
        from repro.delta.constraints import PointConstraint
        from repro.ir.context import eval_interval

        if not isinstance(constraint, PointConstraint):
            return constraint
        src_name, sink_name = self.context.occurrence_names(base)
        env = self.context.variable_env()
        for name, value in ((src_name, constraint.x), (sink_name, constraint.y)):
            if name is None:
                continue
            value_iv = eval_interval(value, env)
            if value_iv.intersect(self.context.range_of(name)).is_empty():
                return BOTTOM
        return constraint

    # -- step 3: RDIV handling ---------------------------------------------

    def _rdiv_pass(self) -> bool:
        rdiv_pairs: List[Tuple[SubscriptPair, SIVShape]] = []
        others: List[SubscriptPair] = []
        for pair in self.pending:
            if classify(pair, self.context) is SubscriptKind.RDIV:
                if id(pair) not in self._rdiv_tested:
                    self._rdiv_tested.add(id(pair))
                    outcome = maybe_record(
                        self.recorder, rdiv_test(pair, self.current_context())
                    )
                    if outcome.independent:
                        raise _Independent()
                try:
                    rdiv_pairs.append((pair, rdiv_shape(pair, self.context)))
                except ValueError:
                    others.append(pair)
            else:
                others.append(pair)
        changed = False
        consumed: Set[int] = set()
        if self.options.rdiv_links:
            changed |= self._link_rdiv(rdiv_pairs, consumed)
        # One remaining RDIV equation per pass may propagate by substitution
        # into every *other* pending subscript.  The equation itself stays
        # pending: its range constraint on the eliminated occurrence still
        # matters once later passes pin the other occurrence (a consumed
        # equation would silently widen the solution set).
        if self.options.propagate:
            for position, (pair, shape) in enumerate(rdiv_pairs):
                if position in consumed:
                    continue
                substitution = rdiv_substitution(shape, self.context)
                if not substitution:
                    continue
                rewrote = False
                new_others = []
                for other in others:
                    new_other = substitute_in_pair(other, self.context, substitution)
                    rewrote |= new_other is not other
                    new_others.append(new_other)
                others = new_others
                new_rdiv = []
                for idx, (p, s) in enumerate(rdiv_pairs):
                    if idx == position:
                        new_rdiv.append((p, s))
                        continue
                    new_p = substitute_in_pair(p, self.context, substitution)
                    rewrote |= new_p is not p
                    new_rdiv.append((new_p, s))
                rdiv_pairs = new_rdiv
                if rewrote:
                    changed = True
                    break
        for position, (pair, _) in enumerate(rdiv_pairs):
            if position not in consumed:
                others.append(pair)
        self.pending = others
        return changed

    def _link_rdiv(
        self,
        rdiv_pairs: List[Tuple[SubscriptPair, SIVShape]],
        consumed: Set[int],
    ) -> bool:
        changed = False
        for i, (_, first) in enumerate(rdiv_pairs):
            if i in consumed:
                continue
            for j in range(i + 1, len(rdiv_pairs)):
                if j in consumed:
                    continue
                second = rdiv_pairs[j][1]
                link = match_rdiv_link(first, second, self.context)
                if link is None:
                    link = match_rdiv_link(second, first, self.context)
                if link is None:
                    continue
                vectors = rdiv_link_vectors(link, self.context)
                if not vectors:
                    raise _Independent()
                if self.context.is_common(link.u) and self.context.is_common(link.v):
                    self.couplings.append(((link.u, link.v), vectors))
                consumed.add(i)
                consumed.add(j)
                changed = True
                break
        return changed

    # -- step 2: constraint propagation -------------------------------------

    def _propagate_pass(self) -> bool:
        substitutions: Dict[str, LinearExpr] = {}
        for base, constraint in self.constraints.items():
            substitutions.update(
                substitutions_from_constraint(base, constraint, self.context)
            )
        if not substitutions:
            return False
        changed = False
        updated: List[SubscriptPair] = []
        for pair in self.pending:
            new_pair = substitute_in_pair(pair, self.context, substitutions)
            if new_pair is not pair:
                changed = True
            updated.append(new_pair)
        self.pending = updated
        return changed

    # -- step 4: residual MIV subscripts -------------------------------------

    def _finish_miv(self) -> bool:
        for pair in self.pending:
            if self.budget is not None:
                self.budget.spend(1)
            outcome = maybe_record(
                self.recorder, banerjee_gcd_test(pair, self.current_context())
            )
            if outcome.independent:
                return True
            self.exact = False  # Banerjee answers are conservative
            self.couplings.extend(outcome.couplings)
        return False


class _Independent(Exception):
    """Internal control flow: a subscript of the group proved independence."""


def constraint_from_siv(shape: SIVShape) -> Constraint:
    """Derive a Delta constraint from an SIV subscript's coefficients.

    Strong SIV shapes yield a :class:`DistanceConstraint` (when the
    symbolic constant difference divides evenly); everything else yields
    the general :class:`LineConstraint` ``a1*i - a2*i' = c2 - c1``.
    """
    if shape.a1 == shape.a2 and shape.a1 != 0:
        difference = shape.c1 - shape.c2
        try:
            return DistanceConstraint(difference.exact_div(shape.a1))
        except ValueError:
            pass
    return LineConstraint(shape.a1, -shape.a2, shape.c2 - shape.c1)
