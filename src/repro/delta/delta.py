"""The Delta test (Section 5): exact, efficient testing of coupled groups.

Algorithm (the paper's Figure 3):

1. Apply the cheap single-subscript tests (ZIV, the SIV suite) to every
   ZIV/SIV subscript of the coupled group.  Each SIV subscript yields a
   *constraint* on its index (distance / line / point); constraints on the
   same index are *intersected* — an empty intersection proves independence
   for the whole reference pair.
2. *Propagate* pinning constraints into the remaining MIV subscripts
   (substituting ``i' := i + d`` etc.), which often reduces them to SIV or
   ZIV subscripts; iterate until no subscript changes (multiple passes).
3. Apply RDIV handling: the RDIV independence test, the linked-RDIV
   direction coupling of Section 5.3.2, and RDIV substitution.
4. Any subscripts still MIV are handed to the Banerjee-GCD test; the final
   result merges every index's constraint into direction/distance vectors.

Each subscript is fully tested at most once per reduction, so the test is
linear in the number of subscripts (Section 5.4).

Step 1 is structured as discrete *rounds*: each reduction pass first
collects every pending ZIV/SIV subscript together with the round's
(possibly range-tightened) context, then evaluates all of them, then
applies the outcomes sequentially — recording, constraint intersection,
early exit.  The round context is computed once at collection time, so
every subscript of a round is tested against the same ranges and the
evaluation order within a round cannot matter.  That makes the evaluation
step pluggable: :meth:`_DeltaState.run` accepts an ``evaluate`` callable
(and :meth:`_DeltaState.rounds` exposes the same protocol as a generator),
which the batched backend uses to evaluate one round's tests for *many*
coupled groups as a single vectorized pass.  The default evaluator calls
``ziv_test``/``siv_test`` per subscript, exactly as before.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.classify.pairs import PairContext, SubscriptPair
from repro.classify.subscript import (
    SIVShape,
    SubscriptKind,
    classify,
    rdiv_shape,
    siv_shape,
)
from repro.delta.constraints import (
    BOTTOM,
    Constraint,
    DistanceConstraint,
    EmptyConstraint,
    LineConstraint,
    TOP,
)
from repro.delta.normalize import normalize_pair, substitute_in_pair
from repro.delta.tighten import tighten_ranges
from repro.delta.propagate import (
    match_rdiv_link,
    rdiv_link_vectors,
    rdiv_substitution,
    substitutions_from_constraint,
)
from repro.dirvec.vectors import Coupling
from repro.instrument import TestRecorder, maybe_record
from repro.single.miv import banerjee_gcd_test
from repro.single.outcome import TestOutcome
from repro.single.rdiv import rdiv_test
from repro.single.siv import siv_test
from repro.single.ziv import ziv_test
from repro.symbolic.linexpr import LinearExpr

TEST_NAME = "delta"


class DeltaOptions:
    """Ablation switches for the Delta test (used by the ablation benches).

    ``propagate`` disables step 2 (SIV constraint propagation) when False;
    ``multipass`` restricts the reduction to a single pass; ``rdiv_links``
    disables the Section 5.3.2 linked-RDIV coupling.
    """

    def __init__(
        self,
        propagate: bool = True,
        multipass: bool = True,
        rdiv_links: bool = True,
        tighten: bool = True,
    ):
        self.propagate = propagate
        self.multipass = multipass
        self.rdiv_links = rdiv_links
        self.tighten = tighten


DEFAULT_OPTIONS = DeltaOptions()


def delta_test(
    pairs: List[SubscriptPair],
    context: PairContext,
    recorder: Optional[TestRecorder] = None,
    options: DeltaOptions = DEFAULT_OPTIONS,
    budget=None,
    evaluate=None,
) -> TestOutcome:
    """Run the Delta test on one minimal coupled group.

    Returns a ``TestOutcome`` named ``"delta"`` whose constraints/couplings
    summarize the group; independence is reported as soon as any constraint
    intersection empties or any inner test refutes the group.  ``budget``
    is an optional step allowance (anything with ``spend(n)``): each
    reduction pass charges one unit per pending subscript, bounding the
    multipass loop on pathological systems.

    ``evaluate`` overrides the per-round ZIV/SIV evaluation: a callable
    ``evaluate(tests, ctx) -> List[TestOutcome]`` receiving the round's
    ``(pair, kind)`` requests and shared context.  It must return the
    outcomes ``ziv_test``/``siv_test`` would produce for each request
    (typically serving most of them from a vectorized batch).
    """
    state = delta_prepare(pairs, context, recorder, options, budget)
    return delta_finalize(state, recorder, state.run(evaluate))


def delta_prepare(
    pairs: List[SubscriptPair],
    context: PairContext,
    recorder: Optional[TestRecorder] = None,
    options: DeltaOptions = DEFAULT_OPTIONS,
    budget=None,
) -> "_DeltaState":
    """Build the working state for one coupled group (``delta_test``'s
    prologue, shared with the batched backend's lock-step group runner)."""
    state = _DeltaState(context, recorder, options, budget)
    for pair in pairs:
        if pair.is_linear:
            state.pending.append(normalize_pair(pair, context))
        else:
            state.opaque.append(pair)
    return state


def delta_finalize(
    state: "_DeltaState",
    recorder: Optional[TestRecorder],
    independent: bool,
) -> TestOutcome:
    """Build (and record) the final ``"delta"`` outcome from a finished run.

    The final range-tightening pass can itself empty an index range — a
    proof of independence discovered while *reporting* the constraints —
    so the context computation participates in the independence decision
    rather than escaping as control flow.
    """
    final_context = None
    if not independent:
        try:
            final_context = state.current_context()
        except _Independent:
            independent = True
    if independent:
        return maybe_record(
            recorder, TestOutcome.proves_independence(TEST_NAME, exact=state.exact)
        )
    outcome = TestOutcome(TEST_NAME, exact=state.exact)
    for base, constraint in state.constraints.items():
        outcome.constraints[base] = constraint.to_index_constraint(
            base, final_context
        )
    outcome.couplings.extend(state.couplings)
    outcome.notes["reduction_passes"] = state.passes
    outcome.notes["residual_miv"] = len(state.pending)
    return maybe_record(recorder, outcome)


class _DeltaState:
    """Mutable working state of one Delta test run."""

    def __init__(
        self,
        context: PairContext,
        recorder: Optional[TestRecorder],
        options: DeltaOptions,
        budget=None,
    ):
        self.context = context
        self.recorder = recorder
        self.options = options
        self.budget = budget
        self.pending: List[SubscriptPair] = []
        self.opaque: List[SubscriptPair] = []  # nonlinear: never testable
        self.constraints: Dict[str, Constraint] = {}
        self.couplings: List[Coupling] = []
        self.exact = True
        self.passes = 0
        self._rdiv_tested: Set[int] = set()
        self._tight_context: Optional[PairContext] = None

    def current_context(self) -> PairContext:
        """The pair context, with FME-style tightened ranges when enabled."""
        if not self.options.tighten or not self.constraints:
            return self.context
        if self._tight_context is None:
            overrides = tighten_ranges(self.constraints, self.context)
            if any(interval.is_empty() for interval in overrides.values()):
                raise _Independent()
            self._tight_context = (
                self.context.tightened(overrides) if overrides else self.context
            )
        return self._tight_context

    def _invalidate_context(self) -> None:
        self._tight_context = None

    # -- main loop -------------------------------------------------------

    def run(self, evaluate=None) -> bool:
        """Execute the reduction loop; True means independence was proven.

        ``evaluate`` overrides the per-round ZIV/SIV evaluation (see
        :func:`delta_test`); the default evaluator applies the single
        tests one subscript at a time.
        """
        rounds = self.rounds()
        try:
            request = rounds.send(None)
            while True:
                tests, ctx = request
                if evaluate is None:
                    outcomes = self.evaluate_direct(tests, ctx)
                else:
                    outcomes = evaluate(tests, ctx)
                request = rounds.send(outcomes)
        except StopIteration as stop:
            return bool(stop.value)

    def rounds(self):
        """Generator protocol behind :meth:`run`: the lock-step seam.

        Yields one ``(tests, ctx)`` request per reduction pass — the
        round's pending ZIV/SIV subscripts as ``(pair, kind)`` tuples and
        the round-start (tightened) context every one of them is tested
        against — and expects the matching outcome list back via
        ``send``.  Constraint intersection, propagation, RDIV handling,
        and the residual-MIV sweep all run inside the generator between
        rounds; the ``StopIteration`` value is True when independence was
        proven.  The batched backend drives many groups' generators in
        lock step, answering each round of requests with one vectorized
        evaluation across all of them.
        """
        if self.opaque:
            self.exact = False
        try:
            while True:
                self.passes += 1
                if self.budget is not None:
                    self.budget.spend(1 + len(self.pending))
                tests, remaining, ctx = self._collect_round()
                outcomes = yield (tests, ctx)
                self.pending = remaining
                decided = self._apply_round(tests, outcomes)
                if decided is not None:
                    return decided
                if not self.pending:
                    break
                changed = self._rdiv_pass()
                if self.options.propagate and self._propagate_pass():
                    changed = True
                if not changed or not self.options.multipass:
                    break
            return self._finish_miv()
        except _Independent:
            return True

    # -- step 1: ZIV/SIV testing and constraint intersection ---------------

    def _collect_round(
        self,
    ) -> Tuple[
        List[Tuple[SubscriptPair, SubscriptKind]],
        List[SubscriptPair],
        PairContext,
    ]:
        """Split pending subscripts into this round's ZIV/SIV test requests
        and the remaining (MIV/RDIV) subscripts; the round context is
        derived once, so every request is evaluated against the same
        ranges."""
        ctx = self.current_context()
        tests: List[Tuple[SubscriptPair, SubscriptKind]] = []
        remaining: List[SubscriptPair] = []
        for pair in self.pending:
            kind = classify(pair, self.context)
            if kind is SubscriptKind.ZIV or kind.is_siv:
                tests.append((pair, kind))
            else:
                remaining.append(pair)
        return tests, remaining, ctx

    def evaluate_direct(
        self,
        tests: List[Tuple[SubscriptPair, SubscriptKind]],
        ctx: PairContext,
    ) -> List[TestOutcome]:
        """The reference evaluator: one ``ziv_test``/``siv_test`` per request."""
        return [
            ziv_test(pair, ctx)
            if kind is SubscriptKind.ZIV
            else siv_test(pair, ctx)
            for pair, kind in tests
        ]

    def _apply_round(
        self,
        tests: List[Tuple[SubscriptPair, SubscriptKind]],
        outcomes: List[TestOutcome],
    ) -> Optional[bool]:
        """Record outcomes and intersect constraints in request order.

        Early exits discard the rest of the round unrecorded, so the
        recorder sees exactly the prefix a sequential run would have
        evaluated.
        """
        for (pair, kind), outcome in zip(tests, outcomes):
            outcome = maybe_record(self.recorder, outcome)
            if outcome.independent:
                return True
            if not outcome.exact:
                self.exact = False
            if kind is SubscriptKind.ZIV:
                continue
            base = next(iter(self.context.subscript_bases(pair)))
            constraint = constraint_from_siv(
                siv_shape(pair, self.context, base)
            )
            merged = self.constraints.get(base, TOP).intersect(constraint)
            merged = self._validate_against_ranges(base, merged)
            if isinstance(merged, EmptyConstraint):
                return True
            self.constraints[base] = merged
            self._invalidate_context()
        return None

    def _validate_against_ranges(self, base: str, constraint: Constraint) -> Constraint:
        """Refute a point constraint whose coordinates leave the loop bounds.

        Line intersections can land on integer points outside the iteration
        space (e.g. a weak-zero pin meeting a crossing line at ``i = 7`` in
        a 5-iteration loop); the constraint lattice itself is range-blind,
        so the bound check happens here.
        """
        from repro.delta.constraints import PointConstraint
        from repro.ir.context import eval_interval

        if not isinstance(constraint, PointConstraint):
            return constraint
        src_name, sink_name = self.context.occurrence_names(base)
        env = self.context.variable_env()
        for name, value in ((src_name, constraint.x), (sink_name, constraint.y)):
            if name is None:
                continue
            value_iv = eval_interval(value, env)
            if value_iv.intersect(self.context.range_of(name)).is_empty():
                return BOTTOM
        return constraint

    # -- step 3: RDIV handling ---------------------------------------------

    def _rdiv_pass(self) -> bool:
        rdiv_pairs: List[Tuple[SubscriptPair, SIVShape]] = []
        others: List[SubscriptPair] = []
        for pair in self.pending:
            if classify(pair, self.context) is SubscriptKind.RDIV:
                if id(pair) not in self._rdiv_tested:
                    self._rdiv_tested.add(id(pair))
                    outcome = maybe_record(
                        self.recorder, rdiv_test(pair, self.current_context())
                    )
                    if outcome.independent:
                        raise _Independent()
                try:
                    rdiv_pairs.append((pair, rdiv_shape(pair, self.context)))
                except ValueError:
                    others.append(pair)
            else:
                others.append(pair)
        changed = False
        consumed: Set[int] = set()
        if self.options.rdiv_links:
            changed |= self._link_rdiv(rdiv_pairs, consumed)
        # One remaining RDIV equation per pass may propagate by substitution
        # into every *other* pending subscript.  The equation itself stays
        # pending: its range constraint on the eliminated occurrence still
        # matters once later passes pin the other occurrence (a consumed
        # equation would silently widen the solution set).
        if self.options.propagate:
            for position, (pair, shape) in enumerate(rdiv_pairs):
                if position in consumed:
                    continue
                substitution = rdiv_substitution(shape, self.context)
                if not substitution:
                    continue
                rewrote = False
                new_others = []
                for other in others:
                    new_other = substitute_in_pair(other, self.context, substitution)
                    rewrote |= new_other is not other
                    new_others.append(new_other)
                others = new_others
                new_rdiv = []
                for idx, (p, s) in enumerate(rdiv_pairs):
                    if idx == position:
                        new_rdiv.append((p, s))
                        continue
                    new_p = substitute_in_pair(p, self.context, substitution)
                    rewrote |= new_p is not p
                    new_rdiv.append((new_p, s))
                rdiv_pairs = new_rdiv
                if rewrote:
                    changed = True
                    break
        for position, (pair, _) in enumerate(rdiv_pairs):
            if position not in consumed:
                others.append(pair)
        self.pending = others
        return changed

    def _link_rdiv(
        self,
        rdiv_pairs: List[Tuple[SubscriptPair, SIVShape]],
        consumed: Set[int],
    ) -> bool:
        changed = False
        for i, (_, first) in enumerate(rdiv_pairs):
            if i in consumed:
                continue
            for j in range(i + 1, len(rdiv_pairs)):
                if j in consumed:
                    continue
                second = rdiv_pairs[j][1]
                link = match_rdiv_link(first, second, self.context)
                if link is None:
                    link = match_rdiv_link(second, first, self.context)
                if link is None:
                    continue
                vectors = rdiv_link_vectors(link, self.context)
                if not vectors:
                    raise _Independent()
                if self.context.is_common(link.u) and self.context.is_common(link.v):
                    self.couplings.append(((link.u, link.v), vectors))
                consumed.add(i)
                consumed.add(j)
                changed = True
                break
        return changed

    # -- step 2: constraint propagation -------------------------------------

    def _propagate_pass(self) -> bool:
        substitutions: Dict[str, LinearExpr] = {}
        for base, constraint in self.constraints.items():
            substitutions.update(
                substitutions_from_constraint(base, constraint, self.context)
            )
        if not substitutions:
            return False
        changed = False
        updated: List[SubscriptPair] = []
        for pair in self.pending:
            new_pair = substitute_in_pair(pair, self.context, substitutions)
            if new_pair is not pair:
                changed = True
            updated.append(new_pair)
        self.pending = updated
        return changed

    # -- step 4: residual MIV subscripts -------------------------------------

    def _finish_miv(self) -> bool:
        for pair in self.pending:
            if self.budget is not None:
                self.budget.spend(1)
            outcome = maybe_record(
                self.recorder, banerjee_gcd_test(pair, self.current_context())
            )
            if outcome.independent:
                return True
            self.exact = False  # Banerjee answers are conservative
            self.couplings.extend(outcome.couplings)
        return False


class _Independent(Exception):
    """Internal control flow: a subscript of the group proved independence."""


def constraint_from_siv(shape: SIVShape) -> Constraint:
    """Derive a Delta constraint from an SIV subscript's coefficients.

    Strong SIV shapes yield a :class:`DistanceConstraint` (when the
    symbolic constant difference divides evenly); everything else yields
    the general :class:`LineConstraint` ``a1*i - a2*i' = c2 - c1``.
    """
    if shape.a1 == shape.a2 and shape.a1 != 0:
        difference = shape.c1 - shape.c2
        try:
            return DistanceConstraint(difference.exact_div(shape.a1))
        except ValueError:
            pass
    return LineConstraint(shape.a1, -shape.a2, shape.c2 - shape.c1)
