"""Benchmark corpus: Fortran-subset kernels and synthetic generators."""

from repro.corpus.loader import (
    SUITES,
    available_programs,
    available_suites,
    default_symbols,
    load_corpus,
    load_program,
    load_suite,
)
from repro.corpus.generator import (
    coupled_group_nest,
    random_nest,
    siv_family,
    synthesize_corpus_tree,
)
from repro.corpus.stream import (
    CorpusStats,
    StreamingCorpusRunner,
    file_token,
    routine_token,
    stream_corpus,
    walk_tree,
)

__all__ = [
    "SUITES",
    "available_programs",
    "available_suites",
    "default_symbols",
    "load_corpus",
    "load_program",
    "load_suite",
    "coupled_group_nest",
    "random_nest",
    "siv_family",
    "synthesize_corpus_tree",
    "CorpusStats",
    "StreamingCorpusRunner",
    "file_token",
    "routine_token",
    "stream_corpus",
    "walk_tree",
]
