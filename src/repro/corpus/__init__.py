"""Benchmark corpus: Fortran-subset kernels and synthetic generators."""

from repro.corpus.loader import (
    SUITES,
    available_programs,
    available_suites,
    default_symbols,
    load_corpus,
    load_program,
    load_suite,
)
from repro.corpus.generator import (
    coupled_group_nest,
    random_nest,
    siv_family,
)

__all__ = [
    "SUITES",
    "available_programs",
    "available_suites",
    "default_symbols",
    "load_corpus",
    "load_program",
    "load_suite",
    "coupled_group_nest",
    "random_nest",
    "siv_family",
]
