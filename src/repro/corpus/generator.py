"""Synthetic loop-nest generators for benchmarks and property tests.

Provides deterministic, seedable generators for:

* random affine loop nests with a configurable mix of subscript classes
  (used to stress the classifier and the driver);
* *coupled-group* nests of a chosen size (the Delta-vs-Power timing sweep
  of the efficiency benchmark E1);
* SIV shape families for the special-case-vs-exact ablation (A2).

Generators build IR directly (no parsing) so timing benchmarks measure the
tests, not the front end.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.ir.expr import Add, Const, Expr, Mul, Var
from repro.ir.loop import ArrayRef, Assign, Loop, Node


def _affine(
    rng: random.Random,
    indices: Sequence[str],
    max_coeff: int,
    max_const: int,
    num_terms: int,
) -> Expr:
    """A random affine expression over a subset of the indices."""
    chosen = rng.sample(list(indices), k=min(num_terms, len(indices)))
    expr: Expr = Const(rng.randint(-max_const, max_const))
    for index in chosen:
        coeff = rng.choice([c for c in range(-max_coeff, max_coeff + 1) if c])
        term: Expr = Var(index) if coeff == 1 else Mul(Const(coeff), Var(index))
        expr = Add(expr, term)
    return expr


def random_nest(
    seed: int,
    depth: int = 2,
    statements: int = 4,
    arrays: int = 3,
    ndim: int = 2,
    extent: int = 100,
    max_coeff: int = 2,
    max_const: int = 5,
    miv_fraction: float = 0.2,
    coupled_fraction: Optional[float] = None,
) -> List[Node]:
    """A random perfect nest of assignments with mixed subscript classes.

    ``miv_fraction`` controls how often a subscript mentions two indices
    (matching the paper's observation that MIV subscripts are rare).

    ``coupled_fraction`` controls how subscript *positions* choose their
    loop index.  ``None`` (the default) keeps the legacy behaviour: every
    position samples an index uniformly, so in a depth-2 nest roughly half
    of all reference pairs share an index across positions and land in a
    coupled group.  A float switches to the paper's empirical profile —
    position ``k`` uses index ``k`` (the ubiquitous ``a(i, j)`` pattern,
    separable) and only with the given probability picks some other index
    (coupled subscript groups are rare in the surveyed programs).
    """
    rng = random.Random(seed)
    indices = [f"i{k}" for k in range(depth)]
    array_names = [f"a{k}" for k in range(arrays)]

    def subscript(position: int) -> Expr:
        if rng.random() < miv_fraction and depth >= 2:
            return _affine(rng, indices, max_coeff, max_const, 2)
        if rng.random() < 0.15:
            return Const(rng.randint(1, extent))  # ZIV
        if coupled_fraction is None:
            pool = indices
        elif rng.random() < coupled_fraction:
            pool = indices
        else:
            pool = [indices[position % depth]]
        return _affine(rng, pool, max_coeff, max_const, 1)

    def ref() -> ArrayRef:
        return ArrayRef(
            rng.choice(array_names),
            tuple(subscript(position) for position in range(ndim)),
        )

    body: List[Node] = []
    for _ in range(statements):
        lhs = ref()
        rhs_refs = [ref() for _ in range(rng.randint(1, 2))]
        rhs: Expr = _loads(rhs_refs)
        body.append(Assign(lhs, rhs))
    return _wrap(body, indices, extent)


def coupled_group_nest(
    subscripts: int,
    extent: int = 100,
    offset: int = 1,
) -> List[Node]:
    """A nest with one reference pair forming a coupled group of a given size.

    All dimensions share index ``i`` (plus a private index each), making one
    minimal coupled group with ``subscripts`` positions — the workload for
    the linear-complexity claim of Section 5.4.
    """
    indices = ["i"] + [f"j{k}" for k in range(subscripts - 1)]
    src_subs: List[Expr] = []
    sink_subs: List[Expr] = []
    src_subs.append(Add(Var("i"), Const(offset)))
    sink_subs.append(Var("i"))
    for k in range(subscripts - 1):
        src_subs.append(Add(Var("i"), Var(f"j{k}")))
        sink_subs.append(Add(Var("i"), Add(Var(f"j{k}"), Const(-offset))))
    write = ArrayRef("a", tuple(src_subs))
    read = ArrayRef("a", tuple(sink_subs))
    body: List[Node] = [Assign(write, _loads([read]))]
    return _wrap(body, indices, extent)


def siv_family(
    kind: str, count: int, extent: int = 100
) -> List[Tuple[Expr, Expr]]:
    """``count`` source/sink SIV subscript expression pairs of one shape.

    ``kind``: ``strong`` (``i+c`` vs ``i``), ``weak-zero`` (``i`` vs ``c``),
    ``weak-crossing`` (``i`` vs ``-i+c``), or ``general`` (``2i+c`` vs
    ``3i``).
    """
    pairs: List[Tuple[Expr, Expr]] = []
    for c in range(count):
        if kind == "strong":
            pairs.append((Add(Var("i"), Const(c % 7)), Var("i")))
        elif kind == "weak-zero":
            pairs.append((Var("i"), Const(1 + c % extent)))
        elif kind == "weak-crossing":
            pairs.append((Var("i"), Add(Mul(Const(-1), Var("i")), Const(c))))
        elif kind == "general":
            pairs.append((Add(Mul(Const(2), Var("i")), Const(c % 5)),
                          Mul(Const(3), Var("i"))))
        else:
            raise ValueError(f"unknown SIV family {kind!r}")
    return pairs


def random_program(
    seed: int,
    routines: int = 3,
    nests_per_routine: int = 2,
):
    """A random multi-routine program for robustness/fuzz testing.

    Mixes nest depths, dimensionalities, and subscript-class fractions so
    the full pipeline (classification, partitioning, all tests, the graph
    builder) is exercised on shapes no hand-written kernel covers.
    """
    from repro.ir.program import Program, Routine

    rng = random.Random(seed)
    built: List = []
    for r in range(routines):
        body: List[Node] = []
        for n in range(nests_per_routine):
            nest_seed = rng.randint(0, 2**31)
            body.extend(
                random_nest(
                    nest_seed,
                    depth=rng.randint(1, 3),
                    statements=rng.randint(1, 4),
                    arrays=rng.randint(1, 3),
                    ndim=rng.randint(1, 3),
                    extent=rng.choice([8, 50, 100]),
                    miv_fraction=rng.choice([0.0, 0.2, 0.5]),
                )
            )
        built.append(Routine(f"r{r}", body, source_lines=len(body) * 3))
    return Program(f"fuzz{seed}", built, suite="fuzz")


def _loads(refs: Sequence[ArrayRef]) -> Expr:
    from repro.ir.expr import IndexedLoad

    expr: Expr = IndexedLoad(refs[0].array, refs[0].subscripts)
    for ref in refs[1:]:
        expr = Add(expr, IndexedLoad(ref.array, ref.subscripts))
    return expr


def _wrap(body: List[Node], indices: Sequence[str], extent: int) -> List[Node]:
    nodes = body
    for index in reversed(list(indices)):
        nodes = [Loop(index, Const(1), Const(extent), 1, nodes)]
    return nodes


# ---------------------------------------------------------------------------
# Synthetic corpus *trees* (Fortran source text on disk)
# ---------------------------------------------------------------------------
#
# The streaming corpus driver (repro.corpus.stream) walks directory trees
# of real source files, so its gates need a deterministic way to grow one.
# Unlike the IR generators above, these emit parseable Fortran-subset
# *text* — the front end is part of what corpus runs exercise.

#: Source templates, parameterized by a carried-dependence distance
#: ``d`` in [1, 3].  The mix covers serial carried flow, fully parallel
#: loops, anti dependences, a 2-D stencil, and an SIV coefficient pair,
#: so synthetic corpora produce non-trivial graphs and verdicts.
_CORPUS_TEMPLATES = (
    (
        "      subroutine {name}(n, a, b)\n"
        "      integer n, i\n"
        "      real a(n), b(n)\n"
        "      do 10 i = {d1}, n\n"
        "         a(i) = a(i-{d}) + b(i)\n"
        "   10 continue\n"
        "      end\n"
    ),
    (
        "      subroutine {name}(n, a, b, c)\n"
        "      integer n, i\n"
        "      real a(n), b(n), c(n)\n"
        "      do 10 i = 1, n\n"
        "         a(i) = b(i) + c(i)\n"
        "   10 continue\n"
        "      end\n"
    ),
    (
        "      subroutine {name}(n, a, b)\n"
        "      integer n, i\n"
        "      real a(n), b(n)\n"
        "      do 10 i = 1, n - {d}\n"
        "         a(i) = a(i+{d}) + b(i)\n"
        "   10 continue\n"
        "      end\n"
    ),
    (
        "      subroutine {name}(n, a)\n"
        "      integer n, i, j\n"
        "      real a(n,n)\n"
        "      do 20 j = 2, n\n"
        "         do 10 i = 2, n\n"
        "            a(i, j) = a(i-1, j) + a(i, j-{d})\n"
        "   10    continue\n"
        "   20 continue\n"
        "      end\n"
    ),
    (
        "      subroutine {name}(n, a, b)\n"
        "      integer n, i\n"
        "      real a(n), b(n)\n"
        "      do 10 i = 1, n\n"
        "         a(2*i) = a(i) + b(i)\n"
        "   10 continue\n"
        "      end\n"
    ),
)


def synthesize_corpus_tree(
    root,
    files: int = 6,
    routines_per_file: int = 3,
    seed: int = 0,
    subdirs: int = 2,
) -> List["Path"]:
    """Write a deterministic synthetic Fortran corpus tree under ``root``.

    ``files`` source files of ``routines_per_file`` routines each are
    spread over ``subdirs`` subdirectories (0 keeps everything flat).
    Routine names encode their file and ordinal (``gen003r1``) so
    reports are self-identifying.  Everything derives from ``seed`` —
    the same arguments always produce byte-identical trees, which is
    what lets kill/resume and incremental gates compare outputs across
    processes.

    Returns the written file paths, sorted.
    """
    from pathlib import Path

    root = Path(root)
    rng = random.Random(seed)
    written: List[Path] = []
    for f in range(files):
        directory = root / f"sub{f % subdirs}" if subdirs > 0 else root
        directory.mkdir(parents=True, exist_ok=True)
        chunks = []
        for r in range(routines_per_file):
            template = rng.choice(_CORPUS_TEMPLATES)
            d = rng.randint(1, 3)
            chunks.append(template.format(
                name=f"gen{f:03d}r{r}", d=d, d1=d + 1
            ))
        path = directory / f"gen{f:03d}.f"
        path.write_text("".join(chunks))
        written.append(path)
    return sorted(written)
