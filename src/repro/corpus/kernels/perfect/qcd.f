      subroutine sweep(n, u, v, w)
      integer n, i, j, k
      real u(n,n,n), v(n,n,n), w(n,n,n)
c     QCD-flavor 3-D lattice sweeps (3-dim reference pairs)
      do 30 k = 2, n - 1
         do 20 j = 2, n - 1
            do 10 i = 2, n - 1
               u(i, j, k) = v(i, j, k) + w(i-1, j, k) + w(i+1, j, k)
     &                    + w(i, j-1, k) + w(i, j+1, k)
     &                    + w(i, j, k-1) + w(i, j, k+1)
   10       continue
   20    continue
   30 continue
      do 60 k = 1, n
         do 50 j = 1, n
            do 40 i = 1, n
               w(i, j, k) = u(i, j, k)
   40       continue
   50    continue
   60 continue
      end
