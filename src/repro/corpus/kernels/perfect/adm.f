      subroutine advec(n, m, q, qn, u, v, dx, dt)
      integer n, m, i, j
      real q(n,m), qn(n,m), u(n,m), v(n,m), dx, dt
c     ADM-flavor advection with upwind differences
      do 20 j = 2, m - 1
         do 10 i = 2, n - 1
            qn(i, j) = q(i, j) - dt*(u(i, j)*(q(i, j) - q(i-1, j))
     &               + v(i, j)*(q(i, j) - q(i, j-1)))/dx
   10    continue
   20 continue
      end
      subroutine transp(n, a, b)
      integer n, i, j
      real a(n,n), b(n,n)
c     transposition: the classic coupled RDIV pattern
      do 40 j = 1, n
         do 30 i = 1, n
            b(i, j) = a(j, i)
   30    continue
   40 continue
      end
      subroutine symupd(n, a, x, y)
      integer n, i, j
      real a(n,n), x(n), y(n)
c     symmetric rank-2 update: a(i,j) and a(j,i) in one nest
      do 60 j = 1, n
         do 50 i = 1, j
            a(i, j) = a(i, j) + x(i)*y(j)
            a(j, i) = a(i, j)
   50    continue
   60 continue
      end
