      subroutine eflux(il, jl, w, p, fs)
      integer il, jl, i, j
      real w(il,jl), p(il,jl), fs(il,jl)
c     FLO52-flavor flux sweeps on a staggered mesh
      do 20 j = 2, jl
         do 10 i = 1, il
            fs(i, j) = w(i, j) - w(i, j-1) + p(i, j)
   10    continue
   20 continue
      do 40 j = 2, jl - 1
         do 30 i = 2, il
            w(i, j) = w(i, j) + fs(i-1, j) - fs(i, j)
   30    continue
   40 continue
      end
      subroutine psmoo(il, jl, w, eps)
      integer il, jl, i, j
      real w(il,jl), eps
c     implicit residual smoothing: carried recurrences both directions
      do 60 j = 1, jl
         do 50 i = 2, il
            w(i, j) = w(i, j) + eps*w(i-1, j)
   50    continue
   60 continue
      do 80 j = 2, jl
         do 70 i = 1, il
            w(i, j) = w(i, j) + eps*w(i, j-1)
   70    continue
   80 continue
      end
