      subroutine trfint(n, m, x, xij, v)
      integer n, m, i, j, k, l, ij
      real x(n,n), xij(n), v(n)
c     TRFD-flavor triangular integral transformation nests
      do 30 i = 1, n
         do 20 j = 1, i
            do 10 k = 1, n
               x(i, j) = x(i, j) + v(k)*x(k, j)
   10       continue
   20    continue
   30 continue
c     linearized triangular index: nonlinear subscript i*(i-1)/2 + j
      do 50 i = 1, n
         do 40 j = 1, i
            xij(i*(i-1)/2 + j) = x(i, j)
   40    continue
   50 continue
      end
