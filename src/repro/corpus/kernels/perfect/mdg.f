      subroutine interf(n, x, f, cut)
      integer n, i, j
      real x(n), f(n), cut, r, t
c     MDG-flavor molecular dynamics pair interactions (RDIV-heavy)
      do 20 i = 1, n - 1
         do 10 j = i+1, n
            f(i) = f(i) + x(j)
            f(j) = f(j) - x(i)
   10    continue
   20 continue
      end
      subroutine predic(n, x, v, a, dt)
      integer n, i
      real x(n), v(n), a(n), dt
c     predictor sweep: fully parallel strong SIV
      do 30 i = 1, n
         x(i) = x(i) + dt*v(i) + 0.5*dt*dt*a(i)
         v(i) = v(i) + dt*a(i)
   30 continue
      end
