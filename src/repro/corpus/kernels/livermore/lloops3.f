      subroutine lloop2(n, x, v)
      integer n, k, ipntp, ipnt, i, ii
      real x(n), v(n)
c     Livermore kernel 2: ICCG excerpt (strided gather after normalization)
      do 10 k = 1, n/2
         x(k) = x(2*k) - v(2*k-1)*x(2*k-1)
   10 continue
      end
      subroutine lloop11(n, x, y)
      integer n, k
      real x(n), y(n)
c     Livermore kernel 11: first sum (prefix recurrence)
      x(1) = y(1)
      do 20 k = 2, n
         x(k) = x(k-1) + y(k)
   20 continue
      end
      subroutine lloop12(n, x, y)
      integer n, k
      real x(n), y(n)
c     Livermore kernel 12: first difference (fully parallel)
      do 30 k = 1, n
         x(k) = y(k+1) - y(k)
   30 continue
      end
      subroutine lloop21(n, px, vy, cx)
      integer n, i, j, k
      real px(n,n), vy(n,n), cx(n,n)
c     Livermore kernel 21: matrix product
      do 60 k = 1, n
         do 50 i = 1, n
            do 40 j = 1, n
               px(i, j) = px(i, j) + vy(i, k)*cx(k, j)
   40       continue
   50    continue
   60 continue
      end
