      subroutine lloop1(n, x, y, z, q, r, t)
      integer n, k
      real x(n), y(n), z(n), q, r, t
c     Livermore kernel 1: hydro fragment
      do 10 k = 1, n
         x(k) = q + y(k)*(r*z(k+10) + t*z(k+11))
   10 continue
      end
      subroutine lloop5(n, x, y, z)
      integer n, i
      real x(n), y(n), z(n)
c     Livermore kernel 5: tridiagonal elimination (carried recurrence)
      do 20 i = 2, n
         x(i) = z(i)*(y(i) - x(i-1))
   20 continue
      end
      subroutine lloop7(n, x, y, u, z)
      integer n, k
      real x(n), y(n), u(n), z(n)
c     Livermore kernel 7: equation of state fragment
      do 30 k = 1, n
         x(k) = u(k) + y(k)*(z(k+3) + z(k+2)) + u(k+6)*(u(k+3) + u(k+2))
   30 continue
      end
