      subroutine lloop18(n, jn, kn, za, zb, zm, zp, zq, zr, zu, zv, zz)
      integer jn, kn, j, k, n
      real za(n,n), zb(n,n), zm(n,n), zp(n,n), zq(n,n)
      real zr(n,n), zu(n,n), zv(n,n), zz(n,n)
c     Livermore kernel 18: 2-D explicit hydrodynamics fragment
      do 20 k = 2, kn
         do 10 j = 2, jn
            za(j, k) = (zp(j-1, k+1) + zq(j-1, k+1) - zp(j-1, k))
     &               * (zr(j, k) + zr(j-1, k))
            zb(j, k) = (zp(j-1, k) + zq(j-1, k) - zp(j, k))
     &               * (zr(j, k) + zr(j, k-1))
   10    continue
   20 continue
      do 40 k = 2, kn
         do 30 j = 2, jn
            zu(j, k) = zu(j, k) + za(j, k)*(zz(j, k) - zz(j+1, k))
            zv(j, k) = zv(j, k) + zb(j, k)*(zz(j, k) - zz(j, k-1))
   30    continue
   40 continue
      end
      subroutine wavefront(n, a)
      integer n, i, j
      real a(n,n)
c     the paper's simplified Livermore kernel: skewed-loop wavefront
      do 60 i = 2, n
         do 50 j = 2, n
            a(i, j) = a(i-1, j) + a(i, j-1)
   50    continue
   60 continue
      end
