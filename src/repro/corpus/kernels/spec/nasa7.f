      subroutine fftker(n, m, x, y)
      integer n, m, i, j, k
      real x(n), y(n)
c     FFT butterfly-style strided subscripts (NASA7 kernel flavor)
      do 20 k = 1, m
         do 10 i = 1, n/2
            y(2*i-1) = x(i) + x(i + n/2)
            y(2*i) = x(i) - x(i + n/2)
   10    continue
   20 continue
      end
      subroutine cholky(n, a)
      integer n, i, j, k
      real a(n,n)
c     cholesky factorization triangular nest
      do 60 j = 1, n
         do 40 k = 1, j - 1
            do 30 i = j, n
               a(i, j) = a(i, j) - a(i, k)*a(j, k)
   30       continue
   40    continue
         do 50 i = j+1, n
            a(i, j) = a(i, j) / a(j, j)
   50    continue
   60 continue
      end
      subroutine vpenta(n, a, b, c, d, e, f)
      integer n, i, j
      real a(n,n), b(n,n), c(n,n), d(n,n), e(n,n), f(n,n)
c     pentadiagonal inversion sweep
      do 80 j = 3, n
         do 70 i = 1, n
            f(i, j) = f(i, j) - a(i, j)*f(i, j-2) - b(i, j)*f(i, j-1)
   70    continue
   80 continue
      end
