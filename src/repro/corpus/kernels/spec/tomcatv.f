      subroutine tomcatv(n, x, y, rx, ry, aa, dd)
      integer n, i, j
      real x(n,n), y(n,n), rx(n,n), ry(n,n), aa(n,n), dd(n,n)
      real xx, yx, xy, yy, a, b, c, d
c     mesh generation sweeps from SPEC tomcatv (simplified)
      do 60 j = 2, n - 1
         do 50 i = 2, n - 1
            xx = x(i+1, j) - x(i-1, j)
            yx = y(i+1, j) - y(i-1, j)
            xy = x(i, j+1) - x(i, j-1)
            yy = y(i, j+1) - y(i, j-1)
            a = 0.25 * (xy*xy + yy*yy)
            b = 0.25 * (xx*xx + yx*yx)
            c = 0.125 * (xx*xy + yx*yy)
            rx(i, j) = a*x(i+1, j) + b*x(i, j+1) - c*x(i+1, j+1)
            ry(i, j) = a*y(i+1, j) + b*y(i, j+1) - c*y(i+1, j+1)
   50    continue
   60 continue
c     the paper's weak-zero example: use of first row y(1, j)
      do 80 i = 1, n
         aa(i, 1) = y(1, i)
         dd(i, 1) = y(i, 1) + y(1, 1)
   80 continue
c     tridiagonal forward sweep (loop-carried recurrence)
      do 100 j = 2, n
         do 90 i = 2, n - 1
            aa(i, j) = aa(i, j-1)*rx(i, j) + dd(i, j-1)
            dd(i, j) = dd(i, j-1) + rx(i, j)
   90    continue
  100 continue
      end
