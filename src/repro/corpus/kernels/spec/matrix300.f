      subroutine sgemm(n, a, b, c)
      integer n, i, j, k
      real a(n,n), b(n,n), c(n,n)
c     matrix multiply kernels in the three loop orders (SPEC matrix300)
      do 30 j = 1, n
         do 20 k = 1, n
            do 10 i = 1, n
               c(i, j) = c(i, j) + a(i, k)*b(k, j)
   10       continue
   20    continue
   30 continue
      end
      subroutine sgemv(n, a, x, y)
      integer n, i, j
      real a(n,n), x(n), y(n)
      do 50 j = 1, n
         do 40 i = 1, n
            y(i) = y(i) + a(i, j)*x(j)
   40    continue
   50 continue
      end
