      subroutine ddflux(n, m, u, v, flux, p)
      integer n, m, i, j
      real u(n,m), v(n,m), flux(n,m), p(n,m)
c     doduc-flavored physics sweeps: ZIV + strong SIV mixtures
      do 20 j = 1, m
         do 10 i = 2, n
            flux(i, j) = u(i, j) - u(i-1, j) + v(i, j)*p(i, j)
   10    continue
   20 continue
c     scalar-subscript (ZIV) boundary updates
      do 30 j = 1, m
         u(1, j) = u(2, j)
         u(n, j) = u(n-1, j)
         v(1, j) = 0.0
   30 continue
c     symbolic-constant offsets
      do 40 i = 1, n
         p(i, m) = p(i, m-1)
   40 continue
      end
