      subroutine redblk2(n, m, u)
      integer n, m, i, j
      real u(n,m)
c     red-black 2-D sweep on interleaved storage: GCD-provable strides
      do 20 j = 1, m/2
         do 10 i = 1, n/2
            u(2*i, 2*j) = u(2*i - 1, 2*j - 1) + u(2*i - 1, 2*j + 1)
   10    continue
   20 continue
      end
      subroutine bound(n, m, u, edge)
      integer n, m, i, j
      real u(n,m), edge(n)
c     boundary updates: many ZIV subscripts
      do 30 j = 1, m
         u(1, j) = u(2, j)
         u(n, j) = u(n - 1, j)
   30 continue
      do 40 i = 2, n - 1
         u(i, 1) = edge(i)
         u(i, m) = edge(i)
   40 continue
      u(1, 1) = 0.5*(u(1, 2) + u(2, 1))
      u(n, 1) = 0.5*(u(n, 2) + u(n - 1, 1))
      u(1, m) = 0.5*(u(1, m - 1) + u(2, m))
      u(n, m) = 0.5*(u(n, m - 1) + u(n - 1, m))
      end
