      program swm256
      integer n, m, itmax, ncycle
      real u(257,257), v(257,257), p(257,257)
      real unew(257,257), vnew(257,257), pnew(257,257)
      real uold(257,257), vold(257,257), pold(257,257)
      real cu(257,257), cv(257,257), z(257,257), h(257,257)
      real dt, tdt, dx, dy, alpha, tdts8, tdtsdx, tdtsdy
      end
      subroutine calc1(n, m, u, v, p, cu, cv, z, h, fsdx, fsdy)
      integer n, m, i, j
      real u(n,m), v(n,m), p(n,m), cu(n,m), cv(n,m), z(n,m), h(n,m)
      real fsdx, fsdy
c     SPEC swm256 first sweep: staggered-grid fluxes
      do 100 j = 1, m - 1
         do 100 i = 1, n - 1
            cu(i+1, j) = 0.5*(p(i+1, j) + p(i, j))*u(i+1, j)
            cv(i, j+1) = 0.5*(p(i, j+1) + p(i, j))*v(i, j+1)
            z(i+1, j+1) = (fsdx*(v(i+1, j+1) - v(i, j+1)) - fsdy*(u(i+1, j+1)
     &                  - u(i+1, j))) / (p(i, j) + p(i+1, j) + p(i+1, j+1)
     &                  + p(i, j+1))
            h(i, j) = p(i, j) + 0.25*(u(i+1, j)*u(i+1, j) + u(i, j)*u(i, j)
     &              + v(i, j+1)*v(i, j+1) + v(i, j)*v(i, j))
  100 continue
      end
      subroutine calc2(n, m, tdts8, tdtsdx, tdtsdy, u, v, p,
     &                 unew, vnew, pnew, uold, vold, pold, cu, cv, z, h)
      integer n, m, i, j
      real tdts8, tdtsdx, tdtsdy
      real u(n,m), v(n,m), p(n,m), unew(n,m), vnew(n,m), pnew(n,m)
      real uold(n,m), vold(n,m), pold(n,m), cu(n,m), cv(n,m), z(n,m), h(n,m)
c     second sweep: leapfrog update
      do 200 j = 1, m - 1
         do 200 i = 1, n - 1
            unew(i+1, j) = uold(i+1, j) + tdts8*(z(i+1, j+1) + z(i+1, j))
     &                   * (cv(i+1, j+1) + cv(i, j+1) + cv(i, j)
     &                   + cv(i+1, j)) - tdtsdx*(h(i+1, j) - h(i, j))
            vnew(i, j+1) = vold(i, j+1) - tdts8*(z(i+1, j+1) + z(i, j+1))
     &                   * (cu(i+1, j+1) + cu(i, j+1) + cu(i, j)
     &                   + cu(i+1, j)) - tdtsdy*(h(i, j+1) - h(i, j))
            pnew(i, j) = pold(i, j) - tdtsdx*(cu(i+1, j) - cu(i, j))
     &                 - tdtsdy*(cv(i, j+1) - cv(i, j))
  200 continue
      end
      subroutine calc3(n, m, alpha, u, v, p, unew, vnew, pnew,
     &                 uold, vold, pold)
      integer n, m, i, j
      real alpha
      real u(n,m), v(n,m), p(n,m), unew(n,m), vnew(n,m), pnew(n,m)
      real uold(n,m), vold(n,m), pold(n,m)
c     third sweep: time smoothing (Robert filter)
      do 300 j = 1, m
         do 300 i = 1, n
            uold(i, j) = u(i, j) + alpha*(unew(i, j) - 2.0*u(i, j)
     &                 + uold(i, j))
            vold(i, j) = v(i, j) + alpha*(vnew(i, j) - 2.0*v(i, j)
     &                 + vold(i, j))
            pold(i, j) = p(i, j) + alpha*(pnew(i, j) - 2.0*p(i, j)
     &                 + pold(i, j))
            u(i, j) = unew(i, j)
            v(i, j) = vnew(i, j)
            p(i, j) = pnew(i, j)
  300 continue
      end
      subroutine bndry(n, m, u, v, p)
      integer n, m, i, j
      real u(n,m), v(n,m), p(n,m)
c     periodic boundary conditions: many ZIV / weak-zero subscripts
      do 400 j = 1, m
         u(1, j) = u(n - 1, j)
         v(1, j) = v(n - 1, j)
         p(1, j) = p(n - 1, j)
         u(n, j) = u(2, j)
  400 continue
      do 500 i = 1, n
         u(i, 1) = u(i, m - 1)
         v(i, 1) = v(i, m - 1)
         p(i, m) = p(i, 2)
  500 continue
      end
