      subroutine twoel(n, x, g, f)
      integer n, i, j
      real x(n), g(n), f(n)
c     fpppp-flavor integral accumulation with symbolic offsets
      do 20 i = 1, n
         do 10 j = 1, n
            g(i) = g(i) + x(j)*f(j)
   10    continue
         g(i + n) = g(i)
   20 continue
      end
      subroutine fmtgen(m, t, w)
      integer m, i
      real t(m), w(m)
c     table generation: ZIV boundary cells + recurrence
      t(1) = 1.0
      w(1) = t(1)
      do 30 i = 2, m
         t(i) = t(i-1) * 0.5
         w(i) = t(i) + w(i-1)
   30 continue
      end
