      subroutine s111(n, a, b)
      integer n, i
      real a(n), b(n)
c     linear dependence testing: stride-2 anti pattern
      do 10 i = 2, n, 2
         a(i) = a(i-1) + b(i)
   10 continue
      end
      subroutine s112(n, a, b)
      integer n, i
      real a(n), b(n)
c     reversed loop with forward reference
      do 20 i = n - 1, 1, -1
         a(i+1) = a(i) + b(i)
   20 continue
      end
      subroutine s113(n, a, b)
      integer n, i
      real a(n), b(n)
c     a(i) = a(1): weak-zero across the whole loop
      do 30 i = 2, n
         a(i) = a(1) + b(i)
   30 continue
      end
      subroutine s114(n, a)
      integer n, i, j
      real a(n,n)
c     transposition below the diagonal: triangular coupled RDIV
      do 50 i = 1, n
         do 40 j = 1, i - 1
            a(i, j) = a(j, i) + 1.0
   40    continue
   50 continue
      end
      subroutine s115(n, a, b)
      integer n, i, j
      real a(n), b(n,n)
c     triangular saxpy: carried on the outer loop only
      do 70 j = 1, n
         do 60 i = j + 1, n
            a(i) = a(i) - b(i, j)*a(j)
   60    continue
   70 continue
      end
      subroutine s116(n, a)
      integer n, i
      real a(n)
c     five-point unrolled copy chain (loop-independent only)
      do 80 i = 1, n - 5, 5
         a(i) = a(i+1)
         a(i+1) = a(i+2)
         a(i+2) = a(i+3)
         a(i+3) = a(i+4)
         a(i+4) = a(i+5)
   80 continue
      end
      subroutine s118(n, a, b)
      integer n, i, j
      real a(n), b(n,n)
c     potential dependence cycle through two arrays
      do 100 i = 2, n
         do 90 j = 1, i - 1
            a(i) = a(i) + b(i, j)*a(i-j)
   90    continue
  100 continue
      end
      subroutine s119(n, a, b)
      integer n, i, j
      real a(n,n), b(n,n)
c     diagonal wavefront: carried on both loops
      do 120 i = 2, n
         do 110 j = 2, n
            a(i, j) = a(i-1, j-1) + b(i, j)
  110    continue
  120 continue
      end
