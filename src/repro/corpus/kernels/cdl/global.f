      subroutine s131(n, a, b)
      integer n, i, m
      real a(n), b(n)
c     statement reordering: forward loop-independent flow
      m = 1
      do 10 i = 1, n - 1
         a(i) = a(i + m) + b(i)
   10 continue
      end
      subroutine s132(n, a, b, c)
      integer n, i, j, k, m
      real a(n,n), b(n), c(n)
c     global forward substitution of loop-invariant scalars
      m = 1
      j = m
      k = m + 1
      do 20 i = 2, n
         a(i, j) = a(i-1, k) + b(i)*c(1)
   20 continue
      end
      subroutine s141(n, a, flat)
      integer n, i, j, k
      real a(n,n), flat(1)
c     nonlinear (linearized triangular) storage through an IV
      do 40 i = 1, n
         k = i*(i - 1)/2 + i
         do 30 j = i, n
            flat(k) = a(i, j)
            k = k + j
   30    continue
   40 continue
      end
      subroutine s151(n, a, b)
      integer n, i
      real a(n), b(n)
c     passing distance 1 through a scalar (node splitting target)
      do 50 i = 1, n - 1
         a(i) = a(i+1) + b(i)
   50 continue
      end
      subroutine s152(n, a, b, c)
      integer n, i
      real a(n), b(n), c(n)
c     flow then anti on the same array
      do 60 i = 2, n - 1
         b(i) = a(i+1)*c(i)
         a(i) = b(i) + c(i-1)
   60 continue
      end
