      subroutine s171(n, inc, a, b)
      integer n, inc, i
      real a(n), b(n)
c     symbolic stride (nonlinear after normalization of i*inc)
      do 10 i = 1, n
         a(i*inc) = a(i*inc) + b(i)
   10 continue
      end
      subroutine s172(n, m, a, b)
      integer n, m, i
      real a(n), b(n)
c     symbolic lower bound and stride via offset
      do 20 i = m, n
         a(i) = a(i - m) + b(i)
   20 continue
      end
      subroutine s173(n, a, b)
      integer n, i, k
      real a(n), b(n)
c     crossing threshold at the midpoint: a(i+n/2) never collides
      k = n/2
      do 30 i = 1, n/2
         a(i + k) = a(i) + b(i)
   30 continue
      end
      subroutine s174(n, m, a, b)
      integer n, m, i
      real a(n), b(n)
c     symbolic offset independence when 2*m > loop span
      do 40 i = 1, m
         a(i + 2*m) = a(i) + b(i)
   40 continue
      end
      subroutine s175(n, inc, a, b)
      integer n, inc, i
      real a(n), b(n)
c     symbolic-stride DO loop (rejected stride stays a symbol)
      do 50 i = 1, n - 1
         a(i) = a(i + inc) + b(i)
   50 continue
      end
      subroutine s176(n, a, b, c)
      integer n, m, i, j
      real a(n), b(n), c(n)
c     convolution with symbolic midpoint
      m = n/2
      do 70 j = 1, m
         do 60 i = 1, m
            a(i) = a(i) + b(i + m - j)*c(j)
   60    continue
   70 continue
      end
