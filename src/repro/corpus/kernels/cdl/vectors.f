      subroutine cdl01(n, a, b)
      integer n, i
      real a(n), b(n)
c     CDL vector suite: the paper's weak-crossing example
      do 10 i = 1, n
         a(i) = a(n - i + 1) + b(i)
   10 continue
      end
      subroutine cdl02(n, a, b, c)
      integer n, i
      real a(n), b(n), c(n)
c     statement reordering candidates: crossing and non-crossing mixes
      do 20 i = 1, n
         a(i) = b(i) + c(i)
         b(i+1) = a(i) * c(i)
   20 continue
      end
      subroutine cdl03(n, a)
      integer n, i
      real a(n)
c     stride-2 independence: even vs odd elements
      do 30 i = 1, n/2
         a(2*i) = a(2*i - 1) + 1.0
   30 continue
      end
      subroutine cdl04(n, m, a)
      integer n, m, i
      real a(n)
c     symbolic-offset independence (ZIV/symbolic strong SIV)
      do 40 i = 1, m
         a(i) = a(i + m) + a(i + 2*m)
   40 continue
      end
      subroutine cdl05(n, a, b, ind)
      integer n, i
      real a(n), b(n)
      integer ind(n)
c     index-array (nonlinear) subscripts
      do 50 i = 1, n
         a(ind(i)) = b(i)
   50 continue
      end
      subroutine cdl06(n, a, b)
      integer n, i
      real a(n), b(n)
c     loop peeling candidate: first-iteration weak-zero dependence
      do 60 i = 1, n
         b(i) = a(1) + a(i)
         a(i) = a(i) + 1.0
   60 continue
      end
      subroutine cdl07(n, a)
      integer n, i
      real a(2*n)
c     stride-2 overlap: GCD passes, Banerjee must decide
      do 70 i = 1, n
         a(2*i) = a(i) + 1.0
   70 continue
      end
      subroutine cdl08(n, a, b)
      integer n, i
      real a(n), b(n)
c     coupled distance conflict in a 2-D temporary (Delta-provable)
      real t(100, 100)
      do 80 i = 1, n
         t(i+1, i+2) = t(i, i) + a(i)
         b(i) = t(i+1, i+1)
   80 continue
      end
