      subroutine s121(n, a, b)
      integer n, i, j
      real a(n), b(n)
c     induction variable in subscript (removed by the prepass)
      j = 1
      do 10 i = 1, n - 1
         j = i + 1
         a(i) = a(j) + b(i)
   10 continue
      end
      subroutine s122(n, a, b, k)
      integer n, i, j, k
      real a(n), b(n)
c     running backward offset
      j = 1
      do 20 i = n, 1, -1
         a(i) = a(i) + b(j)
         j = j + k
   20 continue
      end
      subroutine s124(n, a, b, c)
      integer n, i, j
      real a(n), b(n), c(n)
c     conditional induction (not recognized: assigned in a branch)
      j = 0
      do 40 i = 1, n
         if (b(i) .gt. 0.0) then
            j = j + 1
            a(j) = b(i) + c(i)
         endif
   40 continue
      end
      subroutine s126(n, a, flat)
      integer n, i, j, k
      real a(n,n), flat(1)
c     2-D work array accessed through a running linear offset
      k = 1
      do 60 i = 1, n
         do 50 j = 1, n
            flat(k) = a(i, j)
            k = k + 1
   50    continue
   60 continue
      end
