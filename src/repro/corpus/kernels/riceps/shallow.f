      subroutine calc1(n, m, u, v, p, cu, cv, z, h)
      integer n, m, i, j
      real u(n,m), v(n,m), p(n,m), cu(n,m), cv(n,m), z(n,m), h(n,m)
c     shallow-water model first sweep (RiCEPS flavor)
      do 20 j = 1, m - 1
         do 10 i = 1, n - 1
            cu(i+1, j) = 0.5*(p(i+1, j) + p(i, j))*u(i+1, j)
            cv(i, j+1) = 0.5*(p(i, j+1) + p(i, j))*v(i, j+1)
            z(i+1, j+1) = (v(i+1, j+1) - v(i, j+1) - u(i+1, j+1)
     &                  + u(i+1, j)) / (p(i, j) + p(i+1, j))
            h(i, j) = p(i, j) + 0.25*(u(i+1, j)*u(i+1, j)
     &              + u(i, j)*u(i, j))
   10    continue
   20 continue
      end
      subroutine calc2(n, m, u, v, unew, vnew, cu, cv, z, h, dt)
      integer n, m, i, j
      real u(n,m), v(n,m), unew(n,m), vnew(n,m)
      real cu(n,m), cv(n,m), z(n,m), h(n,m), dt
      do 40 j = 1, m - 1
         do 30 i = 1, n - 1
            unew(i+1, j) = u(i+1, j) + dt*(z(i+1, j+1) + z(i+1, j))
     &                   * (cv(i+1, j+1) + cv(i, j+1)) - dt*(h(i+1, j)
     &                   - h(i, j))
            vnew(i, j+1) = v(i, j+1) - dt*(z(i+1, j+1) + z(i, j+1))
     &                   * (cu(i+1, j+1) + cu(i, j)) - dt*(h(i, j+1)
     &                   - h(i, j))
   30    continue
   40 continue
      end
