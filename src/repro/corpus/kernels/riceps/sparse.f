      subroutine spmv(n, nnz, val, colidx, rowptr, x, y)
      integer n, nnz, i, k
      real val(nnz), x(n), y(n)
      integer colidx(nnz), rowptr(n)
c     sparse matrix-vector product: index-array (nonlinear) subscripts
      do 20 i = 1, n
         do 10 k = rowptr(i), rowptr(i+1) - 1
            y(i) = y(i) + val(k)*x(colidx(k))
   10    continue
   20 continue
      end
      subroutine gather(n, a, b, ind)
      integer n, i
      real a(n), b(n)
      integer ind(n)
      do 30 i = 1, n
         a(i) = b(ind(i))
   30 continue
      end
      subroutine scatter(n, a, b, ind)
      integer n, i
      real a(n), b(n)
      integer ind(n)
      do 40 i = 1, n
         a(ind(i)) = b(i)
   40 continue
      end
