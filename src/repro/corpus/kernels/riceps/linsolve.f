      program linsolve
      integer n
      real a(100,100), b(100), x(100)
      end
      subroutine factor(n, a, lda)
      integer n, lda, i, j, k, kp1
      real a(lda,n), pivot
c     in-place LU factorization without pivoting
      do 30 k = 1, n - 1
         kp1 = k + 1
         pivot = a(k, k)
         do 10 i = kp1, n
            a(i, k) = a(i, k) / pivot
   10    continue
         do 20 j = kp1, n
            do 20 i = kp1, n
               a(i, j) = a(i, j) - a(i, k)*a(k, j)
   20    continue
   30 continue
      end
      subroutine fwdslv(n, a, lda, b)
      integer n, lda, i, j
      real a(lda,n), b(n)
c     forward substitution (unit lower triangle)
      do 50 j = 1, n - 1
         do 40 i = j + 1, n
            b(i) = b(i) - a(i, j)*b(j)
   40    continue
   50 continue
      end
      subroutine bckslv(n, a, lda, b, x)
      integer n, lda, i, j, jb
      real a(lda,n), b(n), x(n)
c     back substitution (upper triangle), reversed loop
      do 60 i = 1, n
         x(i) = b(i)
   60 continue
      do 80 jb = 1, n
         j = n + 1 - jb
         x(j) = x(j) / a(j, j)
         do 70 i = 1, j - 1
            x(i) = x(i) - a(i, j)*x(j)
   70    continue
   80 continue
      end
      subroutine resid(n, a, lda, b, x, r)
      integer n, lda, i, j
      real a(lda,n), b(n), x(n), r(n)
c     residual: r = b - A x
      do 90 i = 1, n
         r(i) = b(i)
   90 continue
      do 110 j = 1, n
         do 100 i = 1, n
            r(i) = r(i) - a(i, j)*x(j)
  100    continue
  110 continue
      end
