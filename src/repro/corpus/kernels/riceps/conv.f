      subroutine conv(n, m, a, b, c)
      integer n, m, i, j
      real a(n), b(m), c(n)
c     convolution: true MIV subscripts i+j
      do 20 i = 1, n
         do 10 j = 1, m
            c(i + j - 1) = c(i + j - 1) + a(i)*b(j)
   10    continue
   20 continue
      end
      subroutine corr(n, m, a, b, c)
      integer n, m, i, j
      real a(n), b(m), c(n)
c     correlation: MIV subscript i-j with symbolic shift
      do 40 i = 1, n
         do 30 j = 1, m
            c(i) = c(i) + a(i - j + m)*b(j)
   30    continue
   40 continue
      end
      subroutine outer(n, a, x, y)
      integer n, i, j
      real a(n), x(n), y(n)
c     skewed wavefront: MIV on a 1-D array (paper's GCD example shape)
      do 60 i = 1, n
         do 50 j = 1, n
            a(2*i + 2*j) = a(2*i + 2*j - 1) + x(i)*y(j)
   50    continue
   60 continue
      end
