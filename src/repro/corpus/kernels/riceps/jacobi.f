      subroutine jacobi(n, m, u, unew, f, h)
      integer n, m, i, j
      real u(n,m), unew(n,m), f(n,m), h
c     five-point Jacobi relaxation sweep
      do 20 j = 2, m - 1
         do 10 i = 2, n - 1
            unew(i, j) = 0.25*(u(i-1, j) + u(i+1, j) + u(i, j-1)
     &                 + u(i, j+1) - h*h*f(i, j))
   10    continue
   20 continue
      do 40 j = 2, m - 1
         do 30 i = 2, n - 1
            u(i, j) = unew(i, j)
   30    continue
   40 continue
      end
      subroutine seidel(n, m, u, f, h)
      integer n, m, i, j
      real u(n,m), f(n,m), h
c     Gauss-Seidel: true carried dependences in both loops
      do 60 j = 2, m - 1
         do 50 i = 2, n - 1
            u(i, j) = 0.25*(u(i-1, j) + u(i+1, j) + u(i, j-1)
     &              + u(i, j+1) - h*h*f(i, j))
   50    continue
   60 continue
      end
      subroutine redblk(n, m, u, f, h)
      integer n, m, i, j
      real u(n,m), f(n,m), h
c     red-black ordering: stride-2 subscripts after normalization
      do 80 j = 2, m - 1
         do 70 i = 2, n - 1, 2
            u(i, j) = 0.25*(u(i-1, j) + u(i+1, j) + u(i, j-1) + u(i, j+1))
   70    continue
   80 continue
      end
