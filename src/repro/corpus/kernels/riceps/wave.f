      subroutine wave1d(n, nt, u, uold, unew, c)
      integer n, nt, i, t
      real u(n), uold(n), unew(n), c
c     1-D wave equation leapfrog
      do 20 t = 1, nt
         do 10 i = 2, n - 1
            unew(i) = 2.0*u(i) - uold(i) + c*(u(i+1) - 2.0*u(i) + u(i-1))
   10    continue
   20 continue
      end
      subroutine smooth(n, a, b, w)
      integer n, i
      real a(n), b(n), w(n)
c     weighted smoothing with symbolic-constant shifts
      do 30 i = 2, n - 1
         b(i) = w(1)*a(i-1) + w(2)*a(i) + w(3)*a(i+1)
   30 continue
      do 40 i = 1, n
         a(i) = b(i)
   40 continue
      end
      subroutine histog(n, m, x, count, ix)
      integer n, m, i
      real x(n)
      integer count(m), ix(n)
c     histogram: nonlinear (index-array) subscripts
      do 50 i = 1, n
         count(ix(i)) = count(ix(i)) + 1
   50 continue
      end
