      subroutine bandut(n, h, e)
      integer n, i, j
      real h(n,n), e(n)
c     band-matrix shifted-diagonal updates: coupled subscripts whose
c     dependence distances conflict (the Delta test proves independence,
c     subscript-by-subscript Banerjee does not)
      do 10 i = 1, n - 2
         h(i+2, i) = h(i, i-1) + e(i)
   10 continue
c     super/sub-diagonal swap within a band
      do 20 i = 2, n - 1
         h(i+1, i) = h(i, i+1)*e(i)
   20 continue
c     diagonal vs off-diagonal: coupled strong SIV, consistent distances
      do 30 i = 2, n
         h(i, i) = h(i-1, i-1) + e(i)
   30 continue
      end
      subroutine elmhes(n, a)
      integer n, i, j, m
      real a(n,n), x, y
c     elimination similarity transform (EISPACK elmhes flavor)
      do 60 m = 2, n - 1
         do 40 j = m, n
            a(m, j) = a(m+1, j)
   40    continue
         do 50 i = 1, n
            a(i, m) = a(i, m) + a(i, m+1)
   50    continue
   60 continue
      end
