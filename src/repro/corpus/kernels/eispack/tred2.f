      subroutine tred2(nm, n, a, d, e, z)
      integer nm, n, i, j, k, l
      real a(nm,n), d(n), e(n), z(nm,n), f, g, h, hh, scale
c     householder reduction kernels from EISPACK tred2
      do 100 i = 1, n
         do 80 j = 1, i
            z(i, j) = a(i, j)
   80    continue
         d(i) = a(n, i)
  100 continue
c     coupled transposed accesses: z(i,j) and z(j,i)
      do 300 i = 2, n
         l = i - 1
         do 240 j = 1, l
            g = 0.0
            do 180 k = 1, l
               g = g + z(j, k)*d(k)
  180       continue
            e(j) = g
  240    continue
         do 280 j = 1, l
            f = d(j)
            g = e(j)
            do 260 k = j, l
               z(k, j) = z(k, j) - f*e(k) - g*d(k)
  260       continue
            d(j) = z(l, j)
            z(i, j) = 0.0
  280    continue
  300 continue
      do 500 i = 1, n
         do 480 j = 1, n
            z(j, i) = z(i, j)
  480    continue
  500 continue
      end
