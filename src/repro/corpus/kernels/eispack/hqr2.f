      subroutine hqr2(nm, n, low, igh, h, wr, wi, z)
      integer nm, n, low, igh, i, j, k, m, na, en
      real h(nm,n), wr(n), wi(n), z(nm,n), p, q, r, s, t, w, x, y
c     QR step kernels from EISPACK hqr2 (coupled h accesses)
      do 260 m = 2, n - 1
         do 200 k = m, m + 1
            h(k, m-1) = 0.0
  200    continue
  260 continue
c     row modification
      do 500 i = 1, n
         do 490 j = i, n
            h(i, j) = h(i, j) - p*h(i-1, j) - q*h(i+1, j)
  490    continue
  500 continue
c     column modification with coupled transposed shape
      do 600 j = 1, n
         do 590 i = 1, j
            h(i, j) = h(i, j) - p*h(i, j-1)
            z(i, j) = z(i, j) - p*z(i, j-1)
  590    continue
  600 continue
c     back substitution triangular nest
      do 800 en = 2, n
         do 780 i = 1, en - 1
            w = h(i, i) - p
            r = 0.0
            do 760 j = i, en
               r = r + h(i, j)*h(j, en)
  760       continue
            h(i, en) = -r / w
  780    continue
  800 continue
      end
