      subroutine svd(m, n, a, w, u, v)
      integer m, n, i, j, k, l
      real a(m,n), w(n), u(m,n), v(n,n), c, f, g, h, s, scale, x, y, z
c     SVD householder kernels (EISPACK svd): coupled u/v accesses
      do 300 i = 1, n
         l = i + 1
         do 110 k = i, m
            scale = scale + u(k, i)
  110    continue
         do 150 j = l, n
            s = 0.0
            do 120 k = i, m
               s = s + u(k, i)*u(k, j)
  120       continue
            f = s / h
            do 130 k = i, m
               u(k, j) = u(k, j) + f*u(k, i)
  130       continue
  150    continue
c        accumulate right transformations: v(j,i) and v(i,j) coupled
         do 200 j = l, n
            v(j, i) = u(i, j) / h
  200    continue
         do 250 j = l, n
            s = 0.0
            do 220 k = l, n
               s = s + u(i, k)*v(k, j)
  220       continue
            do 240 k = l, n
               v(k, j) = v(k, j) + s*v(k, i)
  240       continue
  250    continue
  300 continue
      end
