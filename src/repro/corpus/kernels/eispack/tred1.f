      subroutine tred1(nm, n, a, d, e, e2)
      integer nm, n, i, j, k, l
      real a(nm,n), d(n), e(n), e2(n), f, g, h, scale
c     EISPACK tred1: householder reduction, coupled a(i,j)/a(j,i)
      do 100 i = 1, n
         d(i) = a(n, i)
         a(n, i) = a(i, i)
  100 continue
      do 300 i = n, 2, -1
         l = i - 1
         h = 0.0
         do 120 k = 1, l
            scale = scale + d(k)
  120    continue
         do 240 j = 1, l
            g = 0.0
            do 180 k = 1, j
               g = g + a(j, k)*d(k)
  180       continue
            do 200 k = j+1, l
               g = g + a(k, j)*d(k)
  200       continue
            e(j) = g / h
  240    continue
         do 280 j = 1, l
            f = d(j)
            g = e(j)
            do 260 k = j, l
               a(k, j) = a(k, j) - f*e(k) - g*d(k)
  260       continue
  280    continue
  300 continue
      end
