      subroutine tql2(nm, n, d, e, z, ierr)
      integer nm, n, i, j, k, l, ierr
      real d(n), e(n), z(nm,n), c, f, g, h, p, r, s
c     QL iteration kernels from EISPACK tql2
      do 100 i = 2, n
         e(i-1) = e(i)
  100 continue
      e(n) = 0.0
c     eigenvector accumulation: coupled z accesses across columns
      do 200 l = 2, n
         do 180 k = 1, n
            h = z(k, l-1)
            z(k, l-1) = c*z(k, l-1) + s*z(k, l)
            z(k, l) = c*z(k, l) - s*h
  180    continue
  200 continue
c     ordering pass: swap columns i and k
      do 300 i = 1, n - 1
         k = i
         p = d(i)
         do 260 j = i+1, n
            d(j) = d(j)
  260    continue
         d(k) = d(i)
         do 280 j = 1, n
            p = z(j, i)
            z(j, i) = z(j, k)
            z(j, k) = p
  280    continue
  300 continue
      end
