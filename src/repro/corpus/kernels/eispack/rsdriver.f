      subroutine rs(nm, n, a, w, matz, z, fv1, fv2, ierr)
      integer nm, n, matz, ierr, i, j
      real a(nm,n), w(n), z(nm,n), fv1(n), fv2(n)
c     EISPACK rs driver shape: copy + chained reductions
      do 20 j = 1, n
         do 10 i = 1, n
            z(i, j) = a(i, j)
   10    continue
   20 continue
      end
      subroutine tqlrat(n, d, e2, ierr)
      integer n, i, j, l, m, ierr
      real d(n), e2(n), b, c, f, g, h, p, r, s
c     rational QL: shifted recurrences over the diagonal arrays
      do 100 i = 2, n
         e2(i-1) = e2(i)
  100 continue
      e2(n) = 0.0
      do 300 l = 1, n
         do 200 i = l, n - 1
            d(i) = d(i+1)
  200    continue
  300 continue
      end
      subroutine trbak1(nm, n, a, e, m, z)
      integer nm, n, m, i, j, k, l
      real a(nm,n), e(n), z(nm,m), s
c     back-transformation: coupled a/z accesses over a triangular region
      do 140 i = 2, n
         l = i - 1
         do 130 j = 1, m
            s = 0.0
            do 110 k = 1, l
               s = s + a(i, k)*z(k, j)
  110       continue
            s = (s / a(i, l)) / e(l)
            do 120 k = 1, l
               z(k, j) = z(k, j) + s*a(i, k)
  120       continue
  130    continue
  140 continue
      end
