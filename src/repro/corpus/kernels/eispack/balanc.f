      subroutine balanc(nm, n, a, low, igh, scale)
      integer nm, n, low, igh, i, j
      real a(nm,n), scale(n), c, f, g, r, s
c     balancing kernels from EISPACK balanc: row/column scaling
      do 200 i = 1, n
         c = 0.0
         do 100 j = 1, n
            c = c + a(j, i)*a(j, i)
  100    continue
         do 150 j = 1, n
            a(i, j) = a(i, j)*g
  150    continue
         do 180 j = 1, n
            a(j, i) = a(j, i)*f
  180    continue
  200 continue
      end
