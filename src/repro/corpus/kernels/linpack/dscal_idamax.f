      subroutine dscal(n, da, dx)
      integer n, i
      real da, dx(1)
      do 10 i = 1, n
         dx(i) = da*dx(i)
   10 continue
      end
      subroutine dtrsl(t, ldt, n, b)
      integer ldt, n, j, jj
      real t(ldt,1), b(1)
c     triangular solve: upper-triangular loop shapes
      do 20 j = 2, n
         do 10 i = 1, j-1
            b(j) = b(j) - t(i, j)*b(i)
   10    continue
         b(j) = b(j) / t(j, j)
   20 continue
      end
