      subroutine daxpy(n, da, dx, incx, dy, incy)
      integer n, incx, incy, i
      real da, dx(1), dy(1)
c     constant increment case of the BLAS daxpy kernel
      do 10 i = 1, n
         dy(i) = dy(i) + da*dx(i)
   10 continue
      end
