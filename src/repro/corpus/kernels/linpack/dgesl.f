      subroutine dgesl(a, lda, n, ipvt, b, job)
      integer lda, n, ipvt(1), job
      real a(lda,1), b(1), t
      integer k, kb, nm1
c     back substitution kernels of LINPACK dgesl
      nm1 = n - 1
      do 20 k = 1, n - 1
         t = b(k)
         do 10 i = k+1, n
            b(i) = b(i) + t*a(i, k)
   10    continue
   20 continue
      do 40 kb = 1, n
         k = n + 1 - kb
         b(k) = b(k) / a(k, k)
         t = -b(k)
         do 30 i = 1, k-1
            b(i) = b(i) + t*a(i, k)
   30    continue
   40 continue
      end
