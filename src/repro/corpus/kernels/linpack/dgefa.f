      subroutine dgefa(a, lda, n, ipvt, info)
      integer lda, n, ipvt(1), info
      real a(lda,1), t
      integer j, k, kp1, nm1
c     gaussian elimination inner kernel of LINPACK dgefa, with the
c     original kp1 = k + 1 scalar subscripting (removed by the
c     forward-substitution prepass)
      nm1 = n - 1
      do 60 k = 1, n - 1
         kp1 = k + 1
c        compute multipliers (column scale)
         do 30 i = kp1, n
            a(i, k) = -a(i, k) / a(k, k)
   30    continue
c        row elimination with column indexing
         do 50 j = kp1, n
            t = a(k, j)
            do 40 i = kp1, n
               a(i, j) = a(i, j) + t*a(i, k)
   40       continue
   50    continue
   60 continue
      end
