      subroutine dmxpy(n1, y, n2, ldm, x, m)
      integer n1, n2, ldm, i, j
      real y(1), x(1), m(ldm,1)
c     cleanup-unrolled matrix-vector product from LINPACK dmxpy
      do 20 j = 1, n2
         do 10 i = 1, n1
            y(i) = y(i) + x(j)*m(i, j)
   10    continue
   20 continue
c     unrolled-by-two variant exercises 2*j style subscripts
      do 40 j = 1, n2/2
         do 30 i = 1, n1
            y(i) = y(i) + x(2*j-1)*m(i, 2*j-1) + x(2*j)*m(i, 2*j)
   30    continue
   40 continue
      end
