"""Corpus loader: the benchmark programs of the empirical study.

The paper measured PFC over RiCEPS, the Perfect and SPEC suites, and the
eispack/linpack libraries.  Those exact sources are not redistributable (and
RiCEPS is long gone), so the corpus contains kernels written in the Fortran
subset with the same *subscript structure*: linear-algebra factorizations
(linpack), symmetric eigensolver sweeps with transposed/coupled accesses
(eispack), PDE stencils and physics sweeps (riceps/perfect/spec), Livermore
loops, and the Callahan-Dongarra-Levine vector suite patterns, including
nonlinear index-array subscripts.  What the study measures — dimension
histograms, separable/coupled/nonlinear counts, subscript classes, test
hit-rates — depends only on that structure.

Programs load lazily from ``kernels/<suite>/<name>.f`` and are normalized
(non-unit loop steps removed) before analysis.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.fortran.parser import parse_program
from repro.ir.context import SymbolEnv
from repro.ir.normalize import normalize_program
from repro.ir.scalars import substitute_scalars_program
from repro.ir.program import Program

KERNEL_ROOT = Path(__file__).parent / "kernels"

#: Suite names in the order the paper's tables list their groups.
SUITES = ("riceps", "perfect", "spec", "eispack", "linpack", "livermore", "cdl")

#: Symbols standing for problem sizes get a lower bound of 1, matching the
#: paper's implicit assumption that measured loops execute.
SIZE_SYMBOLS = (
    "n", "m", "nm", "lda", "ldt", "ldm", "il", "jl", "jn", "kn",
    "n1", "n2", "nt", "low", "igh",
)


def default_symbols() -> SymbolEnv:
    """Symbol environment asserting size symbols are at least 1."""
    env = SymbolEnv()
    for name in SIZE_SYMBOLS:
        env = env.assume(name, lo=1)
    return env


def available_suites() -> List[str]:
    """Suites present on disk, in table order."""
    found = [s for s in SUITES if (KERNEL_ROOT / s).is_dir()]
    return found


def available_programs(suite: str) -> List[str]:
    """Program (file stem) names of one suite, sorted."""
    suite_dir = KERNEL_ROOT / suite
    if not suite_dir.is_dir():
        raise ValueError(f"unknown corpus suite {suite!r}")
    return sorted(path.stem for path in suite_dir.glob("*.f"))


def load_program(suite: str, name: str, normalize: bool = True) -> Program:
    """Load one corpus program, parsed and (by default) step-normalized."""
    path = KERNEL_ROOT / suite / f"{name}.f"
    if not path.is_file():
        raise FileNotFoundError(f"no corpus kernel {suite}/{name}.f")
    program = parse_program(path.read_text(), name=name, suite=suite)
    if normalize:
        # The paper's assumed prepasses: induction-variable/scalar
        # substitution, then loop-step normalization.
        program = substitute_scalars_program(program)
        program = normalize_program(program)
    return program


def load_suite(suite: str, normalize: bool = True) -> List[Program]:
    """Load every program of one suite."""
    return [
        load_program(suite, name, normalize) for name in available_programs(suite)
    ]


def load_corpus(
    suites: Optional[List[str]] = None, normalize: bool = True
) -> Dict[str, List[Program]]:
    """Load the whole corpus (or selected suites) keyed by suite name."""
    chosen = suites or available_suites()
    return {suite: load_suite(suite, normalize) for suite in chosen}
