"""Streaming corpus driver: incremental, crash-resumable, bounded-memory.

``repro-deps corpus run <tree>`` walks a directory tree of Fortran
sources and analyzes each routine exactly once per *content version*.
The unit of work is the routine, identified by a **routine token** — a
:func:`repro.engine.checkpoint.run_token` over the report schema, the
file's content digest, and the routine's position and name.  Finished
routines persist their rendered report in the verdict store as a
report document (kind ``"d"``), and a clean file persists a **file
token** record listing its routine tokens, so:

* a killed run resumes where it left off — completed routines replay
  from the store byte-identically, only the tail is re-analyzed;
* a re-run after edits touches only edited files — unchanged files
  replay wholesale off their file token without even being parsed;
* the emitted corpus report is byte-identical either way, because
  cached text and freshly rendered text go through the same renderer
  with per-routine-dense statement numbering (process-global statement
  ids drift between parses; report text must not).

Robustness rules (the conservative-degradation contract at tree scale):

* **File quarantine** — an unreadable or malformed file produces a
  ``"file"`` :class:`~repro.engine.faults.FailureRecord` and the walk
  continues; nothing about that file lands in the store.
* **Routine quarantine** — a crash inside one routine's analysis
  produces a ``"routine"`` record and skips only that routine; the
  file's other routines still stream, but the file token is withheld
  so the failed routine is retried next run.
* **Degraded output is never cached** — a report rendered while the
  engine absorbed faults (assumed-dependence verdicts, store failures)
  is emitted but not persisted, so a later healthy run repairs it.
* **Backpressure** — store write failures (e.g. ENOSPC) degrade the
  run to memory-only via the PR 3 fault machinery; an RSS watermark
  (``--max-rss-mb``) sheds the driver's caches and records a
  ``"pressure"`` failure instead of dying.

Strict mode (``--strict``) turns engine faults into an abort as
everywhere else; file-level syntax quarantine is input validation, not
an engine fault, and stays quarantine-and-continue even in strict runs.
"""

from __future__ import annotations

import gc
import hashlib
import sys
import time
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Dict, List, Optional, TextIO, Tuple

from repro.dirvec.vectors import format_vector
from repro.engine import faultinject
from repro.engine.checkpoint import run_token
from repro.engine.engine import DependenceEngine
from repro.engine.faults import EngineFaultError, FailureRecord, describe_error
from repro.fortran.errors import FortranSyntaxError
from repro.fortran.parser import parse_program
from repro.ir.normalize import normalize_program
from repro.ir.scalars import substitute_scalars_program
from repro.transform.parallel import find_parallel_loops

#: Bump when the rendered report format changes: tokens embed the schema,
#: so a format change invalidates cached report documents instead of
#: replaying stale text.
REPORT_SCHEMA = 1

#: File suffixes the tree walk considers Fortran sources.
CORPUS_SUFFIXES = (".f", ".f77", ".for")


def walk_tree(root: Path) -> List[PurePosixPath]:
    """Fortran source files under ``root``, as sorted relative paths.

    The order is the deterministic spine of the whole subsystem: tokens,
    kill points, resume, and byte-identity all assume two walks of the
    same tree visit files identically.
    """
    found = []
    for path in root.rglob("*"):
        if path.is_file() and path.suffix.lower() in CORPUS_SUFFIXES:
            found.append(PurePosixPath(path.relative_to(root).as_posix()))
    return sorted(found)


def file_token(data: bytes) -> str:
    """Content token for one source file (schema-qualified)."""
    return run_token("corpus-file", REPORT_SCHEMA, data)


def routine_token(file_digest: str, ordinal: int, name: str) -> str:
    """Content token for one routine of a file.

    Keyed by the file digest (not the routine's own text): a routine's
    analysis can depend on anything in its file (shared symbol
    environment, statement context), so editing a file invalidates all
    its routines — coarse but sound.
    """
    return run_token("corpus-routine", REPORT_SCHEMA, file_digest, ordinal, name)


def render_routine_report(name: str, graph, verdicts) -> str:
    """Deterministic per-routine report text.

    Mirrors ``DependenceGraph.__str__`` but renumbers statement ids
    densely in access-site order: the global statement counter drifts
    between parses, and cached reports must compare byte-equal with
    freshly rendered ones.
    """
    stmt_ids: Dict[int, int] = {}
    for site in graph.sites:
        raw = site.stmt.stmt_id
        if raw not in stmt_ids:
            stmt_ids[raw] = len(stmt_ids) + 1
    lines = [f"-- routine {name} --"]
    for edge in graph.edges:
        vectors = ", ".join(sorted(format_vector(v) for v in edge.vectors))
        src = stmt_ids.get(edge.source.stmt.stmt_id, 0)
        snk = stmt_ids.get(edge.sink.stmt.stmt_id, 0)
        text = (
            f"{edge.dep_type} {edge.source.ref} (S{src})"
            f" -> {edge.sink.ref} (S{snk}) {{{vectors}}}"
        )
        if edge.assumed:
            text += " [assumed]"
        lines.append(text)
    lines.append(
        f"({graph.tested_pairs} pairs tested, "
        f"{graph.independent_pairs} independent)"
    )
    for verdict in verdicts:
        lines.append(str(verdict))
    lines.append("")
    return "\n".join(lines)


@dataclass
class CorpusStats:
    """Walk-level counters for one streaming run (engine counters live
    in :class:`~repro.engine.stats.EngineStats` and are reported
    separately)."""

    files: int = 0
    files_replayed: int = 0
    files_quarantined: int = 0
    routines: int = 0
    analyzed: int = 0
    skipped: int = 0
    quarantined: int = 0
    pressure_events: int = 0
    shed_entries: int = 0
    elapsed: float = 0.0

    @property
    def skip_rate(self) -> float:
        """Fraction of routines replayed from the store (1.0 = no-op run)."""
        return self.skipped / self.routines if self.routines else 0.0

    @property
    def throughput(self) -> float:
        """Freshly analyzed routines per second of wall clock."""
        return self.analyzed / self.elapsed if self.elapsed > 0 else 0.0

    def summary_lines(self) -> List[str]:
        return [
            (
                f"corpus: files={self.files} replayed={self.files_replayed} "
                f"quarantined={self.files_quarantined}"
            ),
            (
                f"corpus: routines={self.routines} analyzed={self.analyzed} "
                f"skipped={self.skipped} quarantined={self.quarantined}"
            ),
            (
                f"corpus: elapsed={self.elapsed:.2f}s "
                f"throughput={self.throughput:.1f} routines/s "
                f"skip_rate={self.skip_rate:.2f} "
                f"pressure_events={self.pressure_events}"
            ),
        ]


def current_rss_mb() -> Optional[float]:
    """Resident set size in MiB, or None when unknowable.

    ``REPRO_FAULTS=fake-rss:<mb>`` overrides the probe so pressure
    handling is testable without actually ballooning a process.
    """
    fake = faultinject.fake_rss()
    if fake is not None:
        return fake
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB; the probe only feeds a watermark comparison,
        # so peak-vs-current imprecision errs toward shedding earlier.
        return peak / 1024.0
    except Exception:
        return None


class StreamingCorpusRunner:
    """One streaming pass over a source tree (see module docstring).

    Owns the walk and the report stream; borrows ``engine`` (and its
    attached store) from the caller, who closes both.  ``out`` receives
    the byte-identity surface — file headers and routine reports —
    and nothing else; summaries and fault reports go to ``err``.
    """

    def __init__(
        self,
        root: Path,
        engine: DependenceEngine,
        out: Optional[TextIO] = None,
        err: Optional[TextIO] = None,
        rebuild: bool = False,
        max_rss_mb: Optional[float] = None,
    ):
        self.root = Path(root)
        self.engine = engine
        self.out = out if out is not None else sys.stdout
        self.err = err if err is not None else sys.stderr
        self.rebuild = rebuild
        self.max_rss_mb = max_rss_mb
        self.stats = CorpusStats()
        self._pressure_reported = False

    # -- store plumbing --------------------------------------------------
    #
    # All store access goes through ``engine.driver.persist`` (the *live*
    # handle): when a write fails the driver degrades to memory-only and
    # the walk keeps streaming fresh analysis without caching.

    def _store(self):
        return self.engine.driver.persist

    def _get_report(self, token: str):
        store = self._store()
        if store is None or self.rebuild:
            return None
        try:
            return store.get_report(token)
        except Exception:
            return None

    def _put_report(self, token: str, value: object) -> None:
        store = self._store()
        if store is None or store.read_only:
            return
        try:
            store.put_report(token, value)
        except Exception as exc:  # ENOSPC, quarantine, injected faults
            self.engine.driver._degrade_store(exc)
        self.engine.driver.drain_store_events()

    def _checkpoint(self) -> None:
        store = self._store()
        if store is None or store.read_only:
            return
        try:
            store.checkpoint()
        except Exception as exc:
            self.engine.driver._degrade_store(exc)
        self.engine.driver.drain_store_events()

    # -- fault isolation -------------------------------------------------

    def _quarantine_file(self, rel: PurePosixPath, error: str) -> None:
        self.stats.files_quarantined += 1
        self.engine.stats.record_failure(
            FailureRecord("file", rel.as_posix(), error)
        )

    def _quarantine_routine(self, rel: PurePosixPath, name: str, exc: Exception) -> None:
        self.stats.quarantined += 1
        self.engine.stats.record_failure(
            FailureRecord(
                "routine", f"{rel.as_posix()}:{name}", describe_error(exc)
            )
        )

    def _check_pressure(self, rel: PurePosixPath) -> None:
        if self.max_rss_mb is None:
            return
        rss = current_rss_mb()
        if rss is None or rss <= self.max_rss_mb:
            return
        shed = self.engine.driver.shed_memory()
        gc.collect()
        self.stats.pressure_events += 1
        self.stats.shed_entries += shed
        if not self._pressure_reported:
            self._pressure_reported = True
            self.engine.stats.record_failure(
                FailureRecord(
                    "pressure",
                    f"corpus:{rel.as_posix()}",
                    (
                        f"rss {rss:.0f} MiB over {self.max_rss_mb:.0f} MiB "
                        f"watermark; shed {shed} cached entr(ies) and "
                        "throttled streaming"
                    ),
                )
            )

    # -- the walk --------------------------------------------------------

    def run(self) -> CorpusStats:
        start = time.perf_counter()
        files = walk_tree(self.root)
        self.stats.files = len(files)
        for rel in files:
            faultinject.on_corpus_file(rel.as_posix())
            self.out.write(f"== file {rel.as_posix()} ==\n")
            self._run_file(rel)
            self._checkpoint()
            self._check_pressure(rel)
        self.stats.elapsed = time.perf_counter() - start
        return self.stats

    def _run_file(self, rel: PurePosixPath) -> None:
        path = self.root / Path(rel)
        try:
            data = path.read_bytes()
        except OSError as exc:
            self._quarantine_file(rel, describe_error(exc))
            return

        ftoken = file_token(data)
        if self._replay_file(ftoken):
            return

        try:
            source = data.decode("utf-8")
            program = normalize_program(
                substitute_scalars_program(
                    parse_program(source, name=path.stem)
                )
            )
        except (FortranSyntaxError, UnicodeDecodeError) as exc:
            self._quarantine_file(rel, describe_error(exc))
            return
        except Exception as exc:
            self._quarantine_file(rel, describe_error(exc))
            return

        digest = hashlib.sha256(data).hexdigest()
        tokens: List[str] = []
        clean = True
        for ordinal, routine in enumerate(program.routines):
            self.stats.routines += 1
            rtoken = routine_token(digest, ordinal, routine.name)
            cached = self._get_report(rtoken)
            if isinstance(cached, str):
                self.out.write(cached)
                self.stats.skipped += 1
                tokens.append(rtoken)
                continue
            rendered = self._analyze_routine(rel, routine)
            if rendered is None:
                clean = False
                continue
            text, degraded = rendered
            self.out.write(text)
            self.stats.analyzed += 1
            if degraded:
                clean = False
            else:
                self._put_report(rtoken, text)
                tokens.append(rtoken)
        # The file record is the wholesale-skip fast path; withhold it
        # unless every routine produced a healthy, persisted report.
        if clean and tokens and len(tokens) == len(program.routines):
            self._put_report(ftoken, {"routines": tokens})

    def _replay_file(self, ftoken: str) -> bool:
        """Emit a whole unchanged file from its stored reports."""
        entry = self._get_report(ftoken)
        if not isinstance(entry, dict):
            return False
        texts = []
        for rtoken in entry.get("routines", ()):
            text = self._get_report(rtoken)
            if not isinstance(text, str):
                return False  # partial store: fall back to analysis
            texts.append(text)
        for text in texts:
            self.out.write(text)
        self.stats.files_replayed += 1
        self.stats.routines += len(texts)
        self.stats.skipped += len(texts)
        return True

    def _analyze_routine(
        self, rel: PurePosixPath, routine
    ) -> Optional[Tuple[str, bool]]:
        stats = self.engine.stats
        assumed_before = stats.assumed
        failures_before = len(stats.failures)
        try:
            faultinject.on_routine(routine.name)
            graph = self.engine.build_graph(routine.body)
            verdicts = find_parallel_loops(
                routine.body, self.engine.symbols, graph
            )
        except EngineFaultError:
            raise  # strict mode: the CLI turns this into exit 3
        except Exception as exc:
            if self.engine.policy.strict:
                raise  # same contract as `analyze --strict`
            self._quarantine_routine(rel, routine.name, exc)
            return None
        degraded = (
            stats.assumed > assumed_before
            or len(stats.failures) > failures_before
        )
        return render_routine_report(routine.name, graph, verdicts), degraded


def stream_corpus(
    root: Path,
    engine: DependenceEngine,
    out: Optional[TextIO] = None,
    err: Optional[TextIO] = None,
    rebuild: bool = False,
    max_rss_mb: Optional[float] = None,
) -> CorpusStats:
    """Convenience wrapper: run one streaming pass and return its stats."""
    runner = StreamingCorpusRunner(
        root, engine, out=out, err=err, rebuild=rebuild, max_rss_mb=max_rss_mb
    )
    return runner.run()
