"""Exact symbolic linear algebra used by every dependence test.

This subpackage is the arithmetic substrate of the reproduction.  All
dependence tests in the paper manipulate *affine* subscript expressions

    a1*i1 + a2*i2 + ... + b1*N + b2*M + ... + c

over loop index variables (``i1``, ``i2``, ...) and loop-invariant symbolic
constants (``N``, ``M``, ...).  :class:`~repro.symbolic.linexpr.LinearExpr`
represents such forms exactly with integer coefficients;
:mod:`~repro.symbolic.diophantine` solves the two-variable linear Diophantine
equations at the heart of the exact SIV and RDIV tests; and
:mod:`~repro.symbolic.ranges` provides the (possibly unbounded) interval
arithmetic used by Banerjee's inequalities and the triangular index-range
algorithm of Section 4.3 of the paper.
"""

from repro.symbolic.linexpr import LinearExpr, NonlinearExpressionError
from repro.symbolic.diophantine import (
    ext_gcd,
    solve_linear_2var,
    DiophantineSolution,
    Condition,
    has_solution_in_box,
    has_solution_with_conditions,
    count_solutions_in_box,
    iter_solutions_in_box,
)
from repro.symbolic.ranges import (
    NEG_INF,
    POS_INF,
    Interval,
    ceil_div,
    floor_div,
)

__all__ = [
    "LinearExpr",
    "NonlinearExpressionError",
    "ext_gcd",
    "solve_linear_2var",
    "DiophantineSolution",
    "Condition",
    "has_solution_in_box",
    "has_solution_with_conditions",
    "count_solutions_in_box",
    "iter_solutions_in_box",
    "NEG_INF",
    "POS_INF",
    "Interval",
    "ceil_div",
    "floor_div",
]
