"""Exact linear (affine) expressions over named variables.

A :class:`LinearExpr` is an immutable value ``sum(coeff[v] * v) + const``
with integer coefficients.  Variables are plain strings; whether a variable
is a loop index or a loop-invariant symbolic constant is decided by the
caller (the IR knows which names are indices).  This mirrors the paper's
setting: subscripts are linear in the loop indices with integer coefficients
and possibly *symbolic additive constants* (Section 4.5).

The class supports the operations needed by the dependence tests:

* ring arithmetic (``+``, ``-``, unary ``-``, multiplication — which raises
  :class:`NonlinearExpressionError` when both operands are non-constant),
* substitution of a variable by another expression (constraint propagation in
  the Delta test, and bound substitution in the index-range algorithm),
* queries: coefficient lookup, variable sets, constancy, and splitting into
  the index part and the invariant (symbolic + constant) part.

Instances are *hash-consed*: the public constructor and every arithmetic
operation return a pooled instance per distinct ``(terms, const)`` value, so
the structurally repetitive subscripts of a real corpus (the paper's whole
premise) share storage, equality gets an identity fast path, and
value-keyed memos (linearization, renaming) stay hot.  The pool is an
optimization only — equality and hashing remain value-based, so pickling
across process boundaries (which re-interns on load) and dict keying in the
Delta test behave exactly as an unpooled implementation would.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple, Union

Number = int
ExprLike = Union["LinearExpr", int, str]


class NonlinearExpressionError(ValueError):
    """Raised when an operation would produce a nonlinear expression.

    The dependence tests in the paper only apply to affine subscripts; the
    front end catches this error to classify a subscript as *nonlinear*
    (those are counted in Table 1 of the paper but never tested).
    """


def _as_expr(value: ExprLike) -> "LinearExpr":
    if isinstance(value, LinearExpr):
        return value
    if isinstance(value, int):
        return LinearExpr.constant(value)
    if isinstance(value, str):
        return LinearExpr.var(value)
    raise TypeError(f"cannot interpret {value!r} as a linear expression")


#: The interning pool: ``(terms tuple, const) -> instance``.  Bounded and
#: cleared wholesale when full — after a clear, newly built values simply
#: stop being identical to old ones; nothing depends on identity for
#: correctness.
_POOL: Dict[Tuple[Tuple[Tuple[str, int], ...], int], "LinearExpr"] = {}
_POOL_LIMIT = 1 << 15


class LinearExpr:
    """An immutable affine form ``sum(a_v * v) + c`` with integer ``a_v, c``.

    Instances are hashable and compare by value, so they can be used as
    dictionary keys (the Delta test keys constraints by expressions) and in
    sets.  All arithmetic returns pooled (hash-consed) instances.
    """

    __slots__ = ("_terms", "_const", "_hash")

    def __new__(cls, terms: Mapping[str, int] = (), const: int = 0):
        # The public constructor validates and cleans its input; internal
        # hot paths go through :meth:`_from_sorted` / :meth:`_from_clean`
        # with already-normalized data.
        cleaned: Dict[str, int] = {}
        items = terms.items() if isinstance(terms, Mapping) else terms
        for name, coeff in items:
            if not isinstance(name, str):
                raise TypeError(f"variable name must be str, got {name!r}")
            if not isinstance(coeff, int):
                raise TypeError(f"coefficient must be int, got {coeff!r}")
            if coeff != 0:
                cleaned[name] = cleaned.get(name, 0) + coeff
                if cleaned[name] == 0:
                    del cleaned[name]
        if not isinstance(const, int):
            raise TypeError(f"constant must be int, got {const!r}")
        return cls._from_sorted(tuple(sorted(cleaned.items())), const)

    def __init__(self, terms: Mapping[str, int] = (), const: int = 0):
        # All construction work happens in __new__ (which may return a
        # pooled, fully initialized instance).
        pass

    @classmethod
    def _from_sorted(
        cls, terms: Tuple[Tuple[str, int], ...], const: int
    ) -> "LinearExpr":
        """Pooled instance for already-sorted, zero-free term tuples.

        This is the raw internal constructor the arithmetic fast paths use:
        no validation, no cleaning — callers guarantee ``terms`` is sorted
        by name and contains no zero coefficients.
        """
        key = (terms, const)
        self = _POOL.get(key)
        if self is None:
            if len(_POOL) >= _POOL_LIMIT:
                _POOL.clear()
            self = object.__new__(cls)
            self._terms = terms
            self._const = const
            self._hash = hash(key)
            _POOL[key] = self
        return self

    @classmethod
    def _from_clean(cls, terms: Dict[str, int], const: int) -> "LinearExpr":
        """Pooled instance for a zero-free (but unsorted) term dict."""
        return cls._from_sorted(tuple(sorted(terms.items())), const)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def constant(value: int) -> "LinearExpr":
        """The constant expression ``value``."""
        if not isinstance(value, int):
            raise TypeError(f"constant must be int, got {value!r}")
        return LinearExpr._from_sorted((), value)

    @staticmethod
    def var(name: str, coeff: int = 1) -> "LinearExpr":
        """The expression ``coeff * name``."""
        if not isinstance(name, str):
            raise TypeError(f"variable name must be str, got {name!r}")
        if not isinstance(coeff, int):
            raise TypeError(f"coefficient must be int, got {coeff!r}")
        if coeff == 0:
            return LinearExpr.ZERO
        return LinearExpr._from_sorted(((name, coeff),), 0)

    ZERO: "LinearExpr"
    ONE: "LinearExpr"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def const(self) -> int:
        """The additive integer constant."""
        return self._const

    @property
    def terms(self) -> Tuple[Tuple[str, int], ...]:
        """Sorted ``(variable, coefficient)`` pairs with nonzero coefficients."""
        return self._terms

    def coeff(self, name: str) -> int:
        """Coefficient of ``name`` (0 when absent)."""
        for var, coeff in self._terms:
            if var == name:
                return coeff
        return 0

    def variables(self) -> Set[str]:
        """The set of variables with nonzero coefficients."""
        return {name for name, _ in self._terms}

    def is_constant(self) -> bool:
        """True when the expression mentions no variables."""
        return not self._terms

    def constant_value(self) -> int:
        """The value of a constant expression.

        Raises :class:`ValueError` if the expression mentions variables.
        """
        if self._terms:
            raise ValueError(f"{self} is not a constant expression")
        return self._const

    def indices_in(self, indices: Iterable[str]) -> Set[str]:
        """Variables of this expression that belong to ``indices``."""
        wanted = set(indices)
        return {name for name, _ in self._terms if name in wanted}

    def split(self, indices: Iterable[str]) -> Tuple["LinearExpr", "LinearExpr"]:
        """Split into (index part, invariant part).

        The index part contains exactly the terms whose variable is in
        ``indices``; the invariant part carries the remaining symbolic terms
        and the constant.  Their sum equals ``self``.
        """
        wanted = set(indices)
        index_terms = tuple((n, c) for n, c in self._terms if n in wanted)
        other_terms = tuple((n, c) for n, c in self._terms if n not in wanted)
        return (
            LinearExpr._from_sorted(index_terms, 0),
            LinearExpr._from_sorted(other_terms, self._const),
        )

    def content(self) -> int:
        """GCD of the variable coefficients (0 for constant expressions)."""
        g = 0
        for _, coeff in self._terms:
            g = gcd(g, abs(coeff))
        return g

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: ExprLike) -> "LinearExpr":
        if isinstance(other, int):
            if other == 0:
                return self
            return LinearExpr._from_sorted(self._terms, self._const + other)
        other = _as_expr(other)
        if not other._terms:
            if other._const == 0:
                return self
            return LinearExpr._from_sorted(self._terms, self._const + other._const)
        if not self._terms:
            return LinearExpr._from_sorted(other._terms, self._const + other._const)
        terms = dict(self._terms)
        for name, coeff in other._terms:
            merged = terms.get(name, 0) + coeff
            if merged:
                terms[name] = merged
            else:
                del terms[name]
        return LinearExpr._from_clean(terms, self._const + other._const)

    def __radd__(self, other: ExprLike) -> "LinearExpr":
        return self.__add__(other)

    def __sub__(self, other: ExprLike) -> "LinearExpr":
        if isinstance(other, int):
            if other == 0:
                return self
            return LinearExpr._from_sorted(self._terms, self._const - other)
        return self.__add__(_as_expr(other).__neg__())

    def __rsub__(self, other: ExprLike) -> "LinearExpr":
        return _as_expr(other).__sub__(self)

    def __neg__(self) -> "LinearExpr":
        # Negation preserves term order and creates no zeros.
        return LinearExpr._from_sorted(
            tuple((n, -c) for n, c in self._terms), -self._const
        )

    def __mul__(self, other: ExprLike) -> "LinearExpr":
        other = _as_expr(other)
        if not self._terms:
            return other.scale(self._const)
        if not other._terms:
            return self.scale(other._const)
        raise NonlinearExpressionError(
            f"product of non-constant expressions {self} * {other}"
        )

    def __rmul__(self, other: ExprLike) -> "LinearExpr":
        return self.__mul__(other)

    def scale(self, factor: int) -> "LinearExpr":
        """Multiply every coefficient and the constant by ``factor``."""
        if factor == 0:
            return LinearExpr.ZERO
        if factor == 1:
            return self
        return LinearExpr._from_sorted(
            tuple((n, c * factor) for n, c in self._terms), self._const * factor
        )

    def exact_div(self, divisor: int) -> "LinearExpr":
        """Divide by an integer that exactly divides every coefficient.

        Raises :class:`ValueError` when the division is not exact (callers
        use :meth:`content` to check divisibility first).
        """
        if divisor == 0:
            raise ZeroDivisionError("division of LinearExpr by zero")
        terms = []
        for name, coeff in self._terms:
            q, r = divmod(coeff, divisor)
            if r:
                raise ValueError(f"{divisor} does not divide {coeff}*{name} in {self}")
            terms.append((name, q))
        q, r = divmod(self._const, divisor)
        if r:
            raise ValueError(f"{divisor} does not divide constant {self._const}")
        return LinearExpr._from_sorted(tuple(terms), q)

    def substitute(self, name: str, replacement: ExprLike) -> "LinearExpr":
        """Replace every occurrence of ``name`` by ``replacement``."""
        coeff = self.coeff(name)
        if coeff == 0:
            return self
        base = LinearExpr._from_sorted(
            tuple((n, c) for n, c in self._terms if n != name), self._const
        )
        return base + _as_expr(replacement).scale(coeff)

    def substitute_all(self, mapping: Mapping[str, ExprLike]) -> "LinearExpr":
        """Simultaneously substitute several variables."""
        base_terms = tuple((n, c) for n, c in self._terms if n not in mapping)
        result = LinearExpr._from_sorted(base_terms, self._const)
        for name, replacement in mapping.items():
            coeff = self.coeff(name)
            if coeff:
                result = result + _as_expr(replacement).scale(coeff)
        return result

    def rename(self, mapping: Mapping[str, str]) -> "LinearExpr":
        """Rename variables (used to give the second reference primed indices)."""
        if not any(name in mapping for name, _ in self._terms):
            return self
        terms: Dict[str, int] = {}
        for name, coeff in self._terms:
            new = mapping.get(name, name)
            merged = terms.get(new, 0) + coeff
            if merged:
                terms[new] = merged
            elif new in terms:
                del terms[new]
        return LinearExpr._from_clean(terms, self._const)

    # ------------------------------------------------------------------
    # Comparisons / protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, int):
            return not self._terms and self._const == other
        if isinstance(other, LinearExpr):
            return self._terms == other._terms and self._const == other._const
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._terms) or self._const != 0

    def __reduce__(self):
        # Explicit reduction keeps pickling compatible with hash-consing:
        # loading re-interns through the pool instead of materializing a
        # bare instance behind the constructor's back (the default slots
        # protocol would mutate whatever pooled instance __new__ returned
        # for the empty argument list — e.g. the shared ZERO).
        return (_restore, (self._terms, self._const))

    def __repr__(self) -> str:
        return f"LinearExpr({self})"

    def __str__(self) -> str:
        if not self._terms:
            return str(self._const)
        parts = []
        for name, coeff in self._terms:
            if coeff == 1:
                term = name
            elif coeff == -1:
                term = f"-{name}"
            else:
                term = f"{coeff}*{name}"
            if parts and not term.startswith("-"):
                parts.append(f"+ {term}")
            elif parts:
                parts.append(f"- {term[1:]}")
            else:
                parts.append(term)
        if self._const > 0:
            parts.append(f"+ {self._const}")
        elif self._const < 0:
            parts.append(f"- {-self._const}")
        return " ".join(parts)


def _restore(terms: Tuple[Tuple[str, int], ...], const: int) -> LinearExpr:
    """Unpickle hook: re-intern the value in this process's pool."""
    return LinearExpr._from_sorted(tuple(terms), const)


LinearExpr.ZERO = LinearExpr.constant(0)
LinearExpr.ONE = LinearExpr.constant(1)


def as_linear(value: ExprLike) -> LinearExpr:
    """Public coercion helper: int, str, or LinearExpr to LinearExpr."""
    return _as_expr(value)


# ---------------------------------------------------------------------------
# Cached renaming
# ---------------------------------------------------------------------------

#: ``(expr, sorted mapping items) -> renamed expr``.  Keys hash by value, so
#: the memo stays correct even across pool resets; it is bounded and cleared
#: wholesale like the pool.
_RENAME_MEMO: Dict[Tuple[LinearExpr, Tuple[Tuple[str, str], ...]], LinearExpr] = {}
_RENAME_MEMO_LIMIT = 1 << 15


class CachedRenamer:
    """A reusable, memoizing ``expr.rename(mapping)`` for one fixed mapping.

    The engine renames the same handful of expressions thousands of times
    (priming sink subscripts, canonicalizing, rehydrating); hash-consing
    makes ``(expr, mapping)`` a cheap memo key, turning repeat renames into
    one dict probe.  Build one with :func:`cached_renamer` and call it.
    """

    __slots__ = ("mapping", "_map_key")

    def __init__(self, mapping: Mapping[str, str]):
        self.mapping = mapping
        self._map_key = tuple(sorted(mapping.items()))

    def __call__(self, expr: LinearExpr) -> LinearExpr:
        key = (expr, self._map_key)
        result = _RENAME_MEMO.get(key)
        if result is None:
            if len(_RENAME_MEMO) >= _RENAME_MEMO_LIMIT:
                _RENAME_MEMO.clear()
            result = expr.rename(self.mapping)
            _RENAME_MEMO[key] = result
        return result


#: Renamer instances by mapping identity.  Callers that intern their rename
#: maps (the canonical-key machinery does) get the sorted map key for free
#: on repeat calls; the stored mapping reference keeps the id stable.
_RENAMER_MEMO: Dict[int, CachedRenamer] = {}
_RENAMER_MEMO_LIMIT = 1 << 12


def cached_renamer(mapping: Mapping[str, str]) -> CachedRenamer:
    """A memoizing renamer for ``mapping`` (see :class:`CachedRenamer`)."""
    renamer = _RENAMER_MEMO.get(id(mapping))
    if renamer is None or renamer.mapping is not mapping:
        if len(_RENAMER_MEMO) >= _RENAMER_MEMO_LIMIT:
            _RENAMER_MEMO.clear()
        renamer = CachedRenamer(mapping)
        _RENAMER_MEMO[id(mapping)] = renamer
    return renamer
