"""Linear Diophantine equations in one and two variables.

The exact SIV and RDIV tests of the paper (Section 4.2, 4.4) reduce to the
question: does ``a*x + b*y = c`` have an integer solution with
``xlo <= x <= xhi`` and ``ylo <= y <= yhi``?  This module answers that
question *exactly* (the bounded two-variable problem is polynomial, unlike
the general NP-complete multi-variable case the paper cites [15, 17]).

The general solution of ``a*x + b*y = c`` with ``g = gcd(a, b)`` dividing
``c`` is a one-parameter family

    x = x0 + (b/g) * t,    y = y0 - (a/g) * t,    t in Z

so a bounded query becomes an intersection of integer intervals for ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Iterator, Optional, Sequence, Tuple, Union

from repro.symbolic.ranges import NEG_INF, POS_INF, Extent, ceil_div, floor_div

#: int, or an infinite float.  Infinities are compared by *value* (any
#: ``float("inf")`` object counts as unbounded), never by identity:
#: interval endpoints produced by symbolic arithmetic carry fresh inf
#: objects, and an identity test would leak them into ``ceil_div`` where
#: ``inf // step`` yields nan and silently widens every direction set.
BoundValue = Union[int, float]


def ext_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y = g = gcd(a, b)``.

    ``g`` is non-negative; ``ext_gcd(0, 0) == (0, 0, 0)``.
    """
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    if old_r < 0:
        old_r, old_x, old_y = -old_r, -old_x, -old_y
    return old_r, old_x, old_y


@dataclass(frozen=True)
class DiophantineSolution:
    """The solution family of ``a*x + b*y = c``.

    Solutions are ``x = x0 + dx*t``, ``y = y0 + dy*t`` for all integer ``t``.
    When both ``dx`` and ``dy`` are zero the solution is the single point
    ``(x0, y0)`` (this happens when ``a == b == 0`` and ``c == 0``: every
    point solves the equation — that degenerate case is represented with
    ``unconstrained=True`` instead).
    """

    x0: int
    y0: int
    dx: int
    dy: int
    unconstrained: bool = False

    def point_at(self, t: int) -> Tuple[int, int]:
        """The solution for parameter value ``t``."""
        return self.x0 + self.dx * t, self.y0 + self.dy * t


def solve_linear_2var(a: int, b: int, c: int) -> Optional[DiophantineSolution]:
    """General integer solution of ``a*x + b*y = c``, or None when unsolvable."""
    if a == 0 and b == 0:
        if c == 0:
            return DiophantineSolution(0, 0, 1, 0, unconstrained=True)
        return None
    g, px, py = ext_gcd(a, b)
    if c % g != 0:
        return None
    scale = c // g
    return DiophantineSolution(px * scale, py * scale, b // g, -(a // g))


def _param_interval_for(
    base: int, step: int, lo: BoundValue, hi: BoundValue
) -> Optional[Tuple[BoundValue, BoundValue]]:
    """Integer values of ``t`` with ``lo <= base + step*t <= hi``.

    Returns ``(tlo, thi)`` where either end may be infinite, or None when the
    constraint is unsatisfiable.  ``step == 0`` means the coordinate is fixed
    at ``base``; the constraint is then either vacuous or impossible.
    """
    if step == 0:
        if (lo != NEG_INF and base < lo) or (hi != POS_INF and base > hi):
            return None
        return (NEG_INF, POS_INF)
    if step > 0:
        tlo = NEG_INF if lo == NEG_INF else ceil_div(lo - base, step)
        thi = POS_INF if hi == POS_INF else floor_div(hi - base, step)
    else:
        tlo = NEG_INF if hi == POS_INF else ceil_div(hi - base, step)
        thi = POS_INF if lo == NEG_INF else floor_div(lo - base, step)
    if tlo != NEG_INF and thi != POS_INF and tlo > thi:
        return None
    return (tlo, thi)


def _intersect_param(
    first: Optional[Tuple[BoundValue, BoundValue]],
    second: Optional[Tuple[BoundValue, BoundValue]],
) -> Optional[Tuple[BoundValue, BoundValue]]:
    if first is None or second is None:
        return None
    lo = first[0] if second[0] == NEG_INF else (
        second[0] if first[0] == NEG_INF else max(first[0], second[0])
    )
    hi = first[1] if second[1] == POS_INF else (
        second[1] if first[1] == POS_INF else min(first[1], second[1])
    )
    if lo != NEG_INF and hi != POS_INF and lo > hi:
        return None
    return (lo, hi)


def _param_range_in_box(
    a: int,
    b: int,
    c: int,
    xlo: BoundValue,
    xhi: BoundValue,
    ylo: BoundValue,
    yhi: BoundValue,
) -> Optional[Tuple[Optional[DiophantineSolution], Tuple[BoundValue, BoundValue]]]:
    """Shared core of the box queries: solution family + admissible t range."""
    sol = solve_linear_2var(a, b, c)
    if sol is None:
        return None
    if sol.unconstrained:
        # Every (x, y) works: nonempty iff both coordinate ranges are nonempty.
        x_ok = xlo == NEG_INF or xhi == POS_INF or xlo <= xhi
        y_ok = ylo == NEG_INF or yhi == POS_INF or ylo <= yhi
        if x_ok and y_ok:
            return (sol, (NEG_INF, POS_INF))
        return None
    trange = _intersect_param(
        _param_interval_for(sol.x0, sol.dx, xlo, xhi),
        _param_interval_for(sol.y0, sol.dy, ylo, yhi),
    )
    if trange is None:
        return None
    return (sol, trange)


def has_solution_in_box(
    a: int,
    b: int,
    c: int,
    xlo: BoundValue = NEG_INF,
    xhi: BoundValue = POS_INF,
    ylo: BoundValue = NEG_INF,
    yhi: BoundValue = POS_INF,
) -> bool:
    """Exact test: does ``a*x + b*y = c`` have an integer solution in the box?"""
    return _param_range_in_box(a, b, c, xlo, xhi, ylo, yhi) is not None


def count_solutions_in_box(
    a: int,
    b: int,
    c: int,
    xlo: BoundValue,
    xhi: BoundValue,
    ylo: BoundValue,
    yhi: BoundValue,
) -> Optional[int]:
    """Number of integer solutions in the box; None when infinite."""
    result = _param_range_in_box(a, b, c, xlo, xhi, ylo, yhi)
    if result is None:
        return 0
    sol, (tlo, thi) = result
    if sol.unconstrained:
        if xlo == NEG_INF or xhi == POS_INF or ylo == NEG_INF or yhi == POS_INF:
            return None
        return (xhi - xlo + 1) * (yhi - ylo + 1)
    if tlo == NEG_INF or thi == POS_INF:
        return None
    return thi - tlo + 1

#: A linear condition ``lo <= cx*x + cy*y <= hi`` on solutions.
Condition = Tuple[int, int, BoundValue, BoundValue]


def has_solution_with_conditions(
    a: int, b: int, c: int, conditions: "Sequence[Condition]"
) -> bool:
    """Exact test: does ``a*x + b*y = c`` admit an integer solution
    satisfying every condition ``lo <= cx*x + cy*y <= hi``?

    Because the solution set of the equation is a one-parameter family
    ``(x0 + dx*t, y0 + dy*t)``, each condition becomes a bound on ``t``;
    feasibility is an integer-interval intersection.  The degenerate
    ``a == b == 0, c == 0`` case (every point solves the equation) is
    answered conservatively (True) when the conditions are individually
    satisfiable, since joint feasibility of arbitrary half-plane systems is
    outside this helper's scope — callers never hit that case with real
    subscripts (it would be a ZIV pair).
    """
    sol = solve_linear_2var(a, b, c)
    if sol is None:
        return False
    if sol.unconstrained:
        for cx, cy, lo, hi in conditions:
            if cx == 0 and cy == 0:
                if (lo != NEG_INF and lo > 0) or (hi != POS_INF and hi < 0):
                    return False
        return True
    trange: Optional[Tuple[BoundValue, BoundValue]] = (NEG_INF, POS_INF)
    for cx, cy, lo, hi in conditions:
        base = cx * sol.x0 + cy * sol.y0
        step = cx * sol.dx + cy * sol.dy
        trange = _intersect_param(trange, _param_interval_for(base, step, lo, hi))
        if trange is None:
            return False
    return True


def iter_solutions_in_box(
    a: int,
    b: int,
    c: int,
    xlo: BoundValue,
    xhi: BoundValue,
    ylo: BoundValue,
    yhi: BoundValue,
    limit: int = 10_000,
) -> Iterator[Tuple[int, int]]:
    """Yield integer solutions ``(x, y)`` in the box, at most ``limit``.

    Solutions are produced in increasing order of the family parameter.
    Raises :class:`ValueError` when the solution set is infinite.
    """
    result = _param_range_in_box(a, b, c, xlo, xhi, ylo, yhi)
    if result is None:
        return
    sol, (tlo, thi) = result
    if sol.unconstrained:
        if xlo == NEG_INF or xhi == POS_INF or ylo == NEG_INF or yhi == POS_INF:
            raise ValueError("infinite solution set")
        produced = 0
        for x in range(xlo, xhi + 1):
            for y in range(ylo, yhi + 1):
                if produced >= limit:
                    return
                yield (x, y)
                produced += 1
        return
    if tlo == NEG_INF or thi == POS_INF:
        raise ValueError("infinite solution set")
    produced = 0
    for t in range(tlo, thi + 1):
        if produced >= limit:
            return
        yield sol.point_at(t)
        produced += 1
