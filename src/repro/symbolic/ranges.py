"""Possibly-unbounded integer/rational intervals.

Banerjee's inequalities (Section 4.4 of the paper) bound the value of an
affine form over a box of loop-index ranges; the triangular index-range
algorithm (Section 4.3) computes those ranges for loop nests whose bounds
reference outer indices.  Both need interval arithmetic where either end may
be infinite (unknown symbolic loop bounds degrade to infinities, keeping the
tests conservative).

Infinities are the module-level singletons :data:`NEG_INF` and
:data:`POS_INF` (they are ``float`` infinities so the usual comparison
operators work against ints and Fractions), and finite values are ``int`` or
``fractions.Fraction``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Union

NEG_INF = float("-inf")
POS_INF = float("inf")

Extent = Union[int, Fraction, float]  # finite number or an infinity


def is_finite(value: Extent) -> bool:
    """True for ints and Fractions; False for the infinity sentinels."""
    return not isinstance(value, float)


def floor_div(a: int, b: int) -> int:
    """Floor division matching mathematical floor for any sign of ``b``."""
    return a // b if b > 0 else (-a) // (-b)


def ceil_div(a: int, b: int) -> int:
    """Ceiling division matching mathematical ceiling for any sign of ``b``."""
    return -((-a) // b) if b > 0 else -(a // (-b))


def _mul(value: Extent, factor: Extent) -> Extent:
    """Multiply extents, defining ``0 * inf == 0`` (needed for zero coefficients)."""
    if value == 0 or factor == 0:
        return 0
    return value * factor


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed interval ``[lo, hi]``; either end may be infinite.

    An empty interval is represented by ``lo > hi``; use :meth:`is_empty`.
    Arithmetic follows standard interval semantics and is exact (no floating
    point except for the infinity sentinels).
    """

    lo: Extent
    hi: Extent

    # -- constructors ---------------------------------------------------

    @staticmethod
    def point(value: Extent) -> "Interval":
        """The degenerate interval ``[value, value]``."""
        return Interval(value, value)

    @staticmethod
    def unbounded() -> "Interval":
        """The whole line ``(-inf, +inf)``."""
        return Interval(NEG_INF, POS_INF)

    @staticmethod
    def empty() -> "Interval":
        """A canonical empty interval."""
        return Interval(1, 0)

    # -- queries ---------------------------------------------------------

    def is_empty(self) -> bool:
        """True when the interval contains no value."""
        return self.lo > self.hi

    def is_bounded(self) -> bool:
        """True when both ends are finite."""
        return is_finite(self.lo) and is_finite(self.hi)

    def contains(self, value: Extent) -> bool:
        """Membership test (always False for empty intervals)."""
        return self.lo <= value <= self.hi

    def contains_integer(self) -> bool:
        """True when some integer lies in the interval."""
        if self.is_empty():
            return False
        if not is_finite(self.lo) or not is_finite(self.hi):
            return True
        lo_int = self.lo if isinstance(self.lo, int) else ceil_frac(self.lo)
        hi_int = self.hi if isinstance(self.hi, int) else floor_frac(self.hi)
        return lo_int <= hi_int

    def integer_width(self) -> Optional[int]:
        """Number of integers in the interval; None when infinite."""
        if self.is_empty():
            return 0
        if not self.is_bounded():
            return None
        lo_int = self.lo if isinstance(self.lo, int) else ceil_frac(self.lo)
        hi_int = self.hi if isinstance(self.hi, int) else floor_frac(self.hi)
        return max(0, hi_int - lo_int + 1)

    # -- arithmetic -------------------------------------------------------

    def __add__(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return Interval.empty()
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __neg__(self) -> "Interval":
        if self.is_empty():
            return self
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other: "Interval") -> "Interval":
        return self + (-other)

    def scale(self, factor: Extent) -> "Interval":
        """Multiply both ends by a finite scalar, flipping when negative."""
        if self.is_empty():
            return self
        if factor >= 0:
            return Interval(_mul(self.lo, factor), _mul(self.hi, factor))
        return Interval(_mul(self.hi, factor), _mul(self.lo, factor))

    def shift(self, offset: Extent) -> "Interval":
        """Translate by a finite offset."""
        if self.is_empty():
            return self
        return Interval(self.lo + offset, self.hi + offset)

    def intersect(self, other: "Interval") -> "Interval":
        """Set intersection."""
        if self.is_empty():
            return self
        if other.is_empty():
            return other
        return Interval(max(self.lo, other.lo), min(self.hi, other.hi))

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (convex hull)."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __str__(self) -> str:
        if self.is_empty():
            return "[]"
        return f"[{self.lo}, {self.hi}]"


def floor_frac(value: Union[int, Fraction]) -> int:
    """Mathematical floor of an exact number."""
    if isinstance(value, int):
        return value
    return value.numerator // value.denominator


def ceil_frac(value: Union[int, Fraction]) -> int:
    """Mathematical ceiling of an exact number."""
    if isinstance(value, int):
        return value
    return -((-value.numerator) // value.denominator)
