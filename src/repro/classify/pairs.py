"""Reference pairs: the unit of dependence testing.

A :class:`PairContext` packages everything the tests need about one ordered
pair of array references (the *source* and the *sink* of a candidate
dependence): the shared loop nest, each side's full loop stack, the
subscript pairs with the sink's loop indices *primed* (renamed ``i`` →
``i'``) so both references' index instances coexist in one equation, and the
maximal index ranges from the Section 4.3 algorithm.

Priming follows the paper's notation: a dependence from iteration vector
``i`` to ``i'`` exists when every subscript pair satisfies
``f(i) = g(i')`` within the loop bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.ir.context import LoopContext, SymbolEnv, cached_loop_context
from repro.ir.expr import Expr, to_linear
from repro.ir.loop import AccessSite, Loop, common_loops
from repro.symbolic.linexpr import (
    LinearExpr,
    NonlinearExpressionError,
    cached_renamer,
)
from repro.symbolic.ranges import Interval

PRIME_SUFFIX = "'"


def prime(name: str) -> str:
    """The primed (sink-side) instance name of loop index ``name``."""
    return name + PRIME_SUFFIX


def unprime(name: str) -> str:
    """Strip the prime suffix (identity for unprimed names)."""
    return name[:-len(PRIME_SUFFIX)] if name.endswith(PRIME_SUFFIX) else name


@dataclass
class SubscriptPair:
    """One subscript position of a reference pair.

    ``src`` and ``sink`` are the affine forms of the two subscript
    expressions — the sink's loop indices already primed — or None when the
    raw expression is nonlinear.  The dependence equation for the position
    is ``src == sink``.
    """

    position: int
    src_raw: Expr
    sink_raw: Expr
    src: Optional[LinearExpr]
    sink: Optional[LinearExpr]

    @property
    def is_linear(self) -> bool:
        """True when both sides normalized to affine forms."""
        return self.src is not None and self.sink is not None

    def difference(self) -> LinearExpr:
        """``src - sink``: the affine form whose zero set is the dependence."""
        if not self.is_linear:
            raise ValueError(f"subscript position {self.position} is nonlinear")
        assert self.src is not None and self.sink is not None
        return self.src - self.sink

    def __str__(self) -> str:
        return f"<{self.src_raw}, {self.sink_raw}>"


class PairContext:
    """Loop and range information shared by all tests on one reference pair."""

    def __init__(
        self,
        src_site: AccessSite,
        sink_site: AccessSite,
        symbols: Optional[SymbolEnv] = None,
    ):
        self.src_site = src_site
        self.sink_site = sink_site
        self.symbols = symbols or SymbolEnv()
        self.common: Tuple[Loop, ...] = common_loops(src_site, sink_site)
        self.common_indices: Tuple[str, ...] = tuple(l.index for l in self.common)
        self._src_ctx = cached_loop_context(src_site.loops, self.symbols)
        self._sink_ctx = cached_loop_context(sink_site.loops, self.symbols)
        self._prime_map: Dict[str, str] = {
            idx: prime(idx) for idx in self._sink_ctx.indices
        }
        self.subscripts: List[SubscriptPair] = self._build_subscripts()
        self._ranges: Dict[str, Interval] = self._build_ranges()

    # ------------------------------------------------------------------

    def _build_subscripts(self) -> List[SubscriptPair]:
        src_ref = self.src_site.ref
        sink_ref = self.sink_site.ref
        primer = cached_renamer(self._prime_map)
        pairs: List[SubscriptPair] = []
        for position, (s_raw, t_raw) in enumerate(
            zip(src_ref.subscripts, sink_ref.subscripts)
        ):
            src_lin = _linear_or_none(s_raw)
            sink_lin = _linear_or_none(t_raw)
            if sink_lin is not None:
                sink_lin = primer(sink_lin)
            pairs.append(SubscriptPair(position, s_raw, t_raw, src_lin, sink_lin))
        return pairs

    def _build_ranges(self) -> Dict[str, Interval]:
        # All the pairs over one (source stack, sink stack) combination see
        # the same ranges; share one frozen map across them.  Contexts are
        # interned by ``cached_loop_context``, so identity keying is exact.
        cache_key = (self._src_ctx, self._sink_ctx)
        shared = _SHARED_RANGES.get(cache_key)
        if shared is None:
            shared = dict(self.symbols.ranges)
            for idx in self._src_ctx.indices:
                shared[idx] = self._src_ctx.index_range(idx)
            for idx in self._sink_ctx.indices:
                shared[prime(idx)] = self._sink_ctx.index_range(idx)
            if len(_SHARED_RANGES) > 4096:
                _SHARED_RANGES.clear()
            _SHARED_RANGES[cache_key] = shared
        return shared

    # ------------------------------------------------------------------

    @property
    def src_context(self) -> LoopContext:
        """The source side's full loop context (all enclosing loops)."""
        return self._src_ctx

    @property
    def sink_context(self) -> LoopContext:
        """The sink side's full loop context (all enclosing loops)."""
        return self._sink_ctx

    @property
    def rank_mismatch(self) -> bool:
        """True when the two references have different dimensionality.

        This cannot happen for conforming Fortran but the IR permits it;
        such pairs are treated conservatively (assume dependence).
        """
        return self.src_site.ref.ndim != self.sink_site.ref.ndim

    @property
    def depth(self) -> int:
        """Number of common loops."""
        return len(self.common)

    def is_index(self, base: str) -> bool:
        """True when ``base`` is a loop index of either side."""
        return self._src_ctx.is_index(base) or self._sink_ctx.is_index(base)

    def is_common(self, base: str) -> bool:
        """True when ``base`` indexes a loop common to both references."""
        return base in self.common_indices

    def level(self, base: str) -> int:
        """1-based level of a common loop index."""
        return self.common_indices.index(base) + 1

    def occurrence_names(self, base: str) -> Tuple[Optional[str], Optional[str]]:
        """The (source-side, sink-side) variable names of index ``base``.

        Either component is None when the corresponding reference is not
        enclosed by a loop on ``base``.
        """
        src_name = base if self._src_ctx.is_index(base) else None
        sink_name = prime(base) if self._sink_ctx.is_index(base) else None
        return src_name, sink_name

    def base_indices_of(self, expr: LinearExpr) -> Set[str]:
        """Base (unprimed) loop-index names occurring in an affine form."""
        bases: Set[str] = set()
        for name in expr.variables():
            base = unprime(name)
            if self.is_index(base):
                bases.add(base)
        return bases

    def subscript_bases(self, pair: SubscriptPair) -> FrozenSet[str]:
        """Base indices occurring in either side of a subscript pair.

        Nonlinear subscripts report the variables of their raw trees so the
        partitioner can still group them.
        """
        bases: Set[str] = set()
        if pair.src is not None:
            bases |= self.base_indices_of(pair.src)
        else:
            bases |= {v for v in pair.src_raw.variables() if self._src_ctx.is_index(v)}
        if pair.sink is not None:
            bases |= self.base_indices_of(pair.sink)
        else:
            bases |= {
                v for v in pair.sink_raw.variables() if self._sink_ctx.is_index(v)
            }
        return frozenset(bases)

    def range_of(self, name: str) -> Interval:
        """Range of a (possibly primed) index or a known symbol."""
        return self._ranges.get(name, Interval.unbounded())

    def variable_env(self) -> Dict[str, Interval]:
        """Full variable-range environment for interval evaluation."""
        return dict(self._ranges)

    def trip_span(self, base: str) -> Interval:
        """Range of ``U - L`` for the loop on ``base``.

        Uses the source side's loop when both sides have one (for common
        indices they are the same loop object).
        """
        if self._src_ctx.is_index(base):
            return self._src_ctx.trip_span(base)
        if self._sink_ctx.is_index(base):
            return self._sink_ctx.trip_span(base)
        return Interval.unbounded()

    def loop_for(self, base: str) -> Optional[Loop]:
        """The Loop node for a common index."""
        for loop in self.common:
            if loop.index == base:
                return loop
        return None

    def tightened(self, overrides: Dict[str, Interval]) -> "PairContext":
        """A shallow copy with some occurrence-variable ranges narrowed.

        Used by the Delta test's FME-style range reduction (the paper's
        Section 5.3 remark): constraints derived from one subscript narrow
        the iteration ranges the remaining subscripts are tested against.
        Ranges only ever shrink (the override intersects the original).
        """
        import copy

        clone = copy.copy(self)
        ranges = dict(self._ranges)
        for name, interval in overrides.items():
            ranges[name] = ranges.get(name, Interval.unbounded()).intersect(interval)
        clone._ranges = ranges
        return clone

    def __repr__(self) -> str:
        return (
            f"PairContext({self.src_site.ref} -> {self.sink_site.ref}, "
            f"common={list(self.common_indices)})"
        )


#: Shared, read-only range maps keyed by (source, sink) loop-context
#: identity.  ``PairContext`` instances never write to their ``_ranges``
#: (``tightened`` copies first), so sharing is safe; bounded and cleared
#: wholesale like the loop-context cache.
_SHARED_RANGES: Dict[Tuple[LoopContext, LoopContext], Dict[str, Interval]] = {}

#: Value-keyed linearization memo.  Expression trees are immutable and hash
#: by value, so structurally equal subscripts (ubiquitous across the pairs
#: of one routine) share a single ``to_linear`` walk.  Bounded and cleared
#: wholesale like the loop-context cache — entries are cheap to rebuild.
_LINEAR_CACHE: Dict[Expr, Optional[LinearExpr]] = {}
_MISSING = object()


def _linear_or_none(expr: Expr) -> Optional[LinearExpr]:
    cached = _LINEAR_CACHE.get(expr, _MISSING)
    if cached is not _MISSING:
        return cached
    try:
        linear: Optional[LinearExpr] = to_linear(expr)
    except NonlinearExpressionError:
        linear = None
    if len(_LINEAR_CACHE) > 8192:
        _LINEAR_CACHE.clear()
    _LINEAR_CACHE[expr] = linear
    return linear
