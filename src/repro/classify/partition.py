"""Partitioning subscripts into separable positions and minimal coupled groups.

Section 2.2 of the paper: a subscript position is *separable* when its
indices occur in no other position; positions sharing an index are
*coupled*.  A coupled group is *minimal* when it cannot be split into two
non-empty subgroups with disjoint index sets — i.e. the groups are the
connected components of the "shares an index" relation.

Separable subscripts are tested independently and the results intersected
exactly (systems in distinct variables solve independently); coupled groups
go to the Delta test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.classify.pairs import PairContext, SubscriptPair


@dataclass
class Partition:
    """One element of the partition: a set of subscript positions.

    ``indices`` is the union of base loop indices over the group's
    positions.  A partition with a single position is *separable*; larger
    partitions are minimal coupled groups.
    """

    pairs: List[SubscriptPair]
    indices: FrozenSet[str]

    @property
    def is_separable(self) -> bool:
        """True for singleton partitions (including all ZIV positions)."""
        return len(self.pairs) == 1

    @property
    def positions(self) -> Tuple[int, ...]:
        """The subscript positions in this partition, sorted."""
        return tuple(sorted(p.position for p in self.pairs))

    def __str__(self) -> str:
        inner = ", ".join(str(p) for p in self.pairs)
        return f"{{{inner}}}"


class _UnionFind:
    def __init__(self, size: int):
        self.parent = list(range(size))

    def find(self, item: int) -> int:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)


def partition_subscripts(
    subscripts: Sequence[SubscriptPair], context: PairContext
) -> List[Partition]:
    """Partition subscript positions into separable/minimal-coupled groups.

    ZIV positions mention no index, so each forms its own (separable)
    partition.  The result is ordered by the lowest position in each group,
    which keeps output deterministic for the study tables.
    """
    count = len(subscripts)
    bases_per_position: List[FrozenSet[str]] = [
        context.subscript_bases(pair) for pair in subscripts
    ]
    uf = _UnionFind(count)
    owner: Dict[str, int] = {}
    for position, bases in enumerate(bases_per_position):
        for base in bases:
            if base in owner:
                uf.union(owner[base], position)
            else:
                owner[base] = position
    groups: Dict[int, List[int]] = {}
    for position in range(count):
        groups.setdefault(uf.find(position), []).append(position)
    partitions: List[Partition] = []
    for root in sorted(groups, key=lambda r: min(groups[r])):
        members = sorted(groups[root])
        indices: FrozenSet[str] = frozenset().union(
            *(bases_per_position[m] for m in members)
        ) if members else frozenset()
        partitions.append(
            Partition([subscripts[m] for m in members], indices)
        )
    return partitions


def coupled_groups(partitions: Sequence[Partition]) -> List[Partition]:
    """The non-separable partitions (minimal coupled groups)."""
    return [p for p in partitions if not p.is_separable]


def separable_positions(partitions: Sequence[Partition]) -> List[Partition]:
    """The separable (singleton) partitions."""
    return [p for p in partitions if p.is_separable]
