"""Subscript classification: ZIV / SIV / MIV and the SIV special cases.

Section 3 of the paper classifies each subscript pair by the number of
distinct loop indices it mentions:

* **ZIV** (zero index variables): both sides loop-invariant.
* **SIV** (single index variable), further split (Section 4.2):

  - *strong*:        ``a*i + c1  vs  a*i' + c2`` (equal nonzero coefficients)
  - *weak-zero*:     one coefficient zero (``a*i + c1  vs  c2``)
  - *weak-crossing*: opposite coefficients (``a*i + c1  vs  -a*i' + c2``)
  - *weak* (general): any other linear SIV shape

* **RDIV** (restricted double index variable): ``a1*i + c1  vs  a2*j + c2``
  with distinct indices — an MIV special case amenable to SIV machinery.
* **MIV** (multiple index variables): everything else linear.
* **nonlinear**: a side that does not normalize to an affine form.

Classification drives both test selection (Section 4) and the empirical
study's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from repro.classify.pairs import PairContext, SubscriptPair, prime
from repro.symbolic.linexpr import LinearExpr


class SubscriptKind(Enum):
    """The paper's subscript taxonomy."""

    ZIV = "ziv"
    SIV_STRONG = "strong-siv"
    SIV_WEAK_ZERO = "weak-zero-siv"
    SIV_WEAK_CROSSING = "weak-crossing-siv"
    SIV_WEAK = "weak-siv"
    RDIV = "rdiv"
    MIV = "miv"
    NONLINEAR = "nonlinear"

    @property
    def is_siv(self) -> bool:
        """True for the four SIV variants."""
        return self in (
            SubscriptKind.SIV_STRONG,
            SubscriptKind.SIV_WEAK_ZERO,
            SubscriptKind.SIV_WEAK_CROSSING,
            SubscriptKind.SIV_WEAK,
        )

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SIVShape:
    """The coefficients of an SIV (or single-index RDIV side) subscript.

    Represents the dependence equation ``a1*x + c1 = a2*y + c2`` where ``x``
    is the source occurrence and ``y`` the sink occurrence of the index (for
    SIV they are instances ``i`` and ``i'`` of the same loop; for RDIV they
    are distinct loops).  ``c1``/``c2`` are the loop-invariant parts and may
    be symbolic.
    """

    index: str
    a1: int
    a2: int
    c1: LinearExpr
    c2: LinearExpr
    src_name: Optional[str]
    sink_name: Optional[str]

    @property
    def constant_difference(self) -> LinearExpr:
        """``c2 - c1``: the right-hand side of ``a1*x - a2*y = c2 - c1``."""
        return self.c2 - self.c1


def classify(pair: SubscriptPair, context: PairContext) -> SubscriptKind:
    """Classify one subscript pair per the paper's taxonomy."""
    if not pair.is_linear:
        return SubscriptKind.NONLINEAR
    bases = context.subscript_bases(pair)
    if not bases:
        return SubscriptKind.ZIV
    if len(bases) == 1:
        shape = siv_shape(pair, context, next(iter(bases)))
        return _classify_siv(shape)
    if len(bases) == 2:
        src_bases = context.base_indices_of(pair.src) if pair.src else set()
        sink_bases = context.base_indices_of(pair.sink) if pair.sink else set()
        if len(src_bases) == 1 and len(sink_bases) == 1 and src_bases != sink_bases:
            return SubscriptKind.RDIV
    return SubscriptKind.MIV


def _classify_siv(shape: SIVShape) -> SubscriptKind:
    if shape.a1 == shape.a2:
        # Both nonzero (else the pair would be ZIV).
        return SubscriptKind.SIV_STRONG
    if shape.a1 == 0 or shape.a2 == 0:
        return SubscriptKind.SIV_WEAK_ZERO
    if shape.a1 == -shape.a2:
        return SubscriptKind.SIV_WEAK_CROSSING
    return SubscriptKind.SIV_WEAK


def siv_shape(pair: SubscriptPair, context: PairContext, base: str) -> SIVShape:
    """Extract the SIV coefficients of index ``base`` from a subscript pair.

    Works for any linear pair; terms over *other* indices stay inside
    ``c1``/``c2`` (callers ensure ``base`` is the only index for true SIV
    use; the Delta test reuses this to peel one index out of an MIV
    subscript after propagation).
    """
    if not pair.is_linear:
        raise ValueError("cannot take the SIV shape of a nonlinear subscript")
    assert pair.src is not None and pair.sink is not None
    src_name, sink_name = context.occurrence_names(base)
    a1 = pair.src.coeff(src_name) if src_name else 0
    a2 = pair.sink.coeff(sink_name) if sink_name else 0
    c1 = pair.src - (
        LinearExpr.var(src_name, a1) if src_name and a1 else LinearExpr.ZERO
    )
    c2 = pair.sink - (
        LinearExpr.var(sink_name, a2) if sink_name and a2 else LinearExpr.ZERO
    )
    return SIVShape(base, a1, a2, c1, c2, src_name, sink_name)


def rdiv_shape(pair: SubscriptPair, context: PairContext) -> SIVShape:
    """Extract the RDIV coefficients ``<a1*i + c1, a2*j + c2>``.

    ``x`` is the source's index occurrence, ``y`` the sink's; their loops
    (and so their ranges) differ, which is exactly what distinguishes the
    RDIV test from the SIV tests (Section 4.4).
    """
    if not pair.is_linear:
        raise ValueError("cannot take the RDIV shape of a nonlinear subscript")
    assert pair.src is not None and pair.sink is not None
    src_bases = sorted(context.base_indices_of(pair.src))
    sink_bases = sorted(context.base_indices_of(pair.sink))
    if len(src_bases) != 1 or len(sink_bases) != 1:
        raise ValueError(f"{pair} is not an RDIV subscript")
    src_base = src_bases[0]
    sink_base = sink_bases[0]
    if src_base == sink_base:
        raise ValueError(f"{pair} is SIV, not RDIV (both sides use {src_base})")
    src_name = src_base
    sink_name = prime(sink_base)
    a1 = pair.src.coeff(src_name)
    a2 = pair.sink.coeff(sink_name)
    c1 = pair.src - LinearExpr.var(src_name, a1)
    c2 = pair.sink - LinearExpr.var(sink_name, a2)
    # ``index`` records the source index; callers query each side's name.
    return SIVShape(src_base, a1, a2, c1, c2, src_name, sink_name)
