"""Subscript classification and partitioning (Sections 2-3 of the paper)."""

from repro.classify.pairs import (
    PairContext,
    SubscriptPair,
    PRIME_SUFFIX,
    prime,
    unprime,
)
from repro.classify.subscript import (
    SIVShape,
    SubscriptKind,
    classify,
    rdiv_shape,
    siv_shape,
)
from repro.classify.partition import (
    Partition,
    coupled_groups,
    partition_subscripts,
    separable_positions,
)

__all__ = [
    "PairContext",
    "SubscriptPair",
    "PRIME_SUFFIX",
    "prime",
    "unprime",
    "SIVShape",
    "SubscriptKind",
    "classify",
    "rdiv_shape",
    "siv_shape",
    "Partition",
    "coupled_groups",
    "partition_subscripts",
    "separable_positions",
]
