"""Checkpoint/resume protocol over the persistent verdict store.

Resumability of a dependence sweep falls out of two facts: verdicts are
pure functions of canonical pair keys (so the store tier replays them
byte-identically), and every analysis output is rebuilt from verdicts
cheaply once the tests themselves are skipped.  A *checkpoint* therefore
never tries to snapshot control flow — it records **progress markers**
(completed dispatch chunks, completed routines) under a *run token* that
identifies the input, so a resumed run can prove it is continuing the
same work and report how far the killed run got, while the store tier
does the actual heavy lifting of skipping finished tests.

The run token hashes the analysis input (file bytes, or the corpus suite
selection) together with the options that change the verdict stream.  A
``--resume`` against a store whose markers carry a different token still
works — the verdict tier is input-agnostic by construction — but the
resume report says so instead of claiming prior progress.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Set, Tuple

from repro.engine.store import VerdictStore


def run_token(*parts: object) -> str:
    """A stable hex token identifying one analysis input + option set.

    ``parts`` may be str/bytes/int/bool/None; anything else contributes
    its ``repr``.  The token survives process restarts (no ids, no
    addresses) so a killed run and its resume agree.
    """
    digest = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            blob = part
        elif isinstance(part, str):
            blob = part.encode("utf-8", "surrogatepass")
        else:
            blob = repr(part).encode("utf-8")
        digest.update(len(blob).to_bytes(8, "little"))
        digest.update(blob)
    return digest.hexdigest()[:16]


class CheckpointLog:
    """Progress markers for one run token, backed by a :class:`VerdictStore`.

    The engine bumps the *build* counter once per graph build (one per
    routine), and the parallel builder marks each dispatch chunk as its
    canonical entries land in the store — both under this log's token, so
    markers from different inputs sharing a store never collide.  Routine
    markers work the same way through :meth:`mark_routine` (the CLI and
    study harness call it after printing each routine's results).

    Marker writes checkpoint the store eagerly: a marker that says "chunk
    done" must never be durable *before* the verdicts it covers.
    ``VerdictStore`` appends in order and :meth:`~VerdictStore.checkpoint`
    flushes everything buffered, so the ordering holds by construction.
    """

    def __init__(self, store: VerdictStore, token: str):
        self.store = store
        self.token = token
        self._build = -1
        # Progress the killed run left behind for this token, frozen at
        # open time so the resume report does not count our own markers.
        # ``store.runs()`` polls the meta shard, so markers a sibling
        # writer landed in a shared (v2 sharded) store count too — and
        # they are deduped by value on fold, so two writers marking the
        # same routine yield one skip, not two.
        self.prior_chunks: Set[Tuple[int, int]] = store.chunks_done(token)
        self.prior_runs: int = sum(
            1
            for t, label in store.runs()
            if t == token and not label.startswith("routine:")
        )
        self.prior_routines: Set[str] = {
            label[len("routine:"):]
            for t, label in store.runs()
            if t == token and label.startswith("routine:")
        }

    # -- markers ---------------------------------------------------------
    #
    # Markers land in the store's dedicated meta shard, which flushes
    # strictly after the data shards (see VerdictStore.checkpoint), so a
    # durable marker never claims verdicts a crash could have lost.  On
    # a legacy v1 store opened read-only the markers are skipped: prior
    # progress still reads, new progress simply isn't recorded.

    def begin_run(self, label: str) -> None:
        """Record that a run over this token started (durably)."""
        if self.store.read_only:
            return
        self.store.mark_run(self.token, label)
        self.store.checkpoint()

    def begin_build(self) -> int:
        """Enter the next graph build; returns its build ordinal."""
        self._build += 1
        return self._build

    def mark_chunk(self, seq: int) -> None:
        """Record one completed dispatch chunk of the current build."""
        if self.store.read_only:
            return
        self.store.mark_chunk(self.token, max(self._build, 0), seq)
        self.store.checkpoint()

    def mark_routine(self, name: str) -> None:
        """Record one fully analyzed routine (durably)."""
        if self.store.read_only:
            return
        self.store.mark_run(self.token, f"routine:{name}")
        self.store.checkpoint()

    # -- resume reporting ------------------------------------------------

    @property
    def resumable(self) -> bool:
        """True when the store holds prior progress for this exact input."""
        return bool(
            self.prior_runs or self.prior_chunks or self.prior_routines
        )

    def resume_summary(self) -> str:
        """One-line human summary for ``--resume`` banners."""
        if not self.resumable:
            return (
                "no checkpoint for this input in the store; starting fresh "
                f"({len(self.store)} verdict(s) resident remain usable)"
            )
        parts = [f"{len(self.store)} verdict(s) resident"]
        if self.prior_routines:
            parts.append(f"{len(self.prior_routines)} routine(s) checkpointed")
        if self.prior_chunks:
            parts.append(f"{len(self.prior_chunks)} chunk(s) checkpointed")
        return "resuming: " + ", ".join(parts)
