"""High-throughput dependence engine.

The paper's empirical observation — real programs are dominated by a small
number of structurally identical subscript shapes — makes corpus-wide
dependence testing an ideal memoization target, and the pair population is
embarrassingly parallel.  This package exploits both:

* :mod:`repro.engine.canonical` — alpha-renames a
  :class:`~repro.classify.pairs.PairContext` into a hashable *canonical
  pair key* so structurally identical pairs share one test, and converts
  driver results to/from a name-free canonical form that can cross cache
  and process boundaries;
* :mod:`repro.engine.cache` — an LRU cache over
  :func:`~repro.core.driver.test_dependence` keyed by canonical pair keys,
  with hit/miss/eviction counters in an :class:`EngineStats`, plus a
  second tier of precompiled :class:`~repro.core.plan.TestPlan` dispatch
  schedules replayed on verdict misses;
* :mod:`repro.engine.parallel` — a process-pool graph builder with
  adaptive dispatch: per-pair cost estimates size the chunks, and small or
  cheap builds stay in-process; one representative per canonical key is
  tested in the workers, and per-worker
  :class:`~repro.instrument.TestRecorder` counters merge losslessly;
* :mod:`repro.engine.profile` — opt-in per-phase and per-test-tier wall
  timing (:class:`PhaseProfile`), surfaced by ``repro-deps analyze
  --profile``;
* :mod:`repro.engine.faults` — the fault taxonomy
  (:class:`PairTestError`, :class:`WorkerCrashError`,
  :class:`BudgetExceededError`, …), the per-pair :class:`StepBudget`, the
  structured :class:`FailureRecord`, and the :class:`FaultPolicy` knobs
  (strict vs. degrade, budgets, timeouts, restart bounds);
* :mod:`repro.engine.supervisor` — :class:`PoolSupervisor`, which wraps
  chunk dispatch so worker crashes and hangs respawn the pool (bounded)
  and re-run suspect chunks serially in the parent;
* :mod:`repro.engine.faultinject` — the deterministic fault-injection
  harness behind the ``REPRO_FAULTS`` environment hook (test-only);
* :mod:`repro.engine.store` — :class:`VerdictStore`, a crash-safe
  sharded on-disk verdict/plan store (a manifest plus key-prefix shard
  segments of CRC-checked length-prefixed records; per-batch shard
  locks, so any number of concurrent processes share one store; corrupt
  tails truncated on open, failing shards quarantined) serving as a
  persistent third cache tier, with :func:`migrate_store` upgrading
  legacy v1 single-file stores;
* :mod:`repro.engine.checkpoint` — :class:`CheckpointLog` and
  :func:`run_token`: durable completed-chunk/routine markers over the
  store, so ``repro-deps ... --store s.db --resume`` continues a killed
  run from its last fsync'd checkpoint;
* :mod:`repro.engine.engine` — the :class:`DependenceEngine` facade the
  CLI, the study harness, and the benchmarks drive.

All three builders (serial, cached, parallel) produce byte-identical
dependence graphs and recorder statistics; ``tests/test_engine.py`` holds
the parity property tests.  Failures never change a verdict from
dependent to independent: any absorbed fault degrades the affected pair
to a conservative assumed-dependence edge (``tests/test_faults.py``).
"""

from repro.engine.canonical import (
    CacheEntry,
    canonical_pair_key,
    canonicalize_result,
    rehydrate_result,
    rename_map,
)
from repro.engine.cache import CachedDriver
from repro.engine.checkpoint import CheckpointLog, run_token
from repro.engine.engine import DependenceEngine
from repro.engine.faults import (
    BudgetExceededError,
    ChunkTimeoutError,
    Deadline,
    DeadlineExceededError,
    EngineFaultError,
    FailureRecord,
    FaultPolicy,
    PairTestError,
    StepBudget,
    WorkerCrashError,
)
from repro.engine.parallel import (
    build_dependence_graph_parallel,
    estimate_pair_cost,
)
from repro.engine.profile import PhaseProfile
from repro.engine.stats import EngineStats
from repro.engine.store import (
    DEFAULT_SHARDS,
    CompactionResult,
    StoreError,
    StoreLockError,
    StoreReadOnlyError,
    StoreReport,
    VerdictStore,
    migrate_store,
)
from repro.engine.supervisor import PoolSupervisor

__all__ = [
    "BudgetExceededError",
    "CacheEntry",
    "CachedDriver",
    "CheckpointLog",
    "ChunkTimeoutError",
    "Deadline",
    "DeadlineExceededError",
    "DependenceEngine",
    "EngineFaultError",
    "EngineStats",
    "FailureRecord",
    "FaultPolicy",
    "PairTestError",
    "PhaseProfile",
    "PoolSupervisor",
    "StepBudget",
    "DEFAULT_SHARDS",
    "CompactionResult",
    "StoreError",
    "StoreLockError",
    "StoreReadOnlyError",
    "StoreReport",
    "VerdictStore",
    "migrate_store",
    "WorkerCrashError",
    "build_dependence_graph_parallel",
    "canonical_pair_key",
    "canonicalize_result",
    "estimate_pair_cost",
    "rehydrate_result",
    "rename_map",
    "run_token",
]
