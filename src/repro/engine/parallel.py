"""Parallel dependence-graph construction over a process pool.

The candidate-pair population of a statement list is embarrassingly
parallel: every pair's test is independent.  This builder

1. prepares every pair in the parent (context + canonical key — cheap),
2. deduplicates by canonical key and ships only one representative per
   *missing* key to the pool, in chunks of ``(site_index, site_index)``
   tuples bundled with the statement list they index into,
3. adopts the returned canonical :class:`~repro.engine.canonical.CacheEntry`
   objects into the shared :class:`~repro.engine.cache.CachedDriver`, and
4. resolves every pair through the now-hot cache, building edges in the
   parent so they reference the parent's own loop and site objects.

Dispatch is *adaptive*: every work item gets a cost estimate from its
classification mix (ZIV positions are near-free, coupled groups cost an
order of magnitude more), and the builder

* stays serial outright when the candidate-pair population or the
  predicted work is too small to amortize pool IPC — the paper's kernels
  average ~8 pairs per routine, for which a pool is pure overhead — and
* otherwise sizes chunks to ``total_work / (jobs * OVERSUBSCRIPTION)``
  cost units rather than a fixed pair count, so a handful of expensive
  Delta groups cannot serialize behind one worker.

Because workers return only canonical entries (never contexts or loops),
nothing in the assembled graph depends on worker-process object identity;
per-pair recorder deltas are merged with
:meth:`~repro.instrument.TestRecorder.merge`, keeping Table 3 counters
byte-identical to a serial run.

A caller-supplied pool (see :func:`make_pool`) is reused across builds —
:class:`~repro.engine.engine.DependenceEngine` keeps one for its
lifetime, so a corpus-wide study pays the pool startup cost once, not
once per routine.  Passing ``pool_factory`` instead defers even pool
*creation* until a build actually needs workers.
"""

from __future__ import annotations

import signal
from concurrent.futures import ProcessPoolExecutor
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.classify.pairs import PairContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.checkpoint import CheckpointLog
from repro.backends import BatchItem, TestBackend, get_backend
from repro.core.driver import assumed_dependence_result, test_dependence
from repro.delta.delta import DEFAULT_OPTIONS, DeltaOptions
from repro.engine import faultinject
from repro.engine.cache import CachedDriver
from repro.engine.canonical import (
    CacheEntry,
    CanonicalKey,
    canonicalize_result,
    rehydrate_result,
    rename_map,
)
from repro.engine.faults import (
    FailureRecord,
    FaultPolicy,
    PairTestError,
    StepBudget,
    describe_error,
    failure_kind,
)
from repro.engine.supervisor import PoolSupervisor
from repro.graph.depgraph import (
    DependenceEdge,
    DependenceGraph,
    edges_from_result,
    iter_candidate_pairs,
)
from repro.instrument import TestRecorder
from repro.ir.context import SymbolEnv
from repro.ir.loop import Node, collect_access_sites

#: Builds with fewer candidate pairs than this never touch the pool: at
#: kernel-corpus pair counts the pool round-trip alone exceeds the whole
#: serial build.
AUTO_SERIAL_PAIR_THRESHOLD = 32

#: Minimum predicted work (cost units, see :func:`estimate_pair_cost`)
#: worth shipping to workers.  One unit is roughly one cheap single-
#: subscript test (~0.05 ms); the first dispatching build also pays pool
#: startup (~100 ms for two workers), so the break-even sits around a
#: couple of thousand units — anything below is faster in-process.
MIN_PARALLEL_COST = 2048

#: Chunks per worker the adaptive splitter aims for: enough slack to
#: load-balance uneven test costs without drowning in per-chunk IPC.
OVERSUBSCRIPTION = 4

# Per-worker configuration (Delta options, per-pair step budget, backend
# name), installed once by the pool initializer.
_WORKER: dict = {
    "delta_options": DEFAULT_OPTIONS,
    "pair_budget": None,
    "backend": None,
}


def _init_worker(
    delta_options: DeltaOptions,
    pair_budget: Optional[int] = None,
    backend: Optional[str] = None,
) -> None:
    _WORKER["delta_options"] = delta_options
    _WORKER["pair_budget"] = pair_budget
    # Backends cross the process boundary by *name* (instances hold lazy
    # imports); each worker resolves its own instance on first chunk.
    _WORKER["backend"] = backend
    # Chunk-scoped fault injection (crash/hang) only fires in workers, so
    # the supervisor's parent-side serial recovery computes real results.
    faultinject.IN_WORKER = True
    # Fork-spawned workers inherit the parent's signal machinery.  When
    # the parent is the analysis service, that machinery is asyncio's
    # add_signal_handler: a Python-level handler writing into a wakeup
    # pipe *shared across the fork*.  A worker terminated by the pool
    # supervisor would then relay its own SIGTERM into the parent's
    # event loop — and gracefully shut the whole service down.  Workers
    # must die plainly: default disposition, no wakeup fd.
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover
            pass


def make_pool(
    jobs: int,
    delta_options: DeltaOptions = DEFAULT_OPTIONS,
    pair_budget: Optional[int] = None,
    backend: Optional[str] = None,
) -> ProcessPoolExecutor:
    """A worker pool configured for :func:`build_dependence_graph_parallel`."""
    return ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_worker,
        initargs=(delta_options, pair_budget, backend),
    )


def estimate_pair_cost(context: PairContext) -> int:
    """Predicted test cost of one pair, in arbitrary *cost units*.

    Derived from the classification mix without running the classifier:
    per subscript position, the number of distinct base indices decides
    the tier (ZIV ≈ 1, SIV ≈ 2, MIV ≈ 8), and any index shared between
    positions predicts a coupled group — a Delta test costs an order of
    magnitude more than the single-subscript tests.
    """
    cost = 1
    seen: set = set()
    coupled = False
    for pair in context.subscripts:
        bases = context.subscript_bases(pair)
        n = len(bases)
        if n == 0:
            cost += 1
        elif n == 1:
            cost += 2
        else:
            cost += 8
        if not coupled and not seen.isdisjoint(bases):
            coupled = True
        seen |= bases
    if coupled:
        cost += 20
    return cost


def _cost_chunks(
    specs: List[Tuple[int, int]], costs: List[int], jobs: int
) -> List[List[Tuple[int, int]]]:
    """Split work into chunks of roughly equal *cost* (not count).

    Targets ``total_cost / (jobs * OVERSUBSCRIPTION)`` per chunk so the
    pool gets enough chunks to load-balance while each stays large enough
    to amortize dispatch.
    """
    total = sum(costs)
    target = max(total // (jobs * OVERSUBSCRIPTION), 1)
    chunks: List[List[Tuple[int, int]]] = []
    current: List[Tuple[int, int]] = []
    acc = 0
    for spec, cost in zip(specs, costs):
        current.append(spec)
        acc += cost
        if acc >= target:
            chunks.append(current)
            current = []
            acc = 0
    if current:
        chunks.append(current)
    return chunks


#: One dispatch task: ``(chunk_seq, nodes, symbols, site-index pairs)``.
ChunkTask = Tuple[int, Sequence[Node], Optional[SymbolEnv], List[Tuple[int, int]]]


def run_chunk(
    task: ChunkTask,
    delta_options: DeltaOptions,
    pair_budget: Optional[int],
    backend: "TestBackend | str | None" = None,
) -> List[CacheEntry]:
    """Test a chunk of pairs (by site index); return canonical entries.

    The statement list rides along with each chunk, so one long-lived pool
    serves builds over any number of different routines.  Sites are
    re-collected locally; ``collect_access_sites`` is deterministic, so
    site indices agree with the parent's.

    The chunk's pairs flow to ``backend.run_batch`` together, so a
    batching backend vectorizes *inside* each worker — parallelism and
    batching compose.  Every pair is individually guarded by the batch
    interface: an in-test exception (or an exhausted step budget) yields
    a conservative assumed-dependence entry with an *empty* recorder
    delta instead of killing the chunk, so one pathological pair cannot
    take its chunk-mates down with it.  Runs in pool workers and — as
    the supervisor's recovery path — in the parent.
    """
    seq, nodes, symbols, chunk = task
    faultinject.on_chunk(seq)
    if backend is None or isinstance(backend, str):
        backend = get_backend(backend)
    sites = collect_access_sites(nodes)
    work: List[Tuple[BatchItem, dict]] = []
    for src_index, sink_index in chunk:
        src, sink = sites[src_index], sites[sink_index]
        context = PairContext(src, sink, symbols)
        work.append(
            (
                BatchItem(
                    context=context,
                    delta_options=delta_options,
                    budget=StepBudget(pair_budget) if pair_budget else None,
                ),
                rename_map(context),
            )
        )
    backend.run_batch([item for item, _ in work])
    entries: List[CacheEntry] = []
    for item, mapping in work:
        if item.error is not None:
            result = assumed_dependence_result(
                item.context, describe_error(item.error)
            )
            entries.append(canonicalize_result(result, mapping, TestRecorder()))
        else:
            entries.append(
                canonicalize_result(item.result, mapping, item.recorder)
            )
    return entries


def _test_chunk(task: ChunkTask) -> List[CacheEntry]:
    """Pool entry point: :func:`run_chunk` under the worker's config."""
    return run_chunk(
        task,
        _WORKER["delta_options"],
        _WORKER["pair_budget"],
        _WORKER["backend"],
    )


def _chunked(items: List, size: int) -> List[List]:
    return [items[start : start + size] for start in range(0, len(items), size)]


def build_dependence_graph_parallel(
    nodes: Sequence[Node],
    symbols: Optional[SymbolEnv] = None,
    recorder: Optional[TestRecorder] = None,
    include_input: bool = False,
    jobs: int = 2,
    driver: Optional[CachedDriver] = None,
    chunksize: Optional[int] = None,
    dedup: bool = True,
    pool: Optional[ProcessPoolExecutor] = None,
    pool_factory: Optional[Callable[[], ProcessPoolExecutor]] = None,
    pool_replaced: Optional[Callable[[Optional[ProcessPoolExecutor]], None]] = None,
    checkpoint: Optional["CheckpointLog"] = None,
) -> DependenceGraph:
    """Test all candidate pairs of a statement list over a process pool.

    ``driver`` supplies (and outlives) the verdict cache, so repeated
    calls — e.g. one per routine of a corpus — keep accumulating shared
    entries; omitted, a private one is created for the call.  ``pool`` is
    an executor from :func:`make_pool` to reuse across calls;
    ``pool_factory`` lazily creates (and lets the caller retain) one only
    if this build actually dispatches; with neither, a fresh pool is spun
    up and torn down.  ``chunksize`` fixes the pairs-per-task count; the
    default (None) sizes chunks adaptively by predicted cost.  ``dedup``
    mirrors the engine's cache switch: when False every pair is shipped to
    the workers and rehydrated individually, measuring pure fan-out.

    Dispatch runs under a :class:`~repro.engine.supervisor.PoolSupervisor`
    governed by the driver's :class:`~repro.engine.faults.FaultPolicy`:
    worker crashes and chunk timeouts respawn the pool (bounded) and
    re-run suspect chunks serially in the parent, so the build always
    completes.  Because recovery can replace the pool, callers that reuse
    one across builds should pass ``pool_replaced`` — it is invoked with
    the surviving executor (possibly None) whenever it differs from the
    one passed in.

    When the driver carries a persistent store, each chunk's canonical
    entries are seeded (and written through) *as the chunk completes*,
    and ``checkpoint`` (a :class:`~repro.engine.checkpoint.CheckpointLog`)
    records a durable completed-chunk marker — so a run killed mid-build
    resumes from every finished chunk, not from the last routine
    boundary.
    """
    if driver is None:
        driver = CachedDriver(symbols)
    policy = driver.policy
    profile = driver.stats.profile
    start = perf_counter() if profile is not None else 0.0
    sites = collect_access_sites(nodes)
    pairs = list(iter_candidate_pairs(sites, include_input))
    prepared = []
    for first, second in pairs:
        context, mapping, key = driver.prepare(first, second, symbols)
        prepared.append((first, second, context, mapping, key))
    if profile is not None:
        profile.add_phase("prepare", perf_counter() - start, len(prepared))

    edges: List[DependenceEdge] = []
    tested = 0
    independent = 0

    if jobs <= 1 or not prepared:
        return _serve_serial(sites, prepared, driver, recorder, dedup)

    if dedup:
        # One representative (site-index pair) per canonical key not
        # already resident in the cache.
        missing: Dict[CanonicalKey, Tuple[Tuple[int, int], PairContext]] = {}
        for first, second, context, _, key in prepared:
            if key not in missing and not driver.contains(key):
                missing[key] = ((first.position, second.position), context)
        work = [(key, spec) for key, (spec, _) in missing.items()]
        work_contexts = [context for _, context in missing.values()]
    else:
        work = [
            (key, (first.position, second.position))
            for first, second, _, _, key in prepared
        ]
        work_contexts = [context for _, _, context, _, _ in prepared]

    if not work:
        # Every key already resident: nothing to ship.
        return _serve_serial(sites, prepared, driver, recorder, dedup)

    # Adaptive serial fallback: when the whole build (or the part of it
    # not already cached) is predicted to cost less than pool IPC, run it
    # in-process.  Tiny routines therefore never pay pool overhead even
    # under ``--jobs``.  An explicit ``chunksize`` opts out of adaptivity
    # (manual control: always dispatch, fixed-size chunks).
    costs: List[int] = []
    if chunksize is None:
        if len(pairs) < AUTO_SERIAL_PAIR_THRESHOLD:
            driver.stats.auto_serial += 1
            return _serve_serial(sites, prepared, driver, recorder, dedup)
        costs = [estimate_pair_cost(context) for context in work_contexts]
        if sum(costs) < MIN_PARALLEL_COST:
            driver.stats.auto_serial += 1
            return _serve_serial(sites, prepared, driver, recorder, dedup)

    entries_by_slot: List[Optional[CacheEntry]] = [None] * len(work)
    driver.stats.dispatched += len(work)
    specs = [spec for _, spec in work]
    if chunksize is not None:
        spec_chunks = _chunked(specs, chunksize)
    else:
        spec_chunks = _cost_chunks(specs, costs, jobs)
    tasks: List[ChunkTask] = [
        (seq, nodes, symbols, chunk) for seq, chunk in enumerate(spec_chunks)
    ]
    own_pool = False
    executor = pool
    if executor is None and pool_factory is not None:
        executor = pool_factory()
    backend_name = driver.backend.name
    if executor is None:
        executor = make_pool(
            jobs, driver.delta_options, policy.pair_budget, backend_name
        )
        own_pool = True

    def _serial_runner(task: ChunkTask) -> List[CacheEntry]:
        entries = run_chunk(
            task, driver.delta_options, policy.pair_budget, driver.backend
        )
        # The parent-side recovery path runs on the driver's own backend
        # instance: harvest its batch-coverage counters like the cache's
        # miss path does.  (Worker-process counters stay in the workers —
        # chunk results carry only verdicts.)
        coverage = driver.backend.take_coverage()
        if coverage:
            driver.stats.add_coverage(coverage)
        return entries

    supervisor = PoolSupervisor(
        executor,
        spawn=lambda: make_pool(
            jobs, driver.delta_options, policy.pair_budget, backend_name
        ),
        policy=policy,
        stats=driver.stats,
    )

    on_result = None
    if dedup and (driver.persist is not None or checkpoint is not None):
        # Checkpointing seam: adopt (and persist) each chunk's entries the
        # moment it completes, then make the progress durable with a chunk
        # marker.  Entries precede their marker in the append order, so a
        # marker never claims verdicts a crash could have lost.
        key_chunks: List[List[CanonicalKey]] = []
        base = 0
        keys = [key for key, _ in work]
        for chunk in spec_chunks:
            key_chunks.append(keys[base : base + len(chunk)])
            base += len(chunk)

        def on_result(seq: int, entries: List[CacheEntry]) -> None:
            for key, entry in zip(key_chunks[seq], entries):
                if not entry.assumed:
                    driver.seed(key, entry)
            if checkpoint is not None and driver.persist is not None:
                try:
                    checkpoint.mark_chunk(seq)
                except Exception as exc:
                    driver._degrade_store(exc)
                else:
                    # Shard-scoped failures during the flush quarantine
                    # the shard instead of raising; surface them now.
                    driver.drain_store_events()

    start = perf_counter() if profile is not None else 0.0
    try:
        chunk_results = supervisor.run(
            tasks, _test_chunk, _serial_runner, on_result=on_result
        )
    finally:
        if own_pool:
            supervisor.shutdown()
        elif supervisor.executor is not executor and pool_replaced is not None:
            # Recovery replaced (or consumed) the caller's pool; hand the
            # survivor back so the caller does not reuse a dead executor.
            pool_replaced(supervisor.executor)
    slot = 0
    for entries in chunk_results:
        for entry in entries:
            entries_by_slot[slot] = entry
            slot += 1
    if profile is not None:
        profile.add_phase("dispatch", perf_counter() - start, len(tasks))

    # Per-pair failures inside workers surface as assumed entries (the
    # worker cannot touch the parent's stats); account for them here.  In
    # dedup mode assumed entries are simply not seeded — the resolve pass
    # below re-tests those pairs in the parent (recovering entirely when
    # the fault was worker-scoped) and reports any repeat failure itself.
    for (_, spec), entry in zip(work, entries_by_slot):
        assert entry is not None
        if not entry.assumed or dedup:
            continue
        src_index, sink_index = spec
        where = f"{sites[src_index].ref} -> {sites[sink_index].ref}"
        reason = entry.failure or "unknown failure"
        if policy.strict:
            raise PairTestError(where, reason)
        kind = "budget" if reason.startswith("BudgetExceededError") else "pair"
        driver.stats.record_failure(FailureRecord(kind, where, reason))

    if dedup:
        if on_result is None:
            # Not checkpointing: entries were not seeded as chunks landed.
            for (key, _), entry in zip(work, entries_by_slot):
                if not entry.assumed:
                    driver.seed(key, entry)
        if driver.wants_batch:
            # Mostly hits by now; the stragglers (assumed entries that
            # were not seeded) re-test as one batch instead of one by one.
            results = driver.resolve_batch(
                [(c, m, k) for _, _, c, m, k in prepared], recorder
            )
            for (first, second, *_), result in zip(prepared, results):
                tested += 1
                if result.independent:
                    independent += 1
                else:
                    edges.extend(edges_from_result(first, second, result))
        else:
            for first, second, context, mapping, key in prepared:
                tested += 1
                result = driver.resolve(context, mapping, key, recorder)
                if result.independent:
                    independent += 1
                else:
                    edges.extend(edges_from_result(first, second, result))
    else:
        for (first, second, context, mapping, _), entry in zip(
            prepared, entries_by_slot
        ):
            tested += 1
            assert entry is not None
            if entry.assumed:
                driver.stats.assumed += 1
            if recorder is not None:
                recorder.merge(entry.recorder)
            result = rehydrate_result(entry, context, mapping)
            if result.independent:
                independent += 1
            else:
                edges.extend(edges_from_result(first, second, result))

    return DependenceGraph(sites, edges, independent, tested, recorder)


def _serve_serial(
    sites,
    prepared,
    driver: CachedDriver,
    recorder: Optional[TestRecorder],
    dedup: bool,
) -> DependenceGraph:
    """Resolve every prepared pair in-process (degenerate / fallback pool).

    With ``dedup`` the shared cache serves (and fills) as usual; without
    it the plain driver runs per pair — guarded by the same per-pair
    isolation the cache's miss path applies — preserving the uncached
    builder's exact behavior on fault-free pairs.
    """
    policy = driver.policy
    edges: List[DependenceEdge] = []
    tested = 0
    independent = 0
    if dedup and driver.wants_batch:
        results = driver.resolve_batch(
            [(c, m, k) for _, _, c, m, k in prepared], recorder
        )
        for (first, second, *_), result in zip(prepared, results):
            tested += 1
            if result.independent:
                independent += 1
            else:
                edges.extend(edges_from_result(first, second, result))
        return DependenceGraph(sites, edges, independent, tested, recorder)
    for first, second, context, mapping, key in prepared:
        tested += 1
        if dedup:
            result = driver.resolve(context, mapping, key, recorder)
        else:
            local = TestRecorder()
            budget = (
                StepBudget(policy.pair_budget) if policy.pair_budget else None
            )
            try:
                faultinject.on_pair(first.ref.array)
                result = test_dependence(
                    first,
                    second,
                    symbols=context.symbols,
                    recorder=local,
                    delta_options=driver.delta_options,
                    context=context,
                    budget=budget,
                )
            except Exception as exc:
                where = f"{first.ref} -> {second.ref}"
                if policy.strict:
                    raise PairTestError(where, describe_error(exc)) from exc
                result = assumed_dependence_result(context, describe_error(exc))
                local = TestRecorder()  # discard partial counters: parity
                driver.stats.record_failure(
                    FailureRecord(failure_kind(exc), where, describe_error(exc))
                )
                driver.stats.assumed += 1
            if recorder is not None:
                recorder.merge(local)
        if result.independent:
            independent += 1
        else:
            edges.extend(edges_from_result(first, second, result))
    return DependenceGraph(sites, edges, independent, tested, recorder)
