"""Parallel dependence-graph construction over a process pool.

The candidate-pair population of a statement list is embarrassingly
parallel: every pair's test is independent.  This builder

1. prepares every pair in the parent (context + canonical key — cheap),
2. deduplicates by canonical key and ships only one representative per
   *missing* key to the pool, in chunks of ``(site_index, site_index)``
   tuples bundled with the statement list they index into,
3. adopts the returned canonical :class:`~repro.engine.canonical.CacheEntry`
   objects into the shared :class:`~repro.engine.cache.CachedDriver`, and
4. resolves every pair through the now-hot cache, building edges in the
   parent so they reference the parent's own loop and site objects.

Because workers return only canonical entries (never contexts or loops),
nothing in the assembled graph depends on worker-process object identity;
per-pair recorder deltas are merged with
:meth:`~repro.instrument.TestRecorder.merge`, keeping Table 3 counters
byte-identical to a serial run.

A caller-supplied pool (see :func:`make_pool`) is reused across builds —
:class:`~repro.engine.engine.DependenceEngine` keeps one for its
lifetime, so a corpus-wide study pays the pool startup cost once, not
once per routine.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.classify.pairs import PairContext
from repro.core.driver import test_dependence
from repro.delta.delta import DEFAULT_OPTIONS, DeltaOptions
from repro.engine.cache import CachedDriver
from repro.engine.canonical import (
    CacheEntry,
    CanonicalKey,
    canonicalize_result,
    rehydrate_result,
    rename_map,
)
from repro.graph.depgraph import (
    DependenceEdge,
    DependenceGraph,
    edges_from_result,
    iter_candidate_pairs,
)
from repro.instrument import TestRecorder
from repro.ir.context import SymbolEnv
from repro.ir.loop import Node, collect_access_sites

#: Pairs per worker task; large enough to amortize dispatch overhead,
#: small enough to load-balance uneven test costs.
DEFAULT_CHUNKSIZE = 32

# Per-worker Delta options, installed once by the pool initializer.
_WORKER: dict = {"delta_options": DEFAULT_OPTIONS}


def _init_worker(delta_options: DeltaOptions) -> None:
    _WORKER["delta_options"] = delta_options


def make_pool(
    jobs: int, delta_options: DeltaOptions = DEFAULT_OPTIONS
) -> ProcessPoolExecutor:
    """A worker pool configured for :func:`build_dependence_graph_parallel`."""
    return ProcessPoolExecutor(
        max_workers=jobs, initializer=_init_worker, initargs=(delta_options,)
    )


def _test_chunk(
    task: Tuple[Sequence[Node], Optional[SymbolEnv], List[Tuple[int, int]]]
) -> List[CacheEntry]:
    """Test a chunk of pairs (by site index); return canonical entries.

    The statement list rides along with each chunk, so one long-lived pool
    serves builds over any number of different routines.  Sites are
    re-collected locally; ``collect_access_sites`` is deterministic, so
    site indices agree with the parent's.
    """
    nodes, symbols, chunk = task
    sites = collect_access_sites(nodes)
    delta_options = _WORKER["delta_options"]
    entries: List[CacheEntry] = []
    for src_index, sink_index in chunk:
        src, sink = sites[src_index], sites[sink_index]
        context = PairContext(src, sink, symbols)
        mapping = rename_map(context)
        local = TestRecorder()
        result = test_dependence(
            src,
            sink,
            symbols=symbols,
            recorder=local,
            delta_options=delta_options,
            context=context,
        )
        entries.append(canonicalize_result(result, mapping, local))
    return entries


def _chunked(items: List, size: int) -> List[List]:
    return [items[start : start + size] for start in range(0, len(items), size)]


def build_dependence_graph_parallel(
    nodes: Sequence[Node],
    symbols: Optional[SymbolEnv] = None,
    recorder: Optional[TestRecorder] = None,
    include_input: bool = False,
    jobs: int = 2,
    driver: Optional[CachedDriver] = None,
    chunksize: int = DEFAULT_CHUNKSIZE,
    dedup: bool = True,
    pool: Optional[ProcessPoolExecutor] = None,
) -> DependenceGraph:
    """Test all candidate pairs of a statement list over a process pool.

    ``driver`` supplies (and outlives) the verdict cache, so repeated
    calls — e.g. one per routine of a corpus — keep accumulating shared
    entries; omitted, a private one is created for the call.  ``pool`` is
    an executor from :func:`make_pool` to reuse across calls; omitted, a
    fresh one is spun up and torn down.  ``dedup`` mirrors the engine's
    cache switch: when False every pair is shipped to the workers and
    rehydrated individually, measuring pure fan-out.
    """
    if driver is None:
        driver = CachedDriver(symbols)
    sites = collect_access_sites(nodes)
    pairs = list(iter_candidate_pairs(sites, include_input))
    prepared = []
    for first, second in pairs:
        context, mapping, key = driver.prepare(first, second, symbols)
        prepared.append((first, second, context, mapping, key))

    edges: List[DependenceEdge] = []
    tested = 0
    independent = 0

    if jobs <= 1 or not prepared:
        # Degenerate pool: serve everything through the cache in-process.
        for first, second, context, mapping, key in prepared:
            tested += 1
            result = driver.resolve(context, mapping, key, recorder)
            if result.independent:
                independent += 1
            else:
                edges.extend(edges_from_result(first, second, result))
        return DependenceGraph(sites, edges, independent, tested, recorder)

    if dedup:
        # One representative (site-index pair) per canonical key not
        # already resident in the cache.
        missing: Dict[CanonicalKey, Tuple[int, int]] = {}
        for first, second, _, _, key in prepared:
            if key not in missing and not driver.contains(key):
                missing[key] = (first.position, second.position)
        work = list(missing.items())
    else:
        work = [
            (key, (first.position, second.position))
            for first, second, _, _, key in prepared
        ]

    entries_by_slot: List[Optional[CacheEntry]] = [None] * len(work)
    if work:
        driver.stats.dispatched += len(work)
        tasks = [
            (nodes, symbols, chunk)
            for chunk in _chunked([spec for _, spec in work], chunksize)
        ]
        own_pool = pool is None
        executor = pool if pool is not None else make_pool(
            jobs, driver.delta_options
        )
        try:
            slot = 0
            for entries in executor.map(_test_chunk, tasks):
                for entry in entries:
                    entries_by_slot[slot] = entry
                    slot += 1
        finally:
            if own_pool:
                executor.shutdown()
        if dedup:
            for (key, _), entry in zip(work, entries_by_slot):
                assert entry is not None
                driver.seed(key, entry)

    if dedup:
        for first, second, context, mapping, key in prepared:
            tested += 1
            result = driver.resolve(context, mapping, key, recorder)
            if result.independent:
                independent += 1
            else:
                edges.extend(edges_from_result(first, second, result))
    else:
        for (first, second, context, mapping, _), entry in zip(
            prepared, entries_by_slot
        ):
            tested += 1
            assert entry is not None
            if recorder is not None:
                recorder.merge(entry.recorder)
            result = rehydrate_result(entry, context, mapping)
            if result.independent:
                independent += 1
            else:
                edges.extend(edges_from_result(first, second, result))

    return DependenceGraph(sites, edges, independent, tested, recorder)
