"""The :class:`DependenceEngine` facade.

One object owns the policy knobs — caching on/off, worker count, cache
capacity, Delta options, profiling — and picks the right builder for each
``build_graph`` call:

* ``jobs <= 1``, cache off → the plain serial builder (baseline);
* ``jobs <= 1``, cache on → serial builder with the
  :class:`~repro.engine.cache.CachedDriver` plugged in as its tester;
* ``jobs > 1`` → the process-pool builder, sharing this engine's driver
  so the cache stays warm across calls.  Dispatch is adaptive: small or
  cheap builds stay in-process (see
  :mod:`~repro.engine.parallel`), and the pool itself is created lazily
  on the first build that actually ships work.

The engine is long-lived by design: the study harness builds one graph
per kernel of a corpus through a single engine, so canonical entries
accumulate across kernels and the corpus-wide hit rate climbs.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from repro.delta.delta import DEFAULT_OPTIONS, DeltaOptions
from repro.engine.cache import DEFAULT_CAPACITY, CachedDriver
from repro.engine.checkpoint import CheckpointLog
from repro.engine.faults import DEFAULT_POLICY, Deadline, FaultPolicy
from repro.engine.store import VerdictStore
from repro.engine.parallel import build_dependence_graph_parallel, make_pool
from repro.engine.profile import PhaseProfile
from repro.engine.stats import EngineStats
from repro.graph.depgraph import DependenceGraph, build_dependence_graph
from repro.instrument import TestRecorder
from repro.ir.context import SymbolEnv
from repro.ir.loop import Node


class DependenceEngine:
    """Configurable front end over the serial, cached, and parallel builders."""

    def __init__(
        self,
        symbols: Optional[SymbolEnv] = None,
        jobs: int = 1,
        cache_size: int = DEFAULT_CAPACITY,
        use_cache: bool = True,
        delta_options: DeltaOptions = DEFAULT_OPTIONS,
        chunksize: Optional[int] = None,
        plan_capacity: Optional[int] = None,
        profile: bool = False,
        policy: FaultPolicy = DEFAULT_POLICY,
        store: Optional[VerdictStore] = None,
        checkpoint: Optional[CheckpointLog] = None,
        backend: Optional[str] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.symbols = symbols
        self.jobs = jobs
        self.use_cache = use_cache
        self.chunksize = chunksize
        #: Optional resume protocol (chunk/routine markers over ``store``).
        #: The engine *uses* the store and log but does not own them — the
        #: caller that opened the store closes it (``close`` only flushes).
        self.checkpoint = checkpoint
        stats = EngineStats(profile=PhaseProfile()) if profile else None
        self.driver = CachedDriver(
            symbols=symbols,
            capacity=cache_size,
            delta_options=delta_options,
            stats=stats,
            plan_capacity=plan_capacity,
            policy=policy,
            store=store if use_cache else None,
            backend=backend,
        )
        self._pool = None
        #: Serializes multi-threaded access to the driver (see
        #: :meth:`serve_build`).  Re-entrant so a locked caller may call
        #: :meth:`build_graph` directly.
        self.serve_lock = threading.RLock()

    @property
    def stats(self) -> EngineStats:
        """The engine's cache/fan-out counters (live, not a snapshot)."""
        return self.driver.stats

    @property
    def policy(self) -> FaultPolicy:
        """The fault policy governing degradation and pool supervision."""
        return self.driver.policy

    @property
    def profile(self) -> Optional[PhaseProfile]:
        """Per-phase wall timings, when built with ``profile=True``."""
        return self.driver.stats.profile

    @property
    def store(self) -> Optional[VerdictStore]:
        """The persistent verdict store, when one is attached (live)."""
        return self.driver.persist

    def close(self) -> None:
        """Shut down the worker pool and flush the store (not closing it).

        The final flush can itself fail or quarantine shards; the driver
        surfaces those as ``"store"`` failure records (see
        :meth:`CachedDriver.close`) instead of silently dropping them.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self.driver.close()

    def __enter__(self) -> "DependenceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _pool_factory(self):
        """Create (and retain for reuse) the worker pool on first dispatch."""
        if self._pool is None:
            self._pool = make_pool(
                self.jobs,
                self.driver.delta_options,
                self.policy.pair_budget,
                self.driver.backend.name,
            )
        return self._pool

    def _pool_replaced(self, executor) -> None:
        """Adopt the pool surviving a supervised recovery (may be None)."""
        self._pool = executor

    def build_graph(
        self,
        nodes: Sequence[Node],
        recorder: Optional[TestRecorder] = None,
        include_input: bool = False,
        symbols: Optional[SymbolEnv] = None,
    ) -> DependenceGraph:
        """Build the dependence graph of a statement list.

        ``symbols`` overrides the engine-level environment for this call
        (the cache stays shared — symbol ranges are part of every key, so
        mixing environments cannot cross-contaminate entries).
        """
        env = symbols if symbols is not None else self.symbols
        if self.checkpoint is not None:
            self.checkpoint.begin_build()
        if self.jobs > 1:
            return build_dependence_graph_parallel(
                nodes,
                symbols=env,
                recorder=recorder,
                include_input=include_input,
                jobs=self.jobs,
                driver=self.driver,
                chunksize=self.chunksize,
                dedup=self.use_cache,
                pool=self._pool,
                pool_factory=self._pool_factory,
                pool_replaced=self._pool_replaced,
                checkpoint=self.checkpoint,
            )
        if not self.use_cache:
            return build_dependence_graph(
                nodes,
                symbols=env,
                recorder=recorder,
                include_input=include_input,
                profile=self.profile,
            )
        return build_dependence_graph(
            nodes,
            symbols=env,
            recorder=recorder,
            include_input=include_input,
            tester=self.driver,
            profile=self.profile,
        )

    def serve_build(
        self,
        nodes: Sequence[Node],
        recorder: Optional[TestRecorder] = None,
        include_input: bool = False,
        symbols: Optional[SymbolEnv] = None,
        deadline: Optional[Deadline] = None,
        stats: Optional[EngineStats] = None,
    ) -> DependenceGraph:
        """Thread-safe :meth:`build_graph` — the service's resolve seam.

        Concurrent callers (the analysis service runs one request per
        executor thread against a single warm engine) serialize on
        :attr:`serve_lock` at build granularity, so a tight-deadline
        request interleaves with a long one between routines rather than
        queueing behind the whole request.  Because the second caller for
        a canonical key runs strictly after the first, a key raced by two
        requests is tested exactly once — one miss, one hit — which is
        what makes request-level coalescing an optimization rather than a
        correctness requirement.

        ``deadline`` is installed on the driver for the duration of this
        build: every per-pair budget minted inside checks it, and each
        pair starting after expiry degrades immediately to an assumed-
        dependence verdict (kind ``"deadline"``).  Deadlines bound the
        in-process resolve paths; they do not cross into pool workers.

        ``stats`` (when given) receives this build's counter deltas —
        failures, assumed counts, hit/miss provenance — attributed to
        just this call; the engine's own cumulative stats absorb the
        same delta on the way out, so global accounting is unchanged.
        The driver records into a private per-build object that is
        merged into *both* targets afterwards, so a caller may pass one
        request-level ``stats`` across many builds without earlier
        builds' counters (or their ``FailureRecord``\\s) being folded
        into the cumulative stats more than once.
        """
        with self.serve_lock:
            driver = self.driver
            saved_stats = driver.stats
            delta: Optional[EngineStats] = None
            if stats is not None:
                delta = EngineStats(
                    profile=PhaseProfile()
                    if saved_stats.profile is not None
                    else None
                )
                driver.stats = delta
            driver.deadline = deadline
            try:
                return self.build_graph(
                    nodes,
                    recorder=recorder,
                    include_input=include_input,
                    symbols=symbols,
                )
            finally:
                driver.deadline = None
                if delta is not None:
                    driver.stats = saved_stats
                    saved_stats.merge(delta)
                    stats.merge(delta)
