"""Fault taxonomy, per-pair budgets, and degradation policy.

Dependence testing is only usable at corpus scale if it is *conservative
under failure*: the suite may answer "no dependence" only when a test
proves it, so a crash, hang, or resource blow-up anywhere in the engine
must degrade to "assume dependence" — never to a lost routine, a missing
pair, or a dead worker pool.  This module is the shared vocabulary of
that guarantee:

* the exception taxonomy (:class:`PairTestError`,
  :class:`WorkerCrashError`, :class:`ChunkTimeoutError`,
  :class:`BudgetExceededError`) raised when strict mode forbids
  degradation;
* :class:`FailureRecord` — the structured report of one absorbed failure,
  accumulated on :class:`~repro.engine.stats.EngineStats` and surfaced by
  ``repro-deps analyze``/``study``;
* :class:`StepBudget` — a step counter threaded through the driver and
  the Delta test so one pathological pair cannot monopolize a worker;
* :class:`FaultPolicy` — the knobs: strict vs degrade, per-pair budget,
  per-chunk timeout, pool-restart bounds and backoff.

The module is a deliberate leaf: it imports nothing from the rest of the
package, so the core driver and the Delta test can raise and catch these
types without import cycles.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

#: Default per-pair step budget.  One "step" is a partition dispatch or
#: one Delta reduction-pass unit; a typical pair spends fewer than ten,
#: the nastiest coupled groups a few hundred, so the default only ever
#: trips on genuinely pathological inputs.
DEFAULT_PAIR_BUDGET = 100_000

#: Default per-chunk wall-clock timeout (seconds) for pool dispatch.
#: Chunks normally finish in milliseconds; the generous default exists to
#: catch hung workers, not slow ones.
DEFAULT_CHUNK_TIMEOUT = 300.0

#: Environment override for the per-pair step budget (integer; ``0``
#: disables budgeting entirely).
BUDGET_ENV_VAR = "REPRO_PAIR_BUDGET"


class EngineFaultError(Exception):
    """Base class of every fault the engine can convert to degradation."""


class PairTestError(EngineFaultError):
    """A dependence test on one reference pair failed (strict mode only).

    In the default degrade mode the same failure becomes a conservative
    assumed-dependence verdict plus a :class:`FailureRecord`.
    """

    def __init__(self, where: str, reason: str):
        super().__init__(f"dependence test failed for {where}: {reason}")
        self.where = where
        self.reason = reason


class WorkerCrashError(EngineFaultError):
    """A pool worker died (e.g. ``BrokenProcessPool``) beyond recovery."""


class ChunkTimeoutError(EngineFaultError):
    """A dispatched chunk exceeded the per-chunk wall-clock timeout."""


class BudgetExceededError(EngineFaultError):
    """A pair exhausted its step budget mid-test."""

    def __init__(self, limit: int):
        super().__init__(f"step budget of {limit} exhausted")
        self.limit = limit


class DeadlineExceededError(EngineFaultError):
    """A request-scoped deadline expired mid-test.

    Raised by a :class:`StepBudget` carrying a :class:`Deadline`: each
    pair that spends a step after expiry degrades immediately to a
    conservative assumed-dependence verdict, so a timed-out request
    finishes fast with partial (assumed) results instead of hanging —
    and never with a spurious independence.
    """

    def __init__(self, seconds: float):
        super().__init__(f"deadline of {seconds:.3f}s exceeded")
        self.seconds = seconds


class Deadline:
    """A wall-clock expiry shared by every pair of one request.

    Unlike :class:`StepBudget` (per pair, work-based, deterministic),
    a deadline is request-scoped and time-based: the analysis service
    attaches one to the driver for the duration of a request, and every
    budget minted while it is installed checks it on each spend.  The
    clock is injectable for tests.
    """

    __slots__ = ("seconds", "expires_at", "_clock")

    def __init__(
        self, seconds: float, clock: Callable[[], float] = time.monotonic
    ):
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self.expires_at = clock() + seconds

    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(self.expires_at - self._clock(), 0.0)

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` when expired."""
        if self.expired():
            raise DeadlineExceededError(self.seconds)

    def __repr__(self) -> str:
        return f"Deadline({self.seconds}s, {self.remaining():.3f}s left)"


class StepBudget:
    """A per-pair step counter that trips :class:`BudgetExceededError`.

    The driver charges one unit per partition dispatch and the Delta test
    charges per reduction pass (scaled by pending subscripts), so runaway
    multipass reductions and degenerate symbolic systems are bounded by
    *work done*, not wall-clock — deterministic across machines.  The
    object is duck-typed on purpose: the core driver never imports this
    module, it just calls ``budget.spend(n)`` when handed one.

    An optional :class:`Deadline` piggybacks on the same spend hook: a
    request-scoped expiry is checked at every charge, so one slow pair
    cannot carry a request past its deadline by more than a step.
    """

    __slots__ = ("limit", "used", "deadline")

    def __init__(self, limit: int, deadline: Optional[Deadline] = None):
        if limit < 1:
            raise ValueError(f"budget limit must be positive, got {limit}")
        self.limit = limit
        self.used = 0
        self.deadline = deadline

    def spend(self, steps: int = 1) -> None:
        """Charge ``steps`` units; raises when the budget is exhausted."""
        self.used += steps
        if self.used > self.limit:
            raise BudgetExceededError(self.limit)
        if self.deadline is not None:
            self.deadline.check()

    @property
    def remaining(self) -> int:
        return max(self.limit - self.used, 0)

    def __repr__(self) -> str:
        return f"StepBudget(used={self.used}, limit={self.limit})"


@dataclass(frozen=True)
class FailureRecord:
    """One absorbed failure, in report-ready form.

    ``kind`` is the failure class — ``"pair"`` (an in-test exception),
    ``"budget"`` (step budget exhausted), ``"deadline"`` (a request's
    wall-clock deadline expired mid-test), ``"worker-crash"``,
    ``"chunk-timeout"``, ``"routine"`` (a whole routine skipped), or
    ``"store"`` (a persistent-store write failed and the run degraded
    to memory-only caching).
    ``where`` locates it (pair description or suite/program/routine
    path); ``error`` is the stringified cause; ``attempts`` counts how
    many tries the supervisor spent before giving the work up or moving
    it in-process.
    """

    kind: str
    where: str
    error: str
    attempts: int = 1

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "where": self.where,
            "error": self.error,
            "attempts": self.attempts,
        }

    def __str__(self) -> str:
        suffix = f" (after {self.attempts} attempts)" if self.attempts > 1 else ""
        return f"[{self.kind}] {self.where}: {self.error}{suffix}"


def failure_kind(exc: BaseException) -> str:
    """The :class:`FailureRecord` kind for an exception instance."""
    if isinstance(exc, DeadlineExceededError):
        return "deadline"
    if isinstance(exc, BudgetExceededError):
        return "budget"
    if isinstance(exc, ChunkTimeoutError):
        return "chunk-timeout"
    if isinstance(exc, WorkerCrashError):
        return "worker-crash"
    return "pair"


def describe_error(exc: BaseException) -> str:
    """Compact ``Type: message`` rendering for failure records."""
    text = str(exc)
    name = type(exc).__name__
    return f"{name}: {text}" if text else name


def _env_budget() -> Optional[int]:
    raw = os.environ.get(BUDGET_ENV_VAR)
    if raw is None:
        return DEFAULT_PAIR_BUDGET
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_PAIR_BUDGET
    return value if value > 0 else None


@dataclass
class FaultPolicy:
    """How the engine reacts to faults.

    ``strict=False`` (the default) degrades: per-pair failures become
    conservative assumed-dependence edges, crashed or hung chunks are
    re-run serially in the parent, and unparsable routines are skipped
    with a report.  ``strict=True`` fails fast instead, raising the
    taxonomy above (the CLI maps it to a distinct exit code).

    ``pair_budget`` is the per-pair step allowance (None disables
    budgeting); ``chunk_timeout`` the per-chunk dispatch timeout in
    seconds (None waits forever); ``max_pool_restarts`` bounds how often
    a broken pool is respawned per build before everything remaining
    runs serially; ``restart_backoff`` is the base sleep between
    respawns (linear: attempt × backoff).
    """

    strict: bool = False
    pair_budget: Optional[int] = field(default_factory=_env_budget)
    chunk_timeout: Optional[float] = DEFAULT_CHUNK_TIMEOUT
    max_pool_restarts: int = 2
    restart_backoff: float = 0.1

    @classmethod
    def from_env(cls, strict: bool = False) -> "FaultPolicy":
        """A policy with environment overrides applied (see module env vars)."""
        return cls(strict=strict)


#: Shared default policy (degrade mode, env-tuned budget).
DEFAULT_POLICY = FaultPolicy()
