"""Worker-pool supervision: crash and hang recovery for chunk dispatch.

``concurrent.futures`` offers no recovery story: one worker dying of a
signal (OOM kill, segfault in a C extension, an injected ``os._exit``)
breaks the whole pool and every in-flight future, and a hung worker
blocks ``map`` forever.  :class:`PoolSupervisor` wraps chunk dispatch so
a corpus build survives both:

* **Crashes** — a ``BrokenProcessPool`` marks the earliest unfinished
  chunk as the suspect, harvests every chunk that already completed,
  respawns the pool (bounded retries with linear backoff), and resubmits
  the innocent remainder.  The suspect chunk is *not* resubmitted — a
  deterministically crashing input would break every fresh pool — it is
  re-run serially in the parent instead, where the per-pair guard in the
  chunk runner degrades any still-failing pair to a conservative
  assumed-dependence entry.
* **Hangs** — each chunk's result is awaited under the policy's
  ``chunk_timeout``.  On expiry the worker processes are terminated
  (a hung worker never returns the pool to a usable state), the pool is
  respawned, and the suspect chunk moves in-process as above.
* **Exhaustion** — past ``max_pool_restarts`` respawns, everything still
  pending runs serially in the parent.  The build always completes; only
  its parallelism degrades.

Every absorbed fault lands in ``EngineStats.failures`` as a structured
:class:`~repro.engine.faults.FailureRecord`; under a strict policy the
first fault raises :class:`~repro.engine.faults.WorkerCrashError` or
:class:`~repro.engine.faults.ChunkTimeoutError` instead.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from typing import Callable, List, Optional, Sequence

from repro.engine.faults import (
    ChunkTimeoutError,
    FailureRecord,
    FaultPolicy,
    WorkerCrashError,
    describe_error,
)
from repro.engine.stats import EngineStats


class PoolSupervisor:
    """Run chunk tasks over a process pool, surviving worker faults.

    ``executor`` is the (possibly caller-owned) pool to start with;
    ``spawn`` creates a replacement after a fault.  The caller reads
    ``supervisor.executor`` afterwards to learn which pool survived (it
    may be a respawn, or None when dispatch ended serially) and remains
    responsible for shutting it down.
    """

    def __init__(
        self,
        executor: ProcessPoolExecutor,
        spawn: Callable[[], ProcessPoolExecutor],
        policy: FaultPolicy,
        stats: EngineStats,
    ):
        self.executor: Optional[ProcessPoolExecutor] = executor
        self._spawn = spawn
        self.policy = policy
        self.stats = stats
        self._restarts = 0

    # -- pool lifecycle --------------------------------------------------

    def _kill_pool(self) -> None:
        """Tear the current pool down hard (terminates hung workers)."""
        executor = self.executor
        self.executor = None
        if executor is None:
            return
        processes = getattr(executor, "_processes", None)
        if processes:
            # A worker stuck in a syscall or busy loop never honors a
            # cooperative shutdown; SIGTERM is the only reliable way to
            # reclaim the slot (and to keep interpreter exit from joining
            # a sleeper).  Private attribute by necessity — the executor
            # API has no kill.
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _respawned(self) -> Optional[ProcessPoolExecutor]:
        """A fresh pool after a fault, or None once retries are exhausted."""
        if self._restarts >= self.policy.max_pool_restarts:
            return None
        self._restarts += 1
        self.stats.pool_restarts += 1
        backoff = self.policy.restart_backoff * self._restarts
        if backoff > 0:
            time.sleep(backoff)
        self.executor = self._spawn()
        return self.executor

    def shutdown(self) -> None:
        """Shut down whatever pool the supervisor currently holds."""
        if self.executor is not None:
            self.executor.shutdown()
            self.executor = None

    # -- dispatch --------------------------------------------------------

    def run(
        self,
        tasks: Sequence,
        worker_fn: Callable,
        serial_runner: Callable,
        on_result: Optional[Callable[[int, object], None]] = None,
    ) -> List:
        """Execute every task; returns per-task results in task order.

        ``worker_fn`` is the picklable chunk function submitted to the
        pool; ``serial_runner`` computes the same result in the parent
        process (used for suspect chunks and after retry exhaustion).
        ``on_result`` is invoked exactly once per task, as its result
        lands (pool completion, post-crash harvest, or serial recovery)
        — the checkpointing seam: the parallel builder persists each
        chunk's entries there, so a killed run resumes from every chunk
        that finished, not just from fully completed builds.
        """
        results: List = [None] * len(tasks)
        pending = list(range(len(tasks)))

        def deliver(i: int, value) -> None:
            results[i] = value
            if on_result is not None:
                on_result(i, value)
        while pending and self.executor is not None:
            executor = self.executor
            # Submit is itself a crash surface: a worker dying on an
            # early chunk can flag the executor broken while later
            # chunks of the same build are still being handed over, at
            # which point submit raises instead of queueing.  Chunks
            # that never made it in (including the one that raised) are
            # simply carried to the next round's respawned pool.
            submitting, pending = pending, []
            futures = []
            for pos, i in enumerate(submitting):
                try:
                    futures.append((i, executor.submit(worker_fn, tasks[i])))
                except BrokenExecutor as exc:
                    self._kill_pool()
                    if self.policy.strict:
                        raise WorkerCrashError(
                            f"pool broke while submitting chunk {i}: "
                            f"{describe_error(exc)}"
                        ) from exc
                    self.stats.record_failure(
                        FailureRecord(
                            "worker-crash",
                            f"submit chunk {i}",
                            describe_error(exc),
                            attempts=self._restarts + 1,
                        )
                    )
                    pending.extend(submitting[pos:])
                    break
            suspects: List[int] = []
            # A submit-time break puts the harvest loop straight into
            # salvage mode: collect whatever finished, requeue the rest.
            broken = self.executor is None
            for i, future in futures:
                if broken:
                    # The pool just died; harvest chunks that finished
                    # before the fault and queue the rest for the respawn.
                    try:
                        if future.done():
                            deliver(i, future.result(timeout=0))
                        else:
                            pending.append(i)
                    except Exception:
                        pending.append(i)
                    continue
                try:
                    deliver(i, future.result(self.policy.chunk_timeout))
                except FutureTimeoutError:
                    self._kill_pool()
                    if self.policy.strict:
                        raise ChunkTimeoutError(
                            f"dispatch chunk {i} exceeded "
                            f"{self.policy.chunk_timeout}s"
                        )
                    self.stats.record_failure(
                        FailureRecord(
                            "chunk-timeout",
                            f"dispatch chunk {i}",
                            f"no result within {self.policy.chunk_timeout}s",
                            attempts=self._restarts + 1,
                        )
                    )
                    suspects.append(i)
                    broken = True
                except BrokenExecutor as exc:
                    self._kill_pool()
                    if self.policy.strict:
                        raise WorkerCrashError(
                            f"worker died while testing chunk {i}: "
                            f"{describe_error(exc)}"
                        ) from exc
                    self.stats.record_failure(
                        FailureRecord(
                            "worker-crash",
                            f"dispatch chunk {i}",
                            describe_error(exc),
                            attempts=self._restarts + 1,
                        )
                    )
                    suspects.append(i)
                    broken = True
                except Exception as exc:
                    # Chunk-level failure with a healthy pool (e.g. an
                    # unpicklable result).  The pair guard inside the
                    # chunk runner makes this unlikely; recover serially.
                    if self.policy.strict:
                        raise
                    self.stats.record_failure(
                        FailureRecord(
                            "pair", f"dispatch chunk {i}", describe_error(exc)
                        )
                    )
                    suspects.append(i)
            for i in suspects:
                deliver(i, serial_runner(tasks[i]))
                self.stats.serial_recoveries += 1
            if pending and self.executor is None:
                self._respawned()
        # Retries exhausted (or never available): finish in-process.
        for i in pending:
            deliver(i, serial_runner(tasks[i]))
            self.stats.serial_recoveries += 1
        return results
