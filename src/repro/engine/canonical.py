"""Canonical pair keys: structural identity for reference pairs.

Two reference pairs are *structurally identical* when every quantity the
partition-based driver can observe about them is equal after a consistent
renaming of their loop indices: per-position affine subscript forms, the
index ranges and trip spans of both loop stacks, which loops are common
(and at which nesting position), and the ranges of every symbolic name
mentioned.  The driver's verdict is a function of exactly that
information, so structurally identical pairs may share one test result.

The canonical renaming is positional: the common loop at position ``k``
becomes ``%c<k>``, a source-only loop at nesting level ``l`` becomes
``%s<l>``, a sink-only loop ``%t<l>``; primed (sink-instance) occurrences
keep their prime.  Symbolic constants keep their own (interned) names —
their known ranges are part of the key, so equal names with different
assumptions never collide.  The ``%`` prefix cannot occur in a Fortran
identifier, so canonical names never collide with real symbols.

A cached verdict is stored in the same canonical vocabulary
(:class:`CacheEntry`) and *rehydrated* against the concrete
:class:`~repro.classify.pairs.PairContext` of each pair it serves:
constraint maps, couplings, distances, and test outcomes are renamed back
to the pair's real index names, so downstream consumers (graph edges, the
peel/split advisors) see results indistinguishable from a fresh test run.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.classify.pairs import PairContext, prime
from repro.core.driver import DependenceResult
from repro.dirvec.direction import IndexConstraint
from repro.dirvec.vectors import Coupling, DependenceInfo, DirectionVector
from repro.instrument import TestRecorder
from repro.ir.context import LoopContext
from repro.single.outcome import TestOutcome
from repro.symbolic.linexpr import CachedRenamer, LinearExpr, cached_renamer

CanonicalKey = Tuple[Hashable, ...]

#: Marker distinguishing nonlinear subscript positions in a key.
_NONLINEAR = "nl"

_NAME_POOL = 16  # loop depths beyond this fall back to f-string interning


def _name_table(prefix: str) -> Tuple[str, ...]:
    return tuple(sys.intern(f"%{prefix}{n}") for n in range(_NAME_POOL))


_C_NAMES = _name_table("c")
_S_NAMES = _name_table("s")
_T_NAMES = _name_table("t")


def _canon_name(table: Tuple[str, ...], prefix: str, n: int) -> str:
    if n < _NAME_POOL:
        return table[n]
    return sys.intern(f"%{prefix}{n}")


#: Rename maps by (source, sink) loop-context identity: the map is a pure
#: function of the two stacks (their indices and longest common prefix),
#: and contexts are interned by ``cached_loop_context``, so all the pairs
#: over one stack combination share one map object.  Never mutated after
#: construction.  Bounded and cleared wholesale like the other caches.
_RENAME_MAPS: Dict[Tuple[LoopContext, LoopContext], Dict[str, str]] = {}
_RENAME_MAPS_LIMIT = 1 << 12

#: Inverse (canonical → original) maps by rename-map identity; the value
#: holds the forward map so its id stays stable while the entry lives.
_INVERSE_MAPS: Dict[int, Tuple[Dict[str, str], Dict[str, str]]] = {}


def rename_map(context: PairContext) -> Dict[str, str]:
    """Original → canonical name map for every index occurrence of a pair.

    Covers the unprimed (source-instance) and primed (sink-instance) forms
    of every loop index of either side.  Symbolic constants are absent —
    they keep their own names.  The map is injective, so it inverts for
    rehydration.  The returned dict is shared across pairs with the same
    loop stacks and must not be mutated.
    """
    memo_key = (context.src_context, context.sink_context)
    cached = _RENAME_MAPS.get(memo_key)
    if cached is not None:
        return cached
    mapping: Dict[str, str] = {}
    depth = context.depth
    for position, index in enumerate(context.common_indices):
        canon = _canon_name(_C_NAMES, "c", position)
        mapping[index] = canon
        mapping[prime(index)] = prime(canon)
    for level, loop in enumerate(context.src_site.loops[depth:], start=depth):
        mapping.setdefault(loop.index, _canon_name(_S_NAMES, "s", level))
    for level, loop in enumerate(context.sink_site.loops[depth:], start=depth):
        canon = _canon_name(_T_NAMES, "t", level)
        mapping[prime(loop.index)] = prime(canon)
        # An unprimed mention of a sink-only index (a source subscript using
        # the name outside any enclosing loop on it) resolves to the sink
        # loop only when no source loop claims the name.
        mapping.setdefault(loop.index, canon)
    if len(_RENAME_MAPS) >= _RENAME_MAPS_LIMIT:
        _RENAME_MAPS.clear()
    _RENAME_MAPS[memo_key] = mapping
    return mapping


def canonical_pair_key(
    context: PairContext, mapping: Optional[Dict[str, str]] = None
) -> CanonicalKey:
    """The hashable structural identity of one ordered reference pair.

    Components: dimensionality of both references, common depth, per-level
    index ranges and trip spans of both loop stacks, the canonicalized
    affine form (or nonlinear marker + coupled index bases) of every
    subscript position, and the range of every mentioned variable under
    its canonical name.  Everything is plain data — the key pickles and
    hashes cheaply.
    """
    if mapping is None:
        mapping = rename_map(context)
    var_ranges: Dict[str, Tuple] = {}

    def canon_expr(expr: LinearExpr) -> Tuple:
        terms = []
        for name, coeff in expr.terms:
            canon = mapping.get(name, sys.intern(name))
            if canon not in var_ranges:
                interval = context.range_of(name)
                var_ranges[canon] = (interval.lo, interval.hi)
            terms.append((canon, coeff))
        terms.sort()
        return (tuple(terms), expr.const)

    subscripts: List[Tuple] = []
    for pair in context.subscripts:
        if pair.is_linear:
            assert pair.src is not None and pair.sink is not None
            subscripts.append((canon_expr(pair.src), canon_expr(pair.sink)))
        else:
            # Opaque to every test: only the coupled index bases matter
            # (they decide the partition the position lands in).
            bases = tuple(
                sorted(
                    mapping.get(base, base)
                    for base in context.subscript_bases(pair)
                )
            )
            sides = (pair.src is not None, pair.sink is not None)
            subscripts.append((_NONLINEAR, sides, bases))

    return (
        context.src_site.ref.ndim,
        context.sink_site.ref.ndim,
        context.depth,
        _stack_fingerprint(context.src_context),
        _stack_fingerprint(context.sink_context),
        tuple(subscripts),
        tuple(sorted(var_ranges.items())),
    )


def _stack_fingerprint(loop_ctx: LoopContext) -> Tuple:
    """Per-level (range, trip span) data of one side's full loop stack.

    Loop contexts are shared across all the pairs of a routine (see
    :func:`~repro.ir.context.cached_loop_context`), so the fingerprint is
    computed once and memoized on the context object.
    """
    cached = getattr(loop_ctx, "_canon_fingerprint", None)
    if cached is not None:
        return cached
    parts = []
    for index in loop_ctx.indices:
        interval = loop_ctx.index_range(index)
        span = loop_ctx.trip_span(index)
        parts.append((interval.lo, interval.hi, span.lo, span.hi))
    fingerprint = tuple(parts)
    loop_ctx._canon_fingerprint = fingerprint
    return fingerprint


# ---------------------------------------------------------------------------
# Canonical result entries
# ---------------------------------------------------------------------------


@dataclass
class CacheEntry:
    """One driver verdict in canonical (pair-independent) vocabulary.

    ``recorder`` holds the test-application counters the pair's test run
    produced (including the Delta test's inner applications), so replaying
    a hit keeps Table 3 statistics byte-identical to a fresh run.
    ``vectors`` precomputes the verdict's direction-vector set — vectors
    are tuples of :class:`~repro.dirvec.direction.Direction` and mention no
    names, so every pair served by this entry shares the same set and
    rehydration never re-expands the constraint system.  Entries contain no
    references to loops, sites, or contexts — they pickle cleanly across
    process boundaries.
    """

    independent: bool
    exact: bool
    info: DependenceInfo
    outcomes: List[TestOutcome]
    recorder: TestRecorder
    vectors: FrozenSet[DirectionVector] = frozenset()
    #: Conservative-degradation marker: the verdict was assumed after a
    #: test failure (see :mod:`repro.engine.faults`), with the reason.
    #: Assumed entries carry an empty recorder — the failed pair
    #: contributes no Table 3 counters, keeping surviving-pair statistics
    #: byte-identical to a clean run.
    assumed: bool = False
    failure: Optional[str] = None


def canonicalize_result(
    result: DependenceResult,
    mapping: Dict[str, str],
    recorder: TestRecorder,
) -> CacheEntry:
    """Strip a fresh driver result down to a canonical :class:`CacheEntry`."""
    renamer = cached_renamer(mapping)
    return CacheEntry(
        independent=result.independent,
        exact=result.exact,
        info=_rename_info(result.info, renamer),
        outcomes=[_rename_outcome(o, renamer) for o in result.outcomes],
        recorder=recorder,
        vectors=frozenset(result.direction_vectors),
        assumed=result.assumed,
        failure=result.failure,
    )


def rehydrate_result(
    entry: CacheEntry,
    context: PairContext,
    mapping: Dict[str, str],
) -> DependenceResult:
    """Bind a canonical entry to a concrete pair's context.

    ``mapping`` is the *pair's* original → canonical map (the one its key
    was built with); its inverse renames the stored verdict back to the
    pair's real index names.
    """
    cached = _INVERSE_MAPS.get(id(mapping))
    if cached is not None and cached[0] is mapping:
        inverse = cached[1]
    else:
        inverse = {canon: name for name, canon in mapping.items()}
        if len(_INVERSE_MAPS) >= _RENAME_MAPS_LIMIT:
            _INVERSE_MAPS.clear()
        _INVERSE_MAPS[id(mapping)] = (mapping, inverse)
    renamer = cached_renamer(inverse)
    return DependenceResult(
        context=context,
        independent=entry.independent,
        info=_rename_info(entry.info, renamer),
        exact=entry.exact,
        outcomes=[_rename_outcome(o, renamer) for o in entry.outcomes],
        cached_vectors=entry.vectors,
        assumed=entry.assumed,
        failure=entry.failure,
    )


def _rename_value(value, renamer: CachedRenamer):
    """Rename a constraint payload: only symbolic expressions carry names."""
    if isinstance(value, LinearExpr):
        return renamer(value)
    return value


def _rename_constraint(
    constraint: IndexConstraint, renamer: CachedRenamer
) -> IndexConstraint:
    if isinstance(constraint.distance, LinearExpr):
        return IndexConstraint(
            constraint.directions, renamer(constraint.distance)
        )
    return constraint


def _rename_coupling(coupling: Coupling, mapping: Dict[str, str]) -> Coupling:
    indices, vectors = coupling
    return (tuple(mapping.get(i, i) for i in indices), vectors)


def _rename_info(info: DependenceInfo, renamer: CachedRenamer) -> DependenceInfo:
    mapping = renamer.mapping
    return DependenceInfo(
        indices=tuple(mapping.get(i, i) for i in info.indices),
        constraints={
            mapping.get(index, index): _rename_constraint(constraint, renamer)
            for index, constraint in info.constraints.items()
        },
        couplings=[_rename_coupling(c, mapping) for c in info.couplings],
    )


def _rename_outcome(outcome: TestOutcome, renamer: CachedRenamer) -> TestOutcome:
    mapping = renamer.mapping
    return TestOutcome(
        test=outcome.test,
        applicable=outcome.applicable,
        independent=outcome.independent,
        exact=outcome.exact,
        constraints={
            mapping.get(index, index): _rename_constraint(constraint, renamer)
            for index, constraint in outcome.constraints.items()
        },
        couplings=[_rename_coupling(c, mapping) for c in outcome.couplings],
        notes={
            key: _rename_value(value, renamer)
            for key, value in outcome.notes.items()
        },
    )
