"""Per-phase and per-test-tier wall-clock profiling for the engine.

The engine's hot path has four phases — *prepare* (context + canonical
key), *dispatch* (work shipped to the process pool), *rehydrate* (binding
cached canonical verdicts to concrete pairs), and *edge-build* (turning
verdicts into graph edges) — plus the driver's test tiers (ziv / siv /
rdiv / miv / delta) on cache misses.  A :class:`PhaseProfile` accumulates
wall seconds and call counts for each, so ``repro-deps analyze --profile``
and the benchmark harness can show where a corpus run actually spends its
time instead of guessing from aggregate speedups.

Profiling is strictly opt-in: the engine carries ``profile=None`` by
default and every call site guards with ``if profile is not None``, so the
fast path pays nothing when observability is off.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List

#: Canonical display order for engine phases (unknown names sort after).
PHASE_ORDER = ("prepare", "plan", "test", "dispatch", "rehydrate", "edge-build")


class PhaseProfile:
    """Accumulated ``{name: (seconds, calls)}`` timing counters.

    ``phases`` covers the engine pipeline, ``tests`` the driver's test
    tiers.  Both are plain dicts of two-element lists so merging (the
    parallel builder folds per-build profiles) and JSON export stay
    trivial.
    """

    __slots__ = ("phases", "tests")

    def __init__(self) -> None:
        self.phases: Dict[str, List[float]] = {}
        self.tests: Dict[str, List[float]] = {}

    # -- accumulation ----------------------------------------------------

    def add_phase(self, name: str, seconds: float, calls: int = 1) -> None:
        """Credit ``seconds`` of wall time (over ``calls`` calls) to a phase."""
        slot = self.phases.get(name)
        if slot is None:
            self.phases[name] = [seconds, calls]
        else:
            slot[0] += seconds
            slot[1] += calls

    def add_test(self, tier: str, seconds: float) -> None:
        """Credit one application of test ``tier``."""
        slot = self.tests.get(tier)
        if slot is None:
            self.tests[tier] = [seconds, 1]
        else:
            slot[0] += seconds
            slot[1] += 1

    @contextmanager
    def phase(self, name: str):
        """Context manager timing one phase occurrence."""
        start = perf_counter()
        try:
            yield
        finally:
            self.add_phase(name, perf_counter() - start)

    # -- aggregation -----------------------------------------------------

    def merge(self, other: "PhaseProfile") -> None:
        """Fold another profile's counters into this one."""
        for name, (seconds, calls) in other.phases.items():
            self.add_phase(name, seconds, calls)
        for tier, (seconds, calls) in other.tests.items():
            slot = self.tests.get(tier)
            if slot is None:
                self.tests[tier] = [seconds, calls]
            else:
                slot[0] += seconds
                slot[1] += calls

    def reset(self) -> None:
        """Zero every counter."""
        self.phases.clear()
        self.tests.clear()

    def total_seconds(self) -> float:
        """Summed phase time (test-tier time is a subset of *test*/misses)."""
        return sum(seconds for seconds, _ in self.phases.values())

    def as_dict(self) -> dict:
        """Plain-dict form for JSON serialization."""
        return {
            "phases": {
                name: {"s": round(seconds, 6), "calls": calls}
                for name, (seconds, calls) in sorted(
                    self.phases.items(), key=lambda kv: _phase_rank(kv[0])
                )
            },
            "tests": {
                tier: {"s": round(seconds, 6), "calls": calls}
                for tier, (seconds, calls) in sorted(self.tests.items())
            },
        }

    def __str__(self) -> str:
        lines = ["phase timings:"]
        for name, (seconds, calls) in sorted(
            self.phases.items(), key=lambda kv: _phase_rank(kv[0])
        ):
            lines.append(f"  {name:<10} {seconds * 1e3:9.2f} ms  {calls:7d} calls")
        if self.tests:
            lines.append("test tiers:")
            for tier, (seconds, calls) in sorted(self.tests.items()):
                lines.append(
                    f"  {tier:<10} {seconds * 1e3:9.2f} ms  {calls:7d} calls"
                )
        return "\n".join(lines)


def _phase_rank(name: str):
    try:
        return (0, PHASE_ORDER.index(name))
    except ValueError:
        return (1, name)
