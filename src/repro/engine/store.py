"""Crash-safe persistent verdict/plan store — sharded, multi-writer (v2).

The canonical pair key makes a driver verdict a pure function of
structure (see :mod:`repro.engine.canonical`), which is exactly what
makes verdicts safe to persist across processes and runs — and, since
format v2, safe to share between *concurrent* writers: two processes
that compute the same canonical key compute the same entry, so record
interleaving can duplicate work but never corrupt truth.

**Store layout (format v2).**  A store is a *directory*:

* ``manifest`` — 20 bytes: magic ``RVSM``, store format version, shard
  count, a 32-bit hash salt, and a CRC over the preceding fields.
  Created atomically (temp file + rename) and validated on every open;
  a corrupt manifest rebuilds the store empty (verdicts are derived
  data — a rebuild can never lose truth).
* ``shard-NNN.seg`` — N key-prefix shards.  A verdict or plan record
  lands in shard ``crc32(pickle(key), salt) % N``; each shard is an
  independent RVS1-style append-only segment with its own ``.lock``
  sidecar.
* ``meta.seg`` — a dedicated shard for run/chunk checkpoint markers,
  flushed strictly *after* the data shards so a durable marker never
  claims verdicts a crash could have lost.

Each segment file keeps the v1 record format: an 8-byte header (magic
``RVS1`` + little-endian ``u32`` schema version) followed by records of
``[u32 length][u32 crc32][pickled payload]``.  A store created by a v1
build (a single segment *file* at ``path``) still opens — read-only,
with writes refused — and ``repro-deps store migrate`` upgrades it in
place.

**Multi-writer protocol.**  No lock is held for the process lifetime.
Appends are buffered in memory per shard; a :meth:`checkpoint` (or the
automatic one every :data:`CHECKPOINT_INTERVAL` buffered records) takes
each dirty shard's sidecar lock *per append batch*:

1. acquire the shard lock with capped exponential backoff + jitter;
2. re-scan the shard's appended tail, folding records a concurrent
   writer landed since our last look (these become visible to reads and
   count as *cross-process* provenance);
3. drop buffered records another writer already persisted, append the
   rest, ``flush`` + ``fsync``, release.

Readers never lock: a lookup miss polls the key's shard tail (one
``stat``; new bytes are parsed up to the last fully valid record), so
verdicts written by a concurrent process become visible mid-run.  A
torn tail seen without the lock is simply not advanced past — it may be
an in-flight append — while a torn tail seen *under* the lock belongs
to a crashed writer and is truncated.

**Conservative degradation.**  Any shard-scoped failure — lock
starvation, a corrupt segment, ``ENOSPC`` — quarantines *that shard
only*: its buffered records are dropped, further I/O on it is skipped,
and the run continues memory-only for those keys.  The failure is
queued in :attr:`VerdictStore.events` for the engine to surface as a
``"store"`` :class:`~repro.engine.faults.FailureRecord`; it is never a
traceback and never an assumed independence.

Assumed (degraded) verdicts are never written: persistence must not
extend PR 3's contamination guarantee across runs — a faulted pair gets
a fresh test next process, not a stale assumption.

**Report documents and compaction groups.**  Two record kinds beyond
verdicts/plans/markers serve the corpus streaming driver
(:mod:`repro.corpus.stream`):

* ``d`` — a *report document*: an opaque payload keyed by a content
  token (see :func:`~repro.engine.checkpoint.run_token`).  The corpus
  driver stores each routine's rendered report under its content hash;
  the record's presence is the routine-completion marker and its
  payload replays the output byte-identically.  Like verdicts, reports
  for degraded (assumed) analyses are never persisted.
* ``g`` — a *compaction group*: several near-identical record payloads
  delta-compressed against a shared base (the groupcompress idiom) and
  deflated as one frame.  :meth:`VerdictStore.compact` groups plan and
  report payloads this way; :func:`_parse_records` expands groups
  transparently, so folds, polls, scans, and verifies all see the
  member records as if they were written plain.
"""

from __future__ import annotations

import io
import os
import pickle
import random
import struct
import sys
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.core.plan import TestPlan
from repro.engine import faultinject
from repro.engine.canonical import CacheEntry, CanonicalKey

try:  # POSIX only; on platforms without fcntl the store runs unlocked.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

#: Segment magic: "Repro Verdict Store", record-format generation 1.
MAGIC = b"RVS1"

#: Manifest magic: "Repro Verdict Store Manifest".
MANIFEST_MAGIC = b"RVSM"

#: Store *layout* version written into the manifest.  v1 is the legacy
#: single-segment file (no manifest); v2 is the sharded directory.
STORE_VERSION = 2

#: Schema version of the pickled payloads.  Bump whenever CacheEntry,
#: TestPlan, or the canonical-key layout changes shape; an on-disk
#: mismatch rebuilds the segment instead of deserializing stale data.
SCHEMA_VERSION = 1

#: Default key-prefix shard count for newly created stores.  The
#: manifest is authoritative afterwards — reopening with a different
#: ``shards=`` argument keeps the on-disk count.
DEFAULT_SHARDS = 8

#: Sanity bound on the manifest shard count (a corrupt count must not
#: make open() try to create millions of files).
MAX_SHARDS = 1024

#: Name of the marker shard (run/chunk checkpoint records).
META_SHARD = "meta"

_HEADER = struct.Struct("<4sI")
_FRAME = struct.Struct("<II")
#: magic, store version, shard count, salt — followed by a u32 CRC.
_MANIFEST = struct.Struct("<4sIII")

#: Buffered records between automatic fsync'd checkpoints.  Records lost
#: in a crash are bounded by this window (minus explicit chunk/routine
#: checkpoints, which flush eagerly).
CHECKPOINT_INTERVAL = 64

#: A single record larger than this is treated as framing corruption:
#: real records are a few KB, so a length field this big is garbage.
MAX_RECORD_SIZE = 64 * 1024 * 1024

#: Lock-acquisition schedule: attempts, base delay, and delay cap
#: (seconds).  Backoff doubles per attempt and each sleep is jittered by
#: a factor in [0.5, 1.5) so N workers contending on one shard don't
#: retry in lockstep.
LOCK_RETRIES = 8
LOCK_BACKOFF = 0.01
LOCK_BACKOFF_CAP = 0.5

#: Shard-id memo bound (cleared wholesale past this).
_SHARD_MEMO_LIMIT = 1 << 16

#: Members per compaction group.  Bounds the decode cost of one frame
#: (a torn group loses at most this many records) while still letting
#: the shared-base delta + deflate amortize across many payloads.
GROUP_SIZE = 64

#: zlib level for compaction groups: 6 is the speed/size knee.
GROUP_ZLIB_LEVEL = 6


class StoreError(Exception):
    """Base class for verdict-store failures."""


class StoreLockError(StoreError):
    """A shard lock stayed contended through the whole retry schedule."""


class StoreReadOnlyError(StoreError):
    """A write was attempted on a read-only (legacy v1) store."""


#: Recovery-rule names used in :attr:`StoreReport.rule_drops`.
RECOVERY_RULES = (
    "torn-frame",
    "torn-record",
    "crc-mismatch",
    "undecodable",
    "unknown-kind",
)


@dataclass
class StoreReport:
    """What a scan of a store (or one segment) found.

    For a v2 store the top-level report aggregates every segment and
    ``shards`` holds one sub-report per segment (data shards first, meta
    last).  ``problems`` holds one human-readable line per defect;
    ``truncated_at`` is the byte offset a repairing open would cut a
    segment back to (None when the tail is clean); ``rebuilt`` marks a
    magic/schema/manifest mismatch (the affected file is discarded on
    open); ``rule_drops`` counts records each recovery rule discarded;
    ``dead_bytes`` counts bytes compaction would reclaim (superseded
    duplicates, dropped records, torn tails).
    """

    path: Path
    label: str = "store"
    size: int = 0
    version: Optional[int] = None
    shard_count: int = 0
    salt: Optional[int] = None
    verdicts: int = 0
    plans: int = 0
    chunks: int = 0
    runs: int = 0
    reports: int = 0
    records: int = 0
    dropped: int = 0
    dead_bytes: int = 0
    mtime: Optional[float] = None
    truncated_at: Optional[int] = None
    rebuilt: bool = False
    problems: List[str] = field(default_factory=list)
    rule_drops: Dict[str, int] = field(default_factory=dict)
    shards: List["StoreReport"] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every byte of every segment parsed as a valid record."""
        return not self.problems

    def drop_record(self, rule: str, nbytes: int = 0) -> None:
        self.rule_drops[rule] = self.rule_drops.get(rule, 0) + 1
        self.dead_bytes += nbytes

    def fold(self, sub: "StoreReport") -> None:
        """Aggregate one segment sub-report into this store-level report."""
        self.shards.append(sub)
        self.size += sub.size
        self.verdicts += sub.verdicts
        self.plans += sub.plans
        self.chunks += sub.chunks
        self.runs += sub.runs
        self.reports += sub.reports
        self.records += sub.records
        self.dropped += sub.dropped
        self.dead_bytes += sub.dead_bytes
        for rule, count in sub.rule_drops.items():
            self.rule_drops[rule] = self.rule_drops.get(rule, 0) + count
        for problem in sub.problems:
            self.problems.append(f"{sub.label}: {problem}")

    def counts_line(self) -> str:
        return (
            f"  {self.verdicts} verdict(s), {self.plans} plan(s), "
            f"{self.reports} report(s), {self.chunks} chunk marker(s), "
            f"{self.runs} run marker(s) in {self.records} record(s)"
        )

    def compaction_line(self) -> str:
        """Dead/duplicate bytes compaction would reclaim (``store info``)."""
        if self.size <= 0:
            return "  compaction opportunity: none (store is empty)"
        pct = 100.0 * self.dead_bytes / self.size
        return (
            f"  compaction opportunity: {self.dead_bytes} dead byte(s) "
            f"of {self.size} ({pct:.1f}%)"
        )

    def rule_report(self) -> str:
        """One line per recovery rule with its drop count (verify mode)."""
        parts = [
            f"{rule} {self.rule_drops.get(rule, 0)}" for rule in RECOVERY_RULES
        ]
        return "  recovery drops: " + ", ".join(parts)

    def lines(self, per_shard: bool = True) -> List[str]:
        """Line-item report (header, counts, shard breakdown, problems)."""
        if self.version == STORE_VERSION and self.shards:
            data_shards = max(self.shard_count, 0)
            out = [
                f"store {self.path}: v{STORE_VERSION} directory, "
                f"{data_shards} shard(s) + meta, {self.size} bytes",
                self.counts_line(),
            ]
            if per_shard:
                for sub in self.shards:
                    when = (
                        time.strftime(
                            "%Y-%m-%d %H:%M:%S", time.localtime(sub.mtime)
                        )
                        if sub.mtime is not None
                        else "never"
                    )
                    out.append(
                        f"  {sub.label}: {sub.records} record(s) "
                        f"({sub.verdicts} verdicts, {sub.plans} plans, "
                        f"{sub.reports} reports, "
                        f"{sub.chunks + sub.runs} markers), "
                        f"{sub.dead_bytes} dead byte(s), "
                        f"last checkpoint {when}"
                    )
        else:
            out = [
                f"store {self.path}: {self.size} bytes, schema "
                f"{'?' if self.version is None else self.version}",
                self.counts_line(),
            ]
        for problem in self.problems:
            out.append(f"  PROBLEM: {problem}")
        if self.clean:
            out.append("  clean: no corruption found")
        return out


class CompactionResult(tuple):
    """Outcome of :meth:`VerdictStore.compact`.

    Subclasses ``tuple`` so it unpacks as the historical ``(before,
    after)`` byte totals; ``shards`` carries the per-segment breakdown
    as ``(label, before_bytes, after_bytes)`` triples for the CLI's
    reclaimed-bytes report (quarantined/skipped segments are absent).
    """

    shards: List[Tuple[str, int, int]]

    def __new__(
        cls,
        before: int,
        after: int,
        shards: Optional[List[Tuple[str, int, int]]] = None,
    ) -> "CompactionResult":
        self = super().__new__(cls, (before, after))
        self.shards = list(shards or [])
        return self

    @property
    def before(self) -> int:
        return self[0]

    @property
    def after(self) -> int:
        return self[1]

    @property
    def reclaimed(self) -> int:
        return self[0] - self[1]


# ---------------------------------------------------------------------------
# Low-level segment I/O
# ---------------------------------------------------------------------------


def _write_header(handle) -> None:
    handle.write(_HEADER.pack(MAGIC, SCHEMA_VERSION))


def _encode_record(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _atomic_create(path: Path, body: bytes = b"", header: bool = True) -> None:
    """Write header (+ optional body) to a temp file, fsync, rename over."""
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as tmp:
            if header:
                _write_header(tmp)
            if body:
                tmp.write(body)
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def _exclusive_create(path: Path) -> None:
    """Create an empty segment (header only) iff ``path`` is absent.

    The header is written and fsynced to a temp file first and *linked*
    into place, so the segment either does not exist or exists with a
    complete header — a racing opener can never observe a half-written
    header, and the loser of the race adopts the winner's (identical)
    file, preserving any records the winner appended in between.
    """
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as tmp:
            _write_header(tmp)
            tmp.flush()
            os.fsync(tmp.fileno())
        try:
            os.link(tmp_name, str(path))
        except FileExistsError:
            return
        _fsync_dir(path.parent)
    finally:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - temp already gone
            pass


def _fsync_dir(directory: Path) -> None:
    """Make a rename durable (best-effort on filesystems without dir fds)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic fs
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - exotic fs
        pass
    finally:
        os.close(fd)


#: Identity of one record for on-disk dedup: ``("v", key)``, ``("p",
#: key)``, ``("d", token)``, ``("c", token, build, seq)``.  Routine
#: markers (``r`` records labelled ``routine:<name>``) dedup by value —
#: a corpus re-run marking the same routines must not grow the meta
#: shard unboundedly.  Plain run markers have no identity (None): every
#: ``begin_run`` appends.
RecordId = Optional[Tuple]


def _record_identity(record: Tuple) -> RecordId:
    kind = record[0]
    if kind in ("v", "p", "d"):
        return (kind, record[1])
    if kind == "c":
        return ("c", record[1], record[2], record[3])
    if (
        kind == "r"
        and isinstance(record[2], str)
        and record[2].startswith("routine:")
    ):
        return ("r", record[1], record[2])
    return None


# -- compaction groups (groupcompress idiom) --------------------------------


def _delta_encode(base: bytes, text: bytes) -> Tuple[int, int, bytes]:
    """Encode ``text`` against ``base`` as (prefix, suffix, middle).

    Near-identical pickled payloads (plans for the same subscript shape,
    reports for structurally similar routines) share long prefixes and
    suffixes with the group's base; storing only the differing middle is
    the cheap core of the groupcompress idiom — no suffix trees needed
    for payloads this regular.
    """
    limit = min(len(base), len(text))
    prefix = 0
    while prefix < limit and base[prefix] == text[prefix]:
        prefix += 1
    suffix = 0
    limit -= prefix
    while (
        suffix < limit and base[-1 - suffix] == text[-1 - suffix]
    ):
        suffix += 1
    return prefix, suffix, text[prefix:len(text) - suffix]


def _delta_decode(base: bytes, delta: Tuple[int, int, bytes]) -> bytes:
    prefix, suffix, middle = delta
    tail = base[len(base) - suffix:] if suffix else b""
    return base[:prefix] + middle + tail


def _encode_group(payloads: List[bytes]) -> bytes:
    """Pickle several record payloads as one ``("g", blob)`` record.

    The first payload is stored verbatim as the group base; the rest are
    prefix/suffix deltas against it.  The whole structure is deflated,
    so shared middles compress too.
    """
    base = payloads[0]
    group = [base] + [_delta_encode(base, p) for p in payloads[1:]]
    blob = zlib.compress(pickle.dumps(group, protocol=4), GROUP_ZLIB_LEVEL)
    return pickle.dumps(("g", blob), protocol=4)


def _decode_group(record: Tuple) -> List[bytes]:
    group = pickle.loads(zlib.decompress(record[1]))
    base = group[0]
    return [base] + [_delta_decode(base, d) for d in group[1:]]


def _parse_records(data: bytes, offset: int, report: StoreReport, sink) -> int:
    """Walk ``data`` from ``offset``, decoding records into ``sink``.

    ``sink(record, start, end)`` is called once per decodable record.
    ``report`` accumulates counts, recovery-rule drops, and problems;
    the return value is the end offset of the last fully valid record —
    the safe truncation/resume point.
    """
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            report.truncated_at = offset
            report.drop_record("torn-frame", len(data) - offset)
            report.problems.append(
                f"torn record frame at byte {offset} "
                f"({len(data) - offset} trailing byte(s))"
            )
            break
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if length > MAX_RECORD_SIZE or end > len(data):
            report.truncated_at = offset
            report.drop_record("torn-record", len(data) - offset)
            report.problems.append(
                f"torn record at byte {offset} "
                f"(claims {length} payload byte(s))"
            )
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            report.truncated_at = offset
            report.drop_record("crc-mismatch", len(data) - offset)
            report.problems.append(f"CRC mismatch at byte {offset}")
            break
        report.records += 1
        try:
            record = pickle.loads(payload)
            kind = record[0]
        except Exception as exc:
            # Framing and CRC are sound, so the stream resyncs at the
            # next record: drop just this one.
            report.dropped += 1
            report.drop_record("undecodable", end - offset)
            report.problems.append(
                f"undecodable record at byte {offset} dropped "
                f"({type(exc).__name__})"
            )
            offset = end
            continue
        if kind == "g":
            # A compaction group: expand members and hand each to the
            # sink as if it had been written plain.  An unreadable blob
            # loses only this frame (framing already resynced above).
            try:
                members = [pickle.loads(m) for m in _decode_group(record)]
            except Exception as exc:
                report.dropped += 1
                report.drop_record("undecodable", end - offset)
                report.problems.append(
                    f"undecodable compaction group at byte {offset} "
                    f"dropped ({type(exc).__name__})"
                )
                offset = end
                continue
            # The frame already counted once; members are the logical
            # records it carries.
            report.records += max(len(members) - 1, 0)
            for member in members:
                if _count_record(member, report, offset):
                    sink(member, offset, end)
                else:
                    report.dropped += 1
                    report.drop_record("unknown-kind")
                    report.problems.append(
                        f"unknown record kind {member[0]!r} in group at "
                        f"byte {offset} dropped"
                    )
            offset = end
            continue
        if not _count_record(record, report, offset):
            report.dropped += 1
            report.drop_record("unknown-kind", end - offset)
            report.problems.append(
                f"unknown record kind {kind!r} at byte {offset} dropped"
            )
            offset = end
            continue
        sink(record, offset, end)
        offset = end
    return report.truncated_at if report.truncated_at is not None else offset


def _count_record(record: Tuple, report: StoreReport, offset: int) -> bool:
    """Bump the per-kind counter; False for an unknown kind."""
    kind = record[0]
    if kind == "v":
        report.verdicts += 1
    elif kind == "p":
        report.plans += 1
    elif kind == "c":
        report.chunks += 1
    elif kind == "r":
        report.runs += 1
    elif kind == "d":
        report.reports += 1
    else:
        return False
    return True


def _scan_segment_file(path: Path, label: str) -> Tuple[StoreReport, List[Tuple]]:
    """Parse one segment file without repairing it: (report, records).

    Counts superseded duplicates into ``dead_bytes`` so ``store info``
    can show what compaction would reclaim.
    """
    report = StoreReport(path=path, label=label)
    try:
        stat = path.stat()
        data = path.read_bytes()
    except OSError as exc:
        report.problems.append(f"cannot read: {exc.strerror or exc}")
        return report, []
    report.size = len(data)
    report.mtime = stat.st_mtime
    if len(data) < _HEADER.size:
        report.rebuilt = True
        report.problems.append(
            f"header truncated ({len(data)} bytes, need {_HEADER.size})"
        )
        return report, []
    magic, version = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        report.rebuilt = True
        report.problems.append(f"bad magic {magic!r} (want {MAGIC!r})")
        return report, []
    report.version = version
    if version != SCHEMA_VERSION:
        report.rebuilt = True
        report.problems.append(
            f"schema version {version} (this build writes {SCHEMA_VERSION})"
        )
        return report, []
    records: List[Tuple] = []
    seen: Set[Tuple] = set()
    runs_seen = 0

    def sink(record, start, end):
        nonlocal runs_seen
        identity = _record_identity(record)
        if identity is not None:
            if identity in seen:
                report.dead_bytes += end - start
            seen.add(identity)
        elif record[0] == "r":
            # Only the latest run marker survives compaction.
            if runs_seen:
                report.dead_bytes += end - start
            runs_seen += 1
        records.append(record)

    _parse_records(data, _HEADER.size, report, sink)
    return report, records


# ---------------------------------------------------------------------------
# Sidecar locks
# ---------------------------------------------------------------------------


class _SidecarLock:
    """Advisory exclusive lock on a ``<segment>.lock`` sidecar file.

    ``fcntl.flock`` releases automatically when the holder dies, so a
    crashed writer never wedges a shard; the PID written into the file
    only serves diagnostics.  Acquisition retries with capped
    exponential backoff and per-sleep jitter (factor in [0.5, 1.5)) so
    contending writers spread out instead of retrying in lockstep.

    Sidecar files are unlinked on a clean :meth:`release(unlink=True)
    <release>`; the unlink is race-free because it happens while still
    holding the flock and every acquirer re-checks that the path still
    names the inode it locked (a lock on an orphaned inode is discarded
    and retried).
    """

    def __init__(self, path: Path, rng: Optional[random.Random] = None):
        self.path = path
        self._handle: Optional[io.TextIOWrapper] = None
        self._rng = rng if rng is not None else random.Random()

    @property
    def held(self) -> bool:
        return self._handle is not None

    def acquire(
        self,
        retries: int = LOCK_RETRIES,
        backoff: float = LOCK_BACKOFF,
        cap: float = LOCK_BACKOFF_CAP,
    ) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX
            return
        delay = backoff
        holder = "an unknown process"
        for attempt in range(1, retries + 1):
            handle = open(self.path, "a+")
            locked = False
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                locked = True
            except OSError:
                holder = self._holder(handle)
            if locked:
                if self._stable(handle):
                    handle.seek(0)
                    handle.truncate()
                    handle.write(f"{os.getpid()}\n")
                    handle.flush()
                    self._handle = handle
                    return
                # We locked an inode that was unlinked/replaced between
                # our open and flock: discard it and take the fresh path.
                locked = False
            handle.close()
            if attempt < retries:
                time.sleep(delay * (0.5 + self._rng.random()))
                delay = min(delay * 2.0, cap)
        raise StoreLockError(
            f"shard lock {self.path} is held by {holder} "
            f"(gave up after {retries} attempts)"
        )

    def _stable(self, handle) -> bool:
        """True when ``path`` still names the inode ``handle`` locked."""
        try:
            return os.stat(self.path).st_ino == os.fstat(handle.fileno()).st_ino
        except OSError:
            return False

    def _holder(self, handle) -> str:
        try:
            handle.seek(0)
            pid = int(handle.read().strip() or "0")
        except (OSError, ValueError):
            return "an unknown process"
        if pid <= 0:
            return "an unknown process"
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            # The flock is held yet the recorded PID is dead: the lock
            # was re-acquired between our flock attempt and this read.
            return f"pid {pid} (stale: process is gone)"
        except PermissionError:  # pragma: no cover - other-user process
            pass
        return f"pid {pid}"

    def release(self, unlink: bool = False) -> None:
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        if fcntl is not None:
            if unlink:
                # Still holding the flock: nobody else can have acquired
                # through this inode, and acquirers re-check the path
                # inode, so removing the sidecar cannot orphan a holder.
                try:
                    os.unlink(self.path)
                except OSError:
                    pass
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - lock already gone
                pass
        handle.close()

    def cleanup(self) -> None:
        """Best-effort sidecar removal: take the lock without waiting
        (single attempt) and unlink; a live holder keeps its file."""
        if fcntl is None or self._handle is not None:  # pragma: no cover
            return
        try:
            self.acquire(retries=1, backoff=0.0)
        except (StoreLockError, OSError):
            return
        self.release(unlink=True)


# ---------------------------------------------------------------------------
# Segments
# ---------------------------------------------------------------------------


class _Segment:
    """One append-only segment file of a v2 store (a shard or ``meta``).

    Tracks how far this process has parsed the file (``offset``/``ino``)
    and which record identities it knows are on disk (``keys``) so
    batched appends can skip records a concurrent writer already
    persisted.  ``pending`` holds encoded-but-unflushed records.
    """

    def __init__(self, path: Path, label: str, shard):
        self.path = path
        self.label = label
        self.shard = shard  # int shard id, or META_SHARD
        self.lock = _SidecarLock(path.with_name(path.name + ".lock"))
        self.offset = _HEADER.size
        self.ino: Optional[int] = None
        self.quarantined = False
        self.keys: Set[Tuple] = set()
        self.pending: List[Tuple[RecordId, bytes]] = []


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------


class VerdictStore:
    """Sharded, crash-safe, multi-writer on-disk verdict and plan store.

    Open-or-create at ``path`` (a directory for v2 stores; a legacy v1
    file opens read-only).  The whole live state loads into memory on
    open, appends buffer per shard, and :meth:`checkpoint` makes them
    durable — taking each dirty shard's lock only for the append batch,
    so any number of processes may write the same store concurrently.
    Lookup misses poll the key's shard tail, making concurrent writers'
    verdicts visible mid-run; :meth:`foreign` reports which resident
    keys arrived from another process.

    Shard-scoped failures quarantine the shard (see ``events``); only
    whole-store failures (closed store, read-only store) raise.
    """

    def __init__(
        self,
        path: os.PathLike,
        shards: Optional[int] = None,
        checkpoint_interval: int = CHECKPOINT_INTERVAL,
    ):
        self.path = Path(path)
        self.checkpoint_interval = max(int(checkpoint_interval), 1)
        if shards is not None and not 1 <= shards <= MAX_SHARDS:
            raise ValueError(
                f"shard count must be in [1, {MAX_SHARDS}], got {shards}"
            )
        self._verdicts: Dict[CanonicalKey, CacheEntry] = {}
        self._plans: Dict[CanonicalKey, TestPlan] = {}
        self._reports: Dict[str, object] = {}
        self._chunks: Set[Tuple[str, int, int]] = set()
        self._runs: List[Tuple[str, str]] = []
        # Membership index over _runs: folding meta at corpus scale
        # (tens of thousands of routine markers) must not be O(n^2).
        self._runs_seen: Set[Tuple[str, str]] = set()
        self._foreign: Set[CanonicalKey] = set()
        self._shard_memo: Dict[CanonicalKey, int] = {}
        self._pending_total = 0
        self._closed = False
        self.read_only = False
        self.salt = 0
        #: Absorbed shard-scoped failures as ``(where, message)`` pairs,
        #: drained by the engine into ``"store"`` failure records.
        self.events: List[Tuple[str, str]] = []
        self._segments: List[_Segment] = []
        self._meta: Optional[_Segment] = None
        self.recovered_report: Optional[StoreReport] = None
        if self.path.is_dir():
            self._open_v2(shards)
        elif self.path.exists():
            if self._looks_like_v1(self.path):
                self._open_v1_read_only()
            else:
                # Not a store at all: discard and start a fresh v2
                # directory (verdicts are derived data).
                report = StoreReport(path=self.path, rebuilt=True)
                report.problems.append("unrecognized store file")
                self.recovered_report = report
                self.path.unlink()
                self._create_v2(shards or DEFAULT_SHARDS)
                print(
                    f"repro-deps: store {self.path}: unrecognized store "
                    "file; rebuilt empty",
                    file=sys.stderr,
                )
        else:
            self._create_v2(shards or DEFAULT_SHARDS)

    # -- open / create ---------------------------------------------------

    @staticmethod
    def _looks_like_v1(path: Path) -> bool:
        try:
            with open(path, "rb") as handle:
                magic = handle.read(len(MAGIC))
        except OSError:
            return False
        return magic == MAGIC

    def _manifest_path(self) -> Path:
        return self.path / "manifest"

    def _shard_path(self, shard: int) -> Path:
        return self.path / f"shard-{shard:03d}.seg"

    def _meta_path(self) -> Path:
        return self.path / f"{META_SHARD}.seg"

    def _write_manifest(self, shard_count: int, salt: int) -> None:
        body = _MANIFEST.pack(MANIFEST_MAGIC, STORE_VERSION, shard_count, salt)
        body += struct.pack("<I", zlib.crc32(body))
        _atomic_create(self._manifest_path(), body, header=False)

    @staticmethod
    def read_manifest(path: Path) -> Tuple[Optional[Tuple[int, int]], str]:
        """Parse ``<dir>/manifest``: ``((shard_count, salt), "")`` or
        ``(None, reason)``."""
        manifest = Path(path) / "manifest"
        try:
            data = manifest.read_bytes()
        except OSError as exc:
            return None, f"manifest unreadable: {exc.strerror or exc}"
        if len(data) != _MANIFEST.size + 4:
            return None, f"manifest truncated ({len(data)} bytes)"
        magic, version, shard_count, salt = _MANIFEST.unpack_from(data, 0)
        (crc,) = struct.unpack_from("<I", data, _MANIFEST.size)
        if magic != MANIFEST_MAGIC:
            return None, f"bad manifest magic {magic!r}"
        if crc != zlib.crc32(data[: _MANIFEST.size]):
            return None, "manifest CRC mismatch"
        if version != STORE_VERSION:
            return None, f"store format v{version} (this build writes v{STORE_VERSION})"
        if not 1 <= shard_count <= MAX_SHARDS:
            return None, f"implausible shard count {shard_count}"
        return (shard_count, salt), ""

    def _create_v2(self, shard_count: int) -> None:
        # Stage the directory with its manifest already inside and
        # rename it into place, so concurrent creators race on a single
        # atomic rename: only the winner's manifest (and salt) is ever
        # visible, and the loser simply opens the winner's store.
        staging = self.path.with_name(f"{self.path.name}.create-{os.getpid()}")
        if staging.exists():
            import shutil

            shutil.rmtree(staging)
        staging.mkdir(parents=True)
        salt = struct.unpack("<I", os.urandom(4))[0]
        body = _MANIFEST.pack(MANIFEST_MAGIC, STORE_VERSION, shard_count, salt)
        body += struct.pack("<I", zlib.crc32(body))
        _atomic_create(staging / "manifest", body, header=False)
        try:
            os.rename(staging, self.path)
        except OSError:
            import shutil

            shutil.rmtree(staging, ignore_errors=True)
            self._open_v2(shard_count)
            return
        _fsync_dir(self.path.parent)
        self._build_segments(shard_count, salt)
        report = StoreReport(
            path=self.path, version=STORE_VERSION,
            shard_count=shard_count, salt=salt,
        )
        for segment in self._all_segments():
            self._recover_segment(segment, report)
        self.recovered_report = report

    def _open_v2(self, shards: Optional[int]) -> None:
        parsed, reason = self.read_manifest(self.path)
        if parsed is None:
            # A corrupt or missing manifest cannot be trusted for shard
            # assignment; rebuild it with a fresh salt.  Existing
            # segments are still folded (lookups use the global map), so
            # prior verdicts survive — only future shard placement moves.
            shard_count = shards or DEFAULT_SHARDS
            salt = struct.unpack("<I", os.urandom(4))[0]
            self._write_manifest(shard_count, salt)
            print(
                f"repro-deps: store {self.path}: {reason}; manifest rebuilt",
                file=sys.stderr,
            )
        else:
            shard_count, salt = parsed
        self._build_segments(shard_count, salt)
        report = StoreReport(
            path=self.path, version=STORE_VERSION,
            shard_count=shard_count, salt=salt,
        )
        if parsed is None:
            report.problems.append(f"{reason}; manifest rebuilt")
        for segment in self._all_segments():
            self._recover_segment(segment, report)
        self.recovered_report = report

    def _build_segments(self, shard_count: int, salt: int) -> None:
        self.salt = salt
        self._segments = [
            _Segment(self._shard_path(i), f"shard {i}", i)
            for i in range(shard_count)
        ]
        self._meta = _Segment(self._meta_path(), META_SHARD, META_SHARD)

    def _all_segments(self) -> List[_Segment]:
        return self._segments + ([self._meta] if self._meta else [])

    def _recover_segment(self, segment: _Segment, report: StoreReport) -> None:
        """Open-time recovery of one segment, under its lock.

        A torn tail found here belongs to a crashed writer (live writers
        only append while holding the lock) and is truncated back to the
        last valid record boundary.  A magic/schema mismatch rebuilds
        the segment empty.  Lock starvation or I/O failure quarantines
        the segment instead of failing the open.
        """
        try:
            faultinject.on_segment_open(segment.path, segment.shard)
            _exclusive_create(segment.path)
            segment.lock.acquire()
        except StoreLockError as exc:
            self._quarantine(segment, exc)
            report.fold(StoreReport(path=segment.path, label=segment.label,
                                    problems=[str(exc)]))
            return
        except OSError as exc:
            self._quarantine(segment, exc)
            report.fold(StoreReport(path=segment.path, label=segment.label,
                                    problems=[f"cannot create: {exc}"]))
            return
        try:
            faultinject.on_lock_held(segment.shard)
            sub, records = _scan_segment_file(segment.path, segment.label)
            if sub.rebuilt:
                _atomic_create(segment.path)
                print(
                    f"repro-deps: store {self.path} {segment.label}: "
                    f"{sub.problems[0]}; rebuilt empty",
                    file=sys.stderr,
                )
                sub.records = sub.verdicts = sub.plans = 0
                sub.chunks = sub.runs = sub.size = 0
                segment.offset = _HEADER.size
            else:
                for record in records:
                    self._fold(segment, record, foreign=False)
                if sub.truncated_at is not None:
                    with open(segment.path, "r+b") as handle:
                        handle.truncate(sub.truncated_at)
                        handle.flush()
                        os.fsync(handle.fileno())
                    print(
                        f"repro-deps: store {self.path} {segment.label}: "
                        f"dropped corrupt tail at byte {sub.truncated_at} "
                        f"({sub.problems[-1]})",
                        file=sys.stderr,
                    )
                    segment.offset = sub.truncated_at
                else:
                    segment.offset = _HEADER.size + max(sub.size - _HEADER.size, 0)
            segment.ino = os.stat(segment.path).st_ino
            report.fold(sub)
        except OSError as exc:
            self._quarantine(segment, exc)
            report.fold(StoreReport(path=segment.path, label=segment.label,
                                    problems=[f"recovery failed: {exc}"]))
        finally:
            segment.lock.release()

    def _open_v1_read_only(self) -> None:
        """Legacy single-segment file: serve reads, refuse writes."""
        self.read_only = True
        report, records = _scan_segment_file(self.path, "store")
        report.version = report.version if report.version is not None else None
        if report.rebuilt:
            # Even read-only fallback refuses to deserialize a wrong
            # schema; the store opens empty (lookups all miss).
            self.recovered_report = report
            return
        shim = _Segment(self.path, "store", 0)
        for record in records:
            self._fold(shim, record, foreign=False)
        self.recovered_report = report

    # -- record folding ---------------------------------------------------

    def _fold(self, segment: _Segment, record: Tuple, foreign: bool) -> None:
        """Adopt one on-disk record into the in-memory view."""
        kind = record[0]
        identity = _record_identity(record)
        if identity is not None:
            segment.keys.add(identity)
        if kind == "v":
            if record[1] not in self._verdicts:
                self._verdicts[record[1]] = record[2]
                if foreign:
                    self._foreign.add(record[1])
        elif kind == "p":
            self._plans.setdefault(record[1], record[2])
        elif kind == "d":
            self._reports.setdefault(record[1], record[2])
        elif kind == "c":
            self._chunks.add((record[1], record[2], record[3]))
        elif kind == "r":
            # A compaction-triggered re-parse replays markers already
            # resident; dedup every marker by value.
            marker = (record[1], record[2])
            if marker not in self._runs_seen:
                self._runs_seen.add(marker)
                self._runs.append(marker)

    def _quarantine(self, segment: _Segment, exc: Exception, dropped: int = 0) -> None:
        """Degrade one shard to memory-only after an absorbed failure."""
        if segment.quarantined:
            return
        segment.quarantined = True
        segment.pending.clear()
        note = f"{type(exc).__name__}: {exc}"
        if dropped:
            note += f" ({dropped} buffered record(s) not persisted)"
        self.events.append(
            (
                f"store {self.path} [{segment.label}]",
                f"{note}; shard quarantined, continuing memory-only",
            )
        )

    def drain_events(self) -> List[Tuple[str, str]]:
        """Return and clear absorbed shard-failure events."""
        events, self.events = self.events, []
        return events

    @property
    def quarantined_shards(self) -> List[str]:
        return [s.label for s in self._all_segments() if s.quarantined]

    # -- shard routing -----------------------------------------------------

    def _shard_of(self, key: CanonicalKey) -> int:
        shard = self._shard_memo.get(key)
        if shard is None:
            blob = pickle.dumps(key, protocol=4)
            shard = zlib.crc32(blob, self.salt) % max(len(self._segments), 1)
            if len(self._shard_memo) >= _SHARD_MEMO_LIMIT:
                self._shard_memo.clear()
            self._shard_memo[key] = shard
        return shard

    def _segment_for(self, key: CanonicalKey) -> Optional[_Segment]:
        if not self._segments:
            return None
        return self._segments[self._shard_of(key)]

    # -- sizes -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._verdicts)

    @property
    def plan_count(self) -> int:
        return len(self._plans)

    @property
    def report_count(self) -> int:
        return len(self._reports)

    @property
    def closed(self) -> bool:
        return self._closed

    def size(self) -> int:
        """Total on-disk bytes across every segment (0 for a v1 store's
        directory form; v1 files report their own size)."""
        if self.read_only:
            try:
                return self.path.stat().st_size
            except OSError:
                return 0
        total = 0
        for segment in self._all_segments():
            try:
                total += segment.path.stat().st_size
            except OSError:
                continue
        return total

    # -- tail polling (cross-process visibility) --------------------------

    def _poll(self, segment: Optional[_Segment]) -> bool:
        """Fold records a concurrent writer appended to ``segment``.

        Lock-free: a torn tail may be an in-flight append, so parsing
        stops at the first invalid record without advancing past it (the
        next poll retries).  Returns True when anything was folded.
        """
        if (
            segment is None
            or segment.quarantined
            or self._closed
            or self.read_only
        ):
            return False
        try:
            stat = os.stat(segment.path)
        except OSError:
            return False
        if stat.st_ino == segment.ino and stat.st_size <= segment.offset:
            return False
        try:
            data = segment.path.read_bytes()
        except OSError:
            return False
        start = segment.offset
        if stat.st_ino != segment.ino or len(data) < segment.offset:
            # Replaced (compacted) or shrunk: re-parse from the header.
            # Folding is idempotent, so records already resident are
            # simply skipped.
            if len(data) < _HEADER.size or data[:4] != MAGIC:
                return False
            start = _HEADER.size
        folded = False
        scratch = StoreReport(path=segment.path, label=segment.label)
        before = (
            len(self._verdicts) + len(self._plans)
            + len(self._reports) + len(self._chunks)
        )

        def sink(record, _start, _end):
            known = _record_identity(record)
            if known is not None and known in segment.keys:
                return
            self._fold(segment, record, foreign=True)

        end = _parse_records(data, start, scratch, sink)
        folded = (
            len(self._verdicts) + len(self._plans)
            + len(self._reports) + len(self._chunks)
        ) > before
        segment.offset = end
        segment.ino = stat.st_ino
        return folded

    def foreign(self, key: CanonicalKey) -> bool:
        """True when ``key``'s resident entry arrived from a concurrent
        process (folded from a shard tail after this store opened)."""
        return key in self._foreign

    # -- reads -----------------------------------------------------------

    def get(self, key: CanonicalKey) -> Optional[CacheEntry]:
        entry = self._verdicts.get(key)
        if entry is None and self._segments:
            if self._poll(self._segment_for(key)):
                entry = self._verdicts.get(key)
        return entry

    def contains(self, key: CanonicalKey) -> bool:
        return self.get(key) is not None

    def get_plan(self, key: CanonicalKey) -> Optional[TestPlan]:
        plan = self._plans.get(key)
        if plan is None and self._segments:
            if self._poll(self._segment_for(key)):
                plan = self._plans.get(key)
        return plan

    def get_report(self, token: str) -> Optional[object]:
        """The report document stored under ``token`` (or None).

        Misses poll the token's shard tail like verdict reads, so a
        sibling corpus writer's completed routines become skippable
        mid-run.
        """
        value = self._reports.get(token)
        if value is None and self._segments:
            if self._poll(self._segment_for(token)):
                value = self._reports.get(token)
        return value

    def chunk_done(self, token: str, build: int, seq: int) -> bool:
        if (token, build, seq) in self._chunks:
            return True
        self._poll(self._meta)
        return (token, build, seq) in self._chunks

    def chunks_done(self, token: str) -> Set[Tuple[int, int]]:
        """Completed ``(build, seq)`` markers recorded under ``token``."""
        self._poll(self._meta)
        return {(b, s) for t, b, s in self._chunks if t == token}

    def runs(self) -> List[Tuple[str, str]]:
        """Every ``(token, label)`` run marker, in append order."""
        self._poll(self._meta)
        return list(self._runs)

    # -- writes ----------------------------------------------------------

    def _check_writable(self) -> None:
        if self._closed:
            raise StoreError(f"store {self.path} is closed")
        if self.read_only:
            raise StoreReadOnlyError(
                f"store {self.path} is a legacy v1 file opened read-only "
                "(run `repro-deps store migrate` to upgrade it)"
            )

    def _queue(self, segment: Optional[_Segment], identity: RecordId,
               record: Tuple) -> None:
        if segment is None or segment.quarantined:
            return  # memory-only for this shard
        segment.pending.append(
            (identity, _encode_record(pickle.dumps(record, protocol=4)))
        )
        self._pending_total += 1
        if self._pending_total >= self.checkpoint_interval:
            self.checkpoint()

    def put(self, key: CanonicalKey, entry: CacheEntry) -> None:
        """Persist one verdict.  Assumed (degraded) verdicts are refused."""
        self._check_writable()
        faultinject.on_store_put()
        if entry.assumed:
            raise StoreError(
                "assumed verdicts are never persisted "
                "(conservative-degradation contamination guarantee)"
            )
        if self._verdicts.get(key) is not None:
            return
        self._verdicts[key] = entry
        self._queue(self._segment_for(key), ("v", key), ("v", key, entry))

    def put_plan(self, key: CanonicalKey, plan: TestPlan) -> None:
        self._check_writable()
        faultinject.on_store_put()
        if self._plans.get(key) is not None:
            return
        self._plans[key] = plan
        self._queue(self._segment_for(key), ("p", key), ("p", key, plan))

    def put_report(self, token: str, value: object) -> None:
        """Persist one report document under its content token.

        The record doubles as a completion marker: the corpus driver
        only writes it after a routine (or file) analyzed cleanly, so
        presence implies the payload replays a healthy run's output.
        Degraded reports must not be offered here — like assumed
        verdicts, they would contaminate later runs.
        """
        self._check_writable()
        faultinject.on_store_put()
        if token in self._reports:
            return
        self._reports[token] = value
        self._queue(self._segment_for(token), ("d", token), ("d", token, value))

    def mark_chunk(self, token: str, build: int, seq: int) -> None:
        self._check_writable()
        marker = (token, build, seq)
        if marker in self._chunks:
            return
        self._chunks.add(marker)
        self._queue(self._meta, ("c",) + marker, ("c", token, build, seq))

    def mark_run(self, token: str, label: str) -> None:
        self._check_writable()
        marker = (token, label)
        identity = _record_identity(("r", token, label))
        if identity is not None and marker in self._runs_seen:
            return  # routine markers dedup: re-runs must not grow meta
        self._runs_seen.add(marker)
        self._runs.append(marker)
        self._queue(self._meta, identity, ("r", token, label))

    # -- durability -------------------------------------------------------

    def checkpoint(self) -> None:
        """Flush and fsync buffered appends (a durability barrier).

        Data shards flush before the meta shard, so a chunk/run marker
        is never durable before the verdicts it covers — the resume
        protocol's ordering invariant, preserved across shards.
        """
        if self._closed or self.read_only:
            return
        for segment in self._segments:
            if segment.pending:
                self._flush(segment)
        if self._meta is not None and self._meta.pending:
            self._flush(self._meta)

    def _flush(self, segment: _Segment) -> None:
        """Append one shard's buffered records under its lock."""
        pending, segment.pending = segment.pending, []
        self._pending_total -= len(pending)
        if segment.quarantined:
            return
        try:
            segment.lock.acquire()
        except StoreLockError as exc:
            self._quarantine(segment, exc, dropped=len(pending))
            return
        try:
            faultinject.on_lock_held(segment.shard)
            self._sync_under_lock(segment)
            with open(segment.path, "r+b") as handle:
                handle.seek(segment.offset)
                for identity, encoded in pending:
                    if identity is not None and identity in segment.keys:
                        continue  # a concurrent writer beat us to it
                    handle.write(encoded)
                    if identity is not None:
                        segment.keys.add(identity)
                    faultinject.on_store_append(segment.shard)
                handle.flush()
                os.fsync(handle.fileno())
                segment.offset = handle.tell()
                segment.ino = os.fstat(handle.fileno()).st_ino
        except (OSError, StoreError) as exc:
            self._quarantine(segment, exc, dropped=len(pending))
        finally:
            segment.lock.release()

    def _sync_under_lock(self, segment: _Segment) -> None:
        """Catch up with concurrent writers while holding the lock.

        Folds any tail records another process appended since our last
        look.  A torn tail seen *under the lock* cannot be in-flight —
        writers only touch the file locked — so it is a crashed writer's
        residue and is truncated before we append after it.
        """
        stat = os.stat(segment.path)
        start = segment.offset
        if stat.st_ino != segment.ino and segment.ino is not None:
            start = _HEADER.size  # replaced by a compaction: re-parse
        elif stat.st_size < segment.offset:
            start = _HEADER.size
        elif stat.st_size == segment.offset:
            segment.ino = stat.st_ino
            return
        data = segment.path.read_bytes()
        if len(data) < _HEADER.size or data[:4] != MAGIC:
            # The segment was destroyed under us; rebuild it empty.
            _atomic_create(segment.path)
            segment.keys.clear()
            segment.offset = _HEADER.size
            segment.ino = os.stat(segment.path).st_ino
            return
        scratch = StoreReport(path=segment.path, label=segment.label)

        def sink(record, _start, _end):
            identity = _record_identity(record)
            if identity is not None and identity in segment.keys:
                return
            self._fold(segment, record, foreign=True)

        end = _parse_records(data, start, scratch, sink)
        if end < len(data):
            with open(segment.path, "r+b") as handle:
                handle.truncate(end)
                handle.flush()
                os.fsync(handle.fileno())
        segment.offset = end
        segment.ino = stat.st_ino

    # -- maintenance ------------------------------------------------------

    def compact(self) -> "CompactionResult":
        """Rewrite every shard's live state as fresh, delta-packed segments.

        Verdicts rewrite as plain records (the hot replay path stays
        cheap to poll); plans and report documents — near-identical
        pickles — are grouped :data:`GROUP_SIZE` at a time and
        delta-compressed against a shared base (``g`` records, the
        groupcompress idiom), which is what keeps a corpus-scale store
        small.  Returns a :class:`CompactionResult` (unpacks as the
        historical ``(before, after)`` byte totals; per-shard deltas
        ride in ``.shards``).

        Each shard is rewritten under its lock via temp file + atomic
        rename, so a crash mid-compaction leaves that shard's old
        segment intact and every other shard either fully old or fully
        new — never mixed within one segment.  Quarantined shards are
        skipped.  Chunk markers and deduped routine markers survive
        (resume state must not be lost to maintenance); of the plain
        run markers only the latest is kept.
        """
        self._check_writable()
        self.checkpoint()
        before_total = self.size()
        shard_sizes: List[Tuple[str, int, int]] = []
        for segment in self._all_segments():
            if segment.quarantined:
                continue
            try:
                segment.lock.acquire()
            except StoreLockError as exc:
                self._quarantine(segment, exc)
                continue
            try:
                faultinject.on_lock_held(segment.shard)
                self._sync_under_lock(segment)
                try:
                    seg_before = segment.path.stat().st_size
                except OSError:
                    seg_before = 0
                body = io.BytesIO()
                keys: Set[Tuple] = set()
                for identity in sorted(
                    (i for i in segment.keys if i[0] == "v"),
                    key=lambda i: repr(i[1]),
                ):
                    entry = self._verdicts.get(identity[1])
                    if entry is None:
                        continue
                    body.write(_encode_record(
                        pickle.dumps(("v", identity[1], entry), protocol=4)
                    ))
                    keys.add(identity)
                for kind, live in (("p", self._plans), ("d", self._reports)):
                    payloads: List[bytes] = []
                    for identity in sorted(
                        (i for i in segment.keys if i[0] == kind),
                        key=lambda i: repr(i[1]),
                    ):
                        value = live.get(identity[1])
                        if value is None:
                            continue
                        payloads.append(pickle.dumps(
                            (kind, identity[1], value), protocol=4
                        ))
                        keys.add(identity)
                    for start in range(0, len(payloads), GROUP_SIZE):
                        body.write(_encode_record(
                            _encode_group(payloads[start:start + GROUP_SIZE])
                        ))
                if segment is self._meta:
                    for token, build, seq in sorted(self._chunks):
                        body.write(_encode_record(pickle.dumps(
                            ("c", token, build, seq), protocol=4
                        )))
                        keys.add(("c", token, build, seq))
                    kept: List[Tuple[str, str]] = []
                    last_plain: Optional[Tuple[str, str]] = None
                    for marker in self._runs:
                        if marker[1].startswith("routine:"):
                            kept.append(marker)  # _runs is already deduped
                        else:
                            last_plain = marker
                    if last_plain is not None:
                        kept.append(last_plain)
                    self._runs = kept
                    self._runs_seen = set(kept)
                    for token, label in kept:
                        record = ("r", token, label)
                        body.write(_encode_record(
                            pickle.dumps(record, protocol=4)
                        ))
                        identity = _record_identity(record)
                        if identity is not None:
                            keys.add(identity)
                faultinject.on_compact(segment.shard)
                _atomic_create(segment.path, body.getvalue())
                segment.keys = keys
                segment.offset = _HEADER.size + len(body.getvalue())
                segment.ino = os.stat(segment.path).st_ino
                shard_sizes.append(
                    (segment.label, seg_before, segment.offset)
                )
            except (OSError, StoreError) as exc:
                self._quarantine(segment, exc)
            finally:
                segment.lock.release()
        return CompactionResult(before_total, self.size(), shard_sizes)

    def close(self) -> None:
        """Checkpoint, then release and tidy shard sidecars (idempotent).

        Sidecar ``.lock`` files are unlinked when no other process holds
        them, so dead-holder locks never accumulate next to the store.
        """
        if self._closed:
            return
        if not self.read_only:
            try:
                self.checkpoint()
            finally:
                for segment in self._all_segments():
                    segment.lock.cleanup()
        self._closed = True

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        if self.read_only:
            state += ", read-only v1"
        return (
            f"VerdictStore({str(self.path)!r}, {len(self)} verdicts, "
            f"{self.plan_count} plans, {state})"
        )

    # -- offline scanning --------------------------------------------------

    @classmethod
    def scan(cls, path: os.PathLike) -> StoreReport:
        """Parse a store (v2 directory or v1 file) without repairing it.

        Used by ``repro-deps store verify``/``info``.  For a v2 store the
        report aggregates every segment; per-segment sub-reports are in
        ``report.shards``.
        """
        path = Path(path)
        if path.is_dir():
            parsed, reason = cls.read_manifest(path)
            report = StoreReport(path=path, version=STORE_VERSION)
            if parsed is None:
                report.rebuilt = True
                report.problems.append(reason)
                return report
            shard_count, salt = parsed
            report.shard_count = shard_count
            report.salt = salt
            for i in range(shard_count):
                sub, _ = _scan_segment_file(
                    path / f"shard-{i:03d}.seg", f"shard {i}"
                )
                report.fold(sub)
            sub, _ = _scan_segment_file(path / f"{META_SHARD}.seg", META_SHARD)
            report.fold(sub)
            return report
        report, _ = _scan_segment_file(path, "store")
        return report


# ---------------------------------------------------------------------------
# v1 → v2 migration
# ---------------------------------------------------------------------------


def migrate_store(
    path: os.PathLike, shards: int = DEFAULT_SHARDS
) -> Tuple[int, int]:
    """Upgrade a legacy v1 store *file* to a v2 shard directory in place.

    Returns ``(verdicts, plans)`` migrated.  The new directory is built
    beside the original, the v1 file is renamed to ``<name>.v1``, the
    directory takes its place, and the backup is removed — so a crash at
    any point leaves either the intact v1 file or a complete v2 store
    (plus, mid-swap, the ``.v1`` backup to recover from by hand).

    Raises :class:`StoreError` when ``path`` is not a readable v1 store
    (an existing v2 directory is reported as already migrated).
    """
    path = Path(path)
    if path.is_dir():
        raise StoreError(f"store {path} is already a v{STORE_VERSION} directory")
    if not path.exists():
        raise StoreError(f"store {path} does not exist")
    report, records = _scan_segment_file(path, "store")
    if report.rebuilt:
        raise StoreError(
            f"store {path} is not a readable v1 store ({report.problems[0]})"
        )
    staging = path.with_name(path.name + ".migrate")
    if staging.exists():
        import shutil

        shutil.rmtree(staging)
    store = VerdictStore(staging, shards=shards)
    try:
        verdicts = plans = 0
        for record in records:
            kind = record[0]
            if kind == "v" and not getattr(record[2], "assumed", False):
                store.put(record[1], record[2])
                verdicts += 1
            elif kind == "p":
                store.put_plan(record[1], record[2])
                plans += 1
            elif kind == "c":
                store.mark_chunk(record[1], record[2], record[3])
            elif kind == "r":
                store.mark_run(record[1], record[2])
    finally:
        store.close()
    backup = path.with_name(path.name + ".v1")
    os.replace(path, backup)
    os.replace(staging, path)
    _fsync_dir(path.parent)
    try:
        os.unlink(backup)
    except OSError:  # pragma: no cover - backup already gone
        pass
    return verdicts, plans
