"""Crash-safe persistent verdict/plan store.

The canonical pair key makes a driver verdict a pure function of
structure (see :mod:`repro.engine.canonical`), which is exactly what
makes verdicts safe to persist across processes and runs: a
:class:`VerdictStore` is an on-disk third tier below the in-memory LRU,
so a killed corpus sweep resumes from every pair it already tested
instead of restarting from zero.

The format is a single append-only segment file:

* an 8-byte header — 4-byte magic ``RVS1`` plus a little-endian ``u32``
  schema version;
* zero or more records, each ``[u32 length][u32 crc32][payload]`` with
  both integers little-endian and the CRC taken over the payload bytes;
* each payload is a pickled ``(kind, ...)`` tuple — ``"v"`` (canonical
  key → :class:`~repro.engine.canonical.CacheEntry`), ``"p"`` (canonical
  key → :class:`~repro.core.plan.TestPlan`), ``"r"`` (run-begin marker:
  token + label), or ``"c"`` (completed-chunk marker: token, build, seq).

Durability and recovery rules:

* a new store (and every compaction) is written to a temp file in the
  same directory and atomically renamed into place, so a crash during
  either leaves the previous state intact;
* appends are buffered and flushed with ``fsync`` at every *checkpoint*
  (automatic every :data:`CHECKPOINT_INTERVAL` appends, explicit at
  chunk/routine boundaries, always on close);
* on open, the tail is scanned: a torn or CRC-corrupt record truncates
  the file back to the last valid record boundary (logged and dropped —
  never trusted, never a crash), and a CRC-valid record whose payload no
  longer unpickles is skipped individually;
* a magic or schema-version mismatch triggers a clean rebuild — the old
  bytes are discarded and an empty store of the current version is
  written (verdicts are derived data; rebuilding is always safe);
* an advisory ``fcntl`` file lock on a ``<path>.lock`` sidecar (with the
  holder's PID recorded for stale-lock diagnostics, and bounded
  retry/backoff on contention) makes concurrent runs safe: the second
  writer fails cleanly instead of interleaving records.

Assumed (degraded) verdicts are never written: persistence must not
extend PR 3's contamination guarantee across runs — a faulted pair gets
a fresh test next process, not a stale assumption.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import sys
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.core.plan import TestPlan
from repro.engine import faultinject
from repro.engine.canonical import CacheEntry, CanonicalKey

try:  # POSIX only; on platforms without fcntl the store runs unlocked.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

#: File magic: "Repro Verdict Store", format generation 1.
MAGIC = b"RVS1"

#: Schema version of the pickled payloads.  Bump whenever CacheEntry,
#: TestPlan, or the canonical-key layout changes shape; an on-disk
#: mismatch rebuilds the store instead of deserializing stale data.
SCHEMA_VERSION = 1

_HEADER = struct.Struct("<4sI")
_FRAME = struct.Struct("<II")

#: Appends between automatic fsync'd checkpoints.  Records lost in a
#: crash are bounded by this window (minus explicit chunk/routine
#: checkpoints, which flush eagerly).
CHECKPOINT_INTERVAL = 64

#: A single record larger than this is treated as framing corruption:
#: real records are a few KB, so a length field this big is garbage.
MAX_RECORD_SIZE = 64 * 1024 * 1024

#: Lock-acquisition schedule: attempts and linear backoff base (seconds).
LOCK_RETRIES = 5
LOCK_BACKOFF = 0.05


class StoreError(Exception):
    """Base class for verdict-store failures."""


class StoreLockError(StoreError):
    """The store is locked by another live process (after bounded retry)."""


@dataclass
class StoreReport:
    """What a scan of a store file found (see :meth:`VerdictStore.scan`).

    ``problems`` holds one human-readable line per defect; ``truncated_at``
    is the byte offset a repairing open would cut the file back to (None
    when the tail is clean); ``rebuilt`` marks a magic/schema mismatch
    (the whole file is discarded on open).
    """

    path: Path
    size: int = 0
    version: Optional[int] = None
    verdicts: int = 0
    plans: int = 0
    chunks: int = 0
    runs: int = 0
    records: int = 0
    dropped: int = 0
    truncated_at: Optional[int] = None
    rebuilt: bool = False
    problems: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every byte of the file parsed as a valid record."""
        return not self.problems

    def lines(self) -> List[str]:
        """Line-item report (path, counts, then one line per problem)."""
        out = [
            f"store {self.path}: {self.size} bytes, schema "
            f"{'?' if self.version is None else self.version}",
            f"  {self.verdicts} verdict(s), {self.plans} plan(s), "
            f"{self.chunks} chunk marker(s), {self.runs} run marker(s) "
            f"in {self.records} record(s)",
        ]
        for problem in self.problems:
            out.append(f"  PROBLEM: {problem}")
        if self.clean:
            out.append("  clean: no corruption found")
        return out


def _write_header(handle: io.BufferedWriter) -> None:
    handle.write(_HEADER.pack(MAGIC, SCHEMA_VERSION))


def _encode_record(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _atomic_create(path: Path, body: bytes = b"") -> None:
    """Write header (+ optional body) to a temp file, fsync, rename over."""
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as tmp:
            _write_header(tmp)
            if body:
                tmp.write(body)
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    """Make a rename durable (best-effort on filesystems without dir fds)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic fs
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - exotic fs
        pass
    finally:
        os.close(fd)


class _FileLock:
    """Advisory exclusive lock on a ``<store>.lock`` sidecar file.

    ``fcntl.flock`` releases automatically when the holder dies, so a
    crashed writer never wedges the store; the PID written into the file
    only serves diagnostics (naming the live holder, or flagging a stale
    PID from a dead one on contention races).
    """

    def __init__(self, path: Path):
        self.path = path
        self._handle: Optional[io.TextIOWrapper] = None

    def acquire(self, retries: int = LOCK_RETRIES, backoff: float = LOCK_BACKOFF) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX
            return
        handle = open(self.path, "a+")
        for attempt in range(1, retries + 1):
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                if attempt == retries:
                    holder = self._holder(handle)
                    handle.close()
                    raise StoreLockError(
                        f"store {self.path.with_suffix('')} is locked by "
                        f"{holder} (gave up after {retries} attempts)"
                    )
                time.sleep(backoff * attempt)
            else:
                handle.seek(0)
                handle.truncate()
                handle.write(f"{os.getpid()}\n")
                handle.flush()
                self._handle = handle
                return

    def _holder(self, handle: io.TextIOWrapper) -> str:
        try:
            handle.seek(0)
            pid = int(handle.read().strip() or "0")
        except (OSError, ValueError):
            return "an unknown process"
        if pid <= 0:
            return "an unknown process"
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            # The flock is held yet the recorded PID is dead: the lock
            # was re-acquired between our flock attempt and this read.
            return f"pid {pid} (stale: process is gone)"
        except PermissionError:  # pragma: no cover - other-user process
            pass
        return f"pid {pid}"

    def release(self) -> None:
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - lock already gone
                pass
        handle.close()


class VerdictStore:
    """Append-only, crash-safe on-disk verdict and plan store.

    Open-or-create at ``path``; the whole live state loads into memory on
    open (a corpus store holds a few thousand small entries), appends go
    to the tail, and :meth:`checkpoint` makes them durable.  All mutation
    goes through one process at a time (advisory lock); readers use the
    lock-free :meth:`scan` classmethod.
    """

    def __init__(
        self,
        path: os.PathLike,
        checkpoint_interval: int = CHECKPOINT_INTERVAL,
        lock: bool = True,
    ):
        self.path = Path(path)
        self.checkpoint_interval = max(int(checkpoint_interval), 1)
        self._verdicts: Dict[CanonicalKey, CacheEntry] = {}
        self._plans: Dict[CanonicalKey, TestPlan] = {}
        self._chunks: Set[Tuple[str, int, int]] = set()
        self._runs: List[Tuple[str, str]] = []
        self._dirty = 0
        self.recovered_report: Optional[StoreReport] = None
        self._lock = _FileLock(self.path.with_name(self.path.name + ".lock"))
        if lock:
            self._lock.acquire()
        try:
            self._handle = self._open_and_recover()
        except BaseException:
            self._lock.release()
            raise

    # -- open / recovery -------------------------------------------------

    def _open_and_recover(self) -> io.BufferedRandom:
        if not self.path.exists():
            _atomic_create(self.path)
        report = self.scan(self.path, into=self)
        self.recovered_report = report
        if report.rebuilt:
            # Wrong magic or schema: discard and start clean.  Verdicts
            # are pure derived data, so a rebuild can never lose truth.
            self._verdicts.clear()
            self._plans.clear()
            self._chunks.clear()
            self._runs.clear()
            _atomic_create(self.path)
            print(
                f"repro-deps: store {self.path}: {report.problems[0]}; "
                "rebuilt empty",
                file=sys.stderr,
            )
        handle = open(self.path, "r+b")
        if not report.rebuilt and report.truncated_at is not None:
            # Torn tail from a crashed writer: cut back to the last valid
            # record boundary.  Never trust a bad record.
            handle.truncate(report.truncated_at)
            handle.flush()
            os.fsync(handle.fileno())
            print(
                f"repro-deps: store {self.path}: dropped corrupt tail at "
                f"byte {report.truncated_at} ({report.problems[-1]})",
                file=sys.stderr,
            )
        handle.seek(0, os.SEEK_END)
        return handle

    @classmethod
    def scan(
        cls, path: os.PathLike, into: Optional["VerdictStore"] = None
    ) -> StoreReport:
        """Parse a store file without repairing it; returns a report.

        ``into`` (internal) additionally loads live state into a store
        instance.  Used by ``repro-deps store verify``/``info`` and by
        the repairing open.
        """
        path = Path(path)
        report = StoreReport(path=path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            report.problems.append(f"cannot read: {exc.strerror or exc}")
            return report
        report.size = len(data)
        if len(data) < _HEADER.size:
            report.rebuilt = True
            report.problems.append(
                f"header truncated ({len(data)} bytes, need {_HEADER.size})"
            )
            return report
        magic, version = _HEADER.unpack_from(data, 0)
        if magic != MAGIC:
            report.rebuilt = True
            report.problems.append(f"bad magic {magic!r} (want {MAGIC!r})")
            return report
        report.version = version
        if version != SCHEMA_VERSION:
            report.rebuilt = True
            report.problems.append(
                f"schema version {version} (this build writes {SCHEMA_VERSION})"
            )
            return report
        offset = _HEADER.size
        while offset < len(data):
            if offset + _FRAME.size > len(data):
                report.truncated_at = offset
                report.problems.append(
                    f"torn record frame at byte {offset} "
                    f"({len(data) - offset} trailing byte(s))"
                )
                break
            length, crc = _FRAME.unpack_from(data, offset)
            start = offset + _FRAME.size
            end = start + length
            if length > MAX_RECORD_SIZE or end > len(data):
                report.truncated_at = offset
                report.problems.append(
                    f"torn record at byte {offset} "
                    f"(claims {length} payload byte(s))"
                )
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                report.truncated_at = offset
                report.problems.append(f"CRC mismatch at byte {offset}")
                break
            report.records += 1
            try:
                record = pickle.loads(payload)
                kind = record[0]
            except Exception as exc:
                # Framing and CRC are sound, so the stream resyncs at the
                # next record: drop just this one.
                report.dropped += 1
                report.problems.append(
                    f"undecodable record at byte {offset} dropped "
                    f"({type(exc).__name__})"
                )
                offset = end
                continue
            if kind == "v":
                report.verdicts += 1
                if into is not None:
                    into._verdicts[record[1]] = record[2]
            elif kind == "p":
                report.plans += 1
                if into is not None:
                    into._plans[record[1]] = record[2]
            elif kind == "c":
                report.chunks += 1
                if into is not None:
                    into._chunks.add((record[1], record[2], record[3]))
            elif kind == "r":
                report.runs += 1
                if into is not None:
                    into._runs.append((record[1], record[2]))
            else:
                report.dropped += 1
                report.problems.append(
                    f"unknown record kind {kind!r} at byte {offset} dropped"
                )
            offset = end
        return report

    # -- sizes -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._verdicts)

    @property
    def plan_count(self) -> int:
        return len(self._plans)

    @property
    def closed(self) -> bool:
        return self._handle is None

    # -- reads -----------------------------------------------------------

    def get(self, key: CanonicalKey) -> Optional[CacheEntry]:
        return self._verdicts.get(key)

    def contains(self, key: CanonicalKey) -> bool:
        return key in self._verdicts

    def get_plan(self, key: CanonicalKey) -> Optional[TestPlan]:
        return self._plans.get(key)

    def chunk_done(self, token: str, build: int, seq: int) -> bool:
        return (token, build, seq) in self._chunks

    def chunks_done(self, token: str) -> Set[Tuple[int, int]]:
        """Completed ``(build, seq)`` markers recorded under ``token``."""
        return {(b, s) for t, b, s in self._chunks if t == token}

    def runs(self) -> List[Tuple[str, str]]:
        """Every ``(token, label)`` run marker, in append order."""
        return list(self._runs)

    # -- writes ----------------------------------------------------------

    def _append(self, record: Tuple) -> None:
        if self._handle is None:
            raise StoreError(f"store {self.path} is closed")
        payload = pickle.dumps(record, protocol=4)
        self._handle.write(_encode_record(payload))
        self._dirty += 1
        faultinject.on_store_append()
        if self._dirty >= self.checkpoint_interval:
            self.checkpoint()

    def put(self, key: CanonicalKey, entry: CacheEntry) -> None:
        """Persist one verdict.  Assumed (degraded) verdicts are refused."""
        if entry.assumed:
            raise StoreError(
                "assumed verdicts are never persisted "
                "(conservative-degradation contamination guarantee)"
            )
        if self._verdicts.get(key) is not None:
            return
        self._append(("v", key, entry))
        self._verdicts[key] = entry

    def put_plan(self, key: CanonicalKey, plan: TestPlan) -> None:
        if self._plans.get(key) is not None:
            return
        self._append(("p", key, plan))
        self._plans[key] = plan

    def mark_chunk(self, token: str, build: int, seq: int) -> None:
        marker = (token, build, seq)
        if marker in self._chunks:
            return
        self._append(("c", token, build, seq))
        self._chunks.add(marker)

    def mark_run(self, token: str, label: str) -> None:
        self._append(("r", token, label))
        self._runs.append((token, label))

    def checkpoint(self) -> None:
        """Flush and fsync buffered appends (a durability barrier)."""
        if self._handle is None or self._dirty == 0:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._dirty = 0

    def compact(self) -> Tuple[int, int]:
        """Rewrite the live state as one fresh segment; ``(before, after)``.

        Drops superseded duplicates and every undecodable record; written
        via temp file + atomic rename, so a crash mid-compaction leaves
        the old segment untouched.
        """
        if self._handle is None:
            raise StoreError(f"store {self.path} is closed")
        self.checkpoint()
        before = self.path.stat().st_size
        body = io.BytesIO()
        for key, entry in self._verdicts.items():
            body.write(_encode_record(pickle.dumps(("v", key, entry), protocol=4)))
        for key, plan in self._plans.items():
            body.write(_encode_record(pickle.dumps(("p", key, plan), protocol=4)))
        for token, build, seq in sorted(self._chunks):
            body.write(
                _encode_record(pickle.dumps(("c", token, build, seq), protocol=4))
            )
        for token, label in self._runs[-1:]:
            # Only the latest run marker stays relevant after compaction.
            body.write(_encode_record(pickle.dumps(("r", token, label), protocol=4)))
        self._runs = self._runs[-1:]
        self._handle.close()
        self._handle = None
        _atomic_create(self.path, body.getvalue())
        self._handle = open(self.path, "r+b")
        self._handle.seek(0, os.SEEK_END)
        self._dirty = 0
        return before, self.path.stat().st_size

    def close(self) -> None:
        """Checkpoint and release the file and its lock (idempotent)."""
        if self._handle is not None:
            try:
                self.checkpoint()
            finally:
                self._handle.close()
                self._handle = None
        self._lock.release()

    def __enter__(self) -> "VerdictStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"VerdictStore({str(self.path)!r}, {len(self)} verdicts, "
            f"{self.plan_count} plans, {state})"
        )
