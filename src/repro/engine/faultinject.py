"""Deterministic fault injection for the engine's recovery paths.

Recovery code that only runs when something breaks is untestable unless
something can be *made* to break on demand.  This module turns the
``REPRO_FAULTS`` environment variable into deterministic faults at the
engine's seams:

* ``crash-chunk:<seq>`` — the worker process handling dispatch chunk
  ``<seq>`` dies with ``os._exit`` before testing it (simulates an OOM
  kill / segfault; the parent sees ``BrokenProcessPool``);
* ``hang-chunk:<seq>[:<seconds>]`` — the worker handling chunk ``<seq>``
  sleeps (default 30 s) before testing it, tripping the supervisor's
  chunk timeout;
* ``pair-error:<array>`` — every dependence test on a pair referencing
  array ``<array>`` raises :class:`InjectedFaultError` (simulates an
  in-test crash; fires in workers and in-process alike);
* ``pair-delay:<seconds>`` — every dependence test (the cache-miss
  path) sleeps first, throttling one process relative to another so
  concurrent-writer interleavings become reproducible;
* ``routine-error:<name>`` — analyzing routine ``<name>`` raises
  (simulates a routine the pipeline cannot digest);
* ``store-die:<n>[:<shard>]`` — the process dies with ``os._exit``
  immediately after the ``n``-th record appended to a persistent verdict
  store (simulates a SIGKILL landing mid-write at a deterministic point;
  the kill-and-resume tests and CI job are built on it).  With a shard
  argument (a shard id or ``meta``) only appends landing in that shard
  count, so a kill can be aimed at one segment of a sharded store;
* ``lock-hold:<seconds>[:<shard>]`` — every shard-lock acquisition (or
  only ``<shard>``'s) sleeps while *holding* the lock, forcing the
  contention window open so backoff/starvation paths actually run;
* ``corrupt-shard:<shard>`` — the first time this process opens that
  shard's segment, garbage bytes are appended to it (a synthetic torn
  tail), exercising per-shard recovery and quarantine in situ.

Directives are comma-separated (``REPRO_FAULTS=crash-chunk:0,pair-error:a``).
Chunk faults are *worker-scoped*: :data:`IN_WORKER` is set by the pool
initializer, so a chunk re-run serially in the parent — the supervisor's
recovery path — computes real results instead of re-tripping the fault.
Parsing is cached per spec string and the unset-env fast path is a single
dict lookup, so production runs pay nothing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple, Union

ENV_VAR = "REPRO_FAULTS"

#: Default sleep for ``hang-chunk`` directives without an explicit
#: duration — long enough to trip any sane chunk timeout, short enough
#: that a leaked sleeping worker cannot stall interpreter shutdown badly.
DEFAULT_HANG_SECONDS = 30.0

#: True only inside pool worker processes (set by the pool initializer);
#: chunk-scoped faults check it so parent-side serial recovery is clean.
IN_WORKER = False

#: A shard selector in a directive: a shard id, ``"meta"``, or None for
#: "any shard".
ShardSel = Optional[Union[int, str]]


class InjectedFaultError(RuntimeError):
    """The deterministic failure raised by ``pair-error``/``routine-error``."""


def _parse_shard(arg: str) -> ShardSel:
    return int(arg) if arg.lstrip("-").isdigit() else arg.lower()


@dataclass(frozen=True)
class FaultPlan:
    """Parsed form of one ``REPRO_FAULTS`` spec."""

    crash_chunks: FrozenSet[int] = frozenset()
    hang_chunks: Dict[int, float] = field(default_factory=dict)
    pair_arrays: FrozenSet[str] = frozenset()
    pair_delay: Optional[float] = None
    routines: FrozenSet[str] = frozenset()
    store_die: Optional[int] = None
    store_die_shard: ShardSel = None
    lock_hold: Optional[float] = None
    lock_hold_shard: ShardSel = None
    corrupt_shards: FrozenSet[Union[int, str]] = frozenset()

    @property
    def empty(self) -> bool:
        return not (
            self.crash_chunks
            or self.hang_chunks
            or self.pair_arrays
            or self.pair_delay is not None
            or self.routines
            or self.store_die is not None
            or self.lock_hold is not None
            or self.corrupt_shards
        )


def parse_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string; unknown directives are ignored."""
    crash = set()
    hang: Dict[int, float] = {}
    arrays = set()
    pair_delay: Optional[float] = None
    routines = set()
    store_die: Optional[int] = None
    store_die_shard: ShardSel = None
    lock_hold: Optional[float] = None
    lock_hold_shard: ShardSel = None
    corrupt: Set[Union[int, str]] = set()
    for raw in spec.split(","):
        directive = raw.strip()
        if not directive:
            continue
        parts = directive.split(":")
        name, args = parts[0], parts[1:]
        try:
            if name == "crash-chunk" and args:
                crash.add(int(args[0]))
            elif name == "hang-chunk" and args:
                seconds = float(args[1]) if len(args) > 1 else DEFAULT_HANG_SECONDS
                hang[int(args[0])] = seconds
            elif name == "pair-error" and args:
                arrays.add(args[0].lower())
            elif name == "pair-delay" and args:
                pair_delay = float(args[0])
            elif name == "routine-error" and args:
                routines.add(args[0].lower())
            elif name == "store-die" and args:
                store_die = int(args[0])
                if len(args) > 1:
                    store_die_shard = _parse_shard(args[1])
            elif name == "lock-hold" and args:
                lock_hold = float(args[0])
                if len(args) > 1:
                    lock_hold_shard = _parse_shard(args[1])
            elif name == "corrupt-shard" and args:
                corrupt.add(_parse_shard(args[0]))
        except ValueError:
            continue
    return FaultPlan(
        crash_chunks=frozenset(crash),
        hang_chunks=hang,
        pair_arrays=frozenset(arrays),
        pair_delay=pair_delay,
        routines=frozenset(routines),
        store_die=store_die,
        store_die_shard=store_die_shard,
        lock_hold=lock_hold,
        lock_hold_shard=lock_hold_shard,
        corrupt_shards=frozenset(corrupt),
    )


# Parsed-plan cache keyed by the raw spec string, so env flips between
# tests re-parse while steady-state runs parse once.
_PLANS: Dict[str, FaultPlan] = {}


def active_plan() -> Optional[FaultPlan]:
    """The plan for the current environment (None when no faults armed)."""
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return None
    plan = _PLANS.get(spec)
    if plan is None:
        if len(_PLANS) > 64:
            _PLANS.clear()
        plan = _PLANS[spec] = parse_spec(spec)
    return None if plan.empty else plan


def on_chunk(seq: int) -> None:
    """Worker-side hook, called before testing dispatch chunk ``seq``."""
    if not IN_WORKER:
        return
    plan = active_plan()
    if plan is None:
        return
    if seq in plan.crash_chunks:
        os._exit(3)
    seconds = plan.hang_chunks.get(seq)
    if seconds is not None:
        time.sleep(seconds)


def on_pair(array: str) -> None:
    """Per-pair hook, called on the test (cache-miss) path everywhere."""
    plan = active_plan()
    if plan is None:
        return
    if plan.pair_delay is not None:
        time.sleep(plan.pair_delay)
    if array.lower() in plan.pair_arrays:
        raise InjectedFaultError(f"injected fault testing array '{array}'")


def on_routine(name: str) -> None:
    """Per-routine hook, called as corpus/CLI loops enter a routine."""
    plan = active_plan()
    if plan is not None and name.lower() in plan.routines:
        raise InjectedFaultError(f"injected fault analyzing routine '{name}'")


def _shard_matches(selector: ShardSel, shard: ShardSel) -> bool:
    if selector is None:
        return True
    if isinstance(selector, str):
        return isinstance(shard, str) and shard.lower() == selector
    return shard == selector


# Appends this process has made to any verdict store (store-die counter).
_STORE_APPENDS = 0


def on_store_append(shard: ShardSel = None) -> None:
    """Per-record hook, called after each verdict-store append.

    ``store-die:<n>`` kills the process *uncleanly* (no flush, no atexit,
    no lock release beyond what the OS reclaims) right after the n-th
    append, leaving whatever the page cache happened to hold — the same
    torn-tail state a SIGKILL or power loss produces.  ``shard`` is the
    segment the record landed in (an id or ``"meta"``); a shard-scoped
    directive only counts matching appends.
    """
    global _STORE_APPENDS
    plan = active_plan()
    if plan is None or plan.store_die is None:
        return
    if not _shard_matches(plan.store_die_shard, shard):
        return
    _STORE_APPENDS += 1
    if _STORE_APPENDS >= plan.store_die:
        os._exit(9)


def on_lock_held(shard: ShardSel = None) -> None:
    """Called immediately after a shard lock is acquired (still held).

    ``lock-hold:<seconds>[:<shard>]`` widens every critical section so
    concurrent writers actually collide, making backoff and starvation
    paths deterministic enough to test.
    """
    plan = active_plan()
    if plan is None or plan.lock_hold is None:
        return
    if _shard_matches(plan.lock_hold_shard, shard):
        time.sleep(plan.lock_hold)


# Segment paths this process has already corrupted (corrupt once, so the
# recovery that follows sees a stable, not perpetually rotting, file).
_CORRUPTED: Set[str] = set()


def on_segment_open(path: os.PathLike, shard: ShardSel = None) -> None:
    """Called before a store opens/recovers a segment file.

    ``corrupt-shard:<shard>`` appends garbage to the matching segment
    the first time this process opens it — a synthetic torn tail that
    must be repaired (under lock) or quarantined, never propagated.
    """
    plan = active_plan()
    if plan is None or not plan.corrupt_shards:
        return
    if not any(_shard_matches(sel, shard) for sel in plan.corrupt_shards):
        return
    key = str(path)
    if key in _CORRUPTED:
        return
    _CORRUPTED.add(key)
    try:
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef torn")
    except OSError:
        pass
