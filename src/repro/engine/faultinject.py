"""Deterministic fault injection for the engine's recovery paths.

Recovery code that only runs when something breaks is untestable unless
something can be *made* to break on demand.  This module turns the
``REPRO_FAULTS`` environment variable into deterministic faults at the
engine's seams:

* ``crash-chunk:<seq>`` — the worker process handling dispatch chunk
  ``<seq>`` dies with ``os._exit`` before testing it (simulates an OOM
  kill / segfault; the parent sees ``BrokenProcessPool``);
* ``hang-chunk:<seq>[:<seconds>]`` — the worker handling chunk ``<seq>``
  sleeps (default 30 s) before testing it, tripping the supervisor's
  chunk timeout;
* ``pair-error:<array>`` — every dependence test on a pair referencing
  array ``<array>`` raises :class:`InjectedFaultError` (simulates an
  in-test crash; fires in workers and in-process alike);
* ``pair-delay:<seconds>`` — every dependence test (the cache-miss
  path) sleeps first, throttling one process relative to another so
  concurrent-writer interleavings become reproducible;
* ``routine-error:<name>`` — analyzing routine ``<name>`` raises
  (simulates a routine the pipeline cannot digest);
* ``store-die:<n>[:<shard>]`` — the process dies with ``os._exit``
  immediately after the ``n``-th record appended to a persistent verdict
  store (simulates a SIGKILL landing mid-write at a deterministic point;
  the kill-and-resume tests and CI job are built on it).  With a shard
  argument (a shard id or ``meta``) only appends landing in that shard
  count, so a kill can be aimed at one segment of a sharded store;
* ``lock-hold:<seconds>[:<shard>]`` — every shard-lock acquisition (or
  only ``<shard>``'s) sleeps while *holding* the lock, forcing the
  contention window open so backoff/starvation paths actually run;
* ``corrupt-shard:<shard>`` — the first time this process opens that
  shard's segment, garbage bytes are appended to it (a synthetic torn
  tail), exercising per-shard recovery and quarantine in situ;
* ``slow-handler:<seconds>[:<n>]`` — the analysis service's request
  handler sleeps before analyzing (all requests, or only the first
  ``<n>``), holding its in-flight slot so deadline, backpressure, and
  load-shedding paths become deterministic;
* ``reject-store:<n>`` — the first ``<n>`` verdict/plan writes to a
  persistent store raise :class:`InjectedFaultError` (simulates a store
  gone bad mid-run: the driver degrades to memory-only and the service's
  store breaker trips, then recovers once the fault budget is spent);
* ``kill-mid-request:<n>`` — the service process dies with ``os._exit``
  while handling its ``<n>``-th analysis request (a crash with requests
  in flight: clients see a dropped connection, the store must recover);
* ``die-file:<n>`` — the corpus streaming driver dies with ``os._exit``
  as it enters its ``<n>``-th file (a SIGKILL at a file boundary; the
  corpus kill-and-resume gate is built on it);
* ``die-compact:<n>`` — the process dies right before the ``<n>``-th
  shard rewrite of a store compaction commits (mid-compaction crash:
  already-swapped shards are new, the dying shard's old segment must
  survive intact);
* ``fake-rss:<mb>`` — the corpus driver's RSS watermark probe reports
  this value instead of reading ``/proc``, making memory-backpressure
  throttling deterministic.

Terminal directives (``store-die``, ``kill-mid-request``, ``die-file``,
``die-compact``) honor the
``REPRO_FAULT_MARKER`` environment variable: the file it names is
created immediately before the process dies, so harnesses can assert
the kill actually fired rather than inferring it from an exit code.

Directives are comma-separated (``REPRO_FAULTS=crash-chunk:0,pair-error:a``).
Chunk faults are *worker-scoped*: :data:`IN_WORKER` is set by the pool
initializer, so a chunk re-run serially in the parent — the supervisor's
recovery path — computes real results instead of re-tripping the fault.
Parsing is cached per spec string and the unset-env fast path is a single
dict lookup, so production runs pay nothing.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple, Union

ENV_VAR = "REPRO_FAULTS"

#: Path of a file to create right before a terminal fault directive
#: (``store-die``, ``kill-mid-request``) kills the process.  Harnesses
#: set it per subprocess and assert the marker exists, proving the kill
#: fired rather than the run merely finishing with a suggestive code.
MARKER_ENV_VAR = "REPRO_FAULT_MARKER"

#: Default sleep for ``hang-chunk`` directives without an explicit
#: duration — long enough to trip any sane chunk timeout, short enough
#: that a leaked sleeping worker cannot stall interpreter shutdown badly.
DEFAULT_HANG_SECONDS = 30.0

#: True only inside pool worker processes (set by the pool initializer);
#: chunk-scoped faults check it so parent-side serial recovery is clean.
IN_WORKER = False

#: A shard selector in a directive: a shard id, ``"meta"``, or None for
#: "any shard".
ShardSel = Optional[Union[int, str]]


class InjectedFaultError(RuntimeError):
    """The deterministic failure raised by ``pair-error``/``routine-error``."""


def _parse_shard(arg: str) -> ShardSel:
    return int(arg) if arg.lstrip("-").isdigit() else arg.lower()


@dataclass(frozen=True)
class FaultPlan:
    """Parsed form of one ``REPRO_FAULTS`` spec."""

    crash_chunks: FrozenSet[int] = frozenset()
    hang_chunks: Dict[int, float] = field(default_factory=dict)
    pair_arrays: FrozenSet[str] = frozenset()
    pair_delay: Optional[float] = None
    routines: FrozenSet[str] = frozenset()
    store_die: Optional[int] = None
    store_die_shard: ShardSel = None
    lock_hold: Optional[float] = None
    lock_hold_shard: ShardSel = None
    corrupt_shards: FrozenSet[Union[int, str]] = frozenset()
    slow_handler: Optional[float] = None
    slow_handler_count: Optional[int] = None
    reject_store: Optional[int] = None
    kill_request: Optional[int] = None
    die_file: Optional[int] = None
    die_compact: Optional[int] = None
    fake_rss_mb: Optional[float] = None

    @property
    def empty(self) -> bool:
        return not (
            self.crash_chunks
            or self.hang_chunks
            or self.pair_arrays
            or self.pair_delay is not None
            or self.routines
            or self.store_die is not None
            or self.lock_hold is not None
            or self.corrupt_shards
            or self.slow_handler is not None
            or self.reject_store is not None
            or self.kill_request is not None
            or self.die_file is not None
            or self.die_compact is not None
            or self.fake_rss_mb is not None
        )


def parse_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string; unknown directives are ignored."""
    crash = set()
    hang: Dict[int, float] = {}
    arrays = set()
    pair_delay: Optional[float] = None
    routines = set()
    store_die: Optional[int] = None
    store_die_shard: ShardSel = None
    lock_hold: Optional[float] = None
    lock_hold_shard: ShardSel = None
    corrupt: Set[Union[int, str]] = set()
    slow_handler: Optional[float] = None
    slow_handler_count: Optional[int] = None
    reject_store: Optional[int] = None
    kill_request: Optional[int] = None
    die_file: Optional[int] = None
    die_compact: Optional[int] = None
    fake_rss_mb: Optional[float] = None
    for raw in spec.split(","):
        directive = raw.strip()
        if not directive:
            continue
        parts = directive.split(":")
        name, args = parts[0], parts[1:]
        try:
            if name == "crash-chunk" and args:
                crash.add(int(args[0]))
            elif name == "hang-chunk" and args:
                seconds = float(args[1]) if len(args) > 1 else DEFAULT_HANG_SECONDS
                hang[int(args[0])] = seconds
            elif name == "pair-error" and args:
                arrays.add(args[0].lower())
            elif name == "pair-delay" and args:
                pair_delay = float(args[0])
            elif name == "routine-error" and args:
                routines.add(args[0].lower())
            elif name == "store-die" and args:
                store_die = int(args[0])
                if len(args) > 1:
                    store_die_shard = _parse_shard(args[1])
            elif name == "lock-hold" and args:
                lock_hold = float(args[0])
                if len(args) > 1:
                    lock_hold_shard = _parse_shard(args[1])
            elif name == "corrupt-shard" and args:
                corrupt.add(_parse_shard(args[0]))
            elif name == "slow-handler" and args:
                slow_handler = float(args[0])
                if len(args) > 1:
                    slow_handler_count = int(args[1])
            elif name == "reject-store" and args:
                reject_store = int(args[0])
            elif name == "kill-mid-request" and args:
                kill_request = int(args[0])
            elif name == "die-file" and args:
                die_file = int(args[0])
            elif name == "die-compact" and args:
                die_compact = int(args[0])
            elif name == "fake-rss" and args:
                fake_rss_mb = float(args[0])
        except ValueError:
            continue
    return FaultPlan(
        crash_chunks=frozenset(crash),
        hang_chunks=hang,
        pair_arrays=frozenset(arrays),
        pair_delay=pair_delay,
        routines=frozenset(routines),
        store_die=store_die,
        store_die_shard=store_die_shard,
        lock_hold=lock_hold,
        lock_hold_shard=lock_hold_shard,
        corrupt_shards=frozenset(corrupt),
        slow_handler=slow_handler,
        slow_handler_count=slow_handler_count,
        reject_store=reject_store,
        kill_request=kill_request,
        die_file=die_file,
        die_compact=die_compact,
        fake_rss_mb=fake_rss_mb,
    )


# Parsed-plan cache keyed by the raw spec string, so env flips between
# tests re-parse while steady-state runs parse once.
_PLANS: Dict[str, FaultPlan] = {}


def active_plan() -> Optional[FaultPlan]:
    """The plan for the current environment (None when no faults armed)."""
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return None
    plan = _PLANS.get(spec)
    if plan is None:
        if len(_PLANS) > 64:
            _PLANS.clear()
        plan = _PLANS[spec] = parse_spec(spec)
    return None if plan.empty else plan


def on_chunk(seq: int) -> None:
    """Worker-side hook, called before testing dispatch chunk ``seq``."""
    if not IN_WORKER:
        return
    plan = active_plan()
    if plan is None:
        return
    if seq in plan.crash_chunks:
        os._exit(3)
    seconds = plan.hang_chunks.get(seq)
    if seconds is not None:
        time.sleep(seconds)


def on_pair(array: str) -> None:
    """Per-pair hook, called on the test (cache-miss) path everywhere."""
    plan = active_plan()
    if plan is None:
        return
    if plan.pair_delay is not None:
        time.sleep(plan.pair_delay)
    if array.lower() in plan.pair_arrays:
        raise InjectedFaultError(f"injected fault testing array '{array}'")


def on_routine(name: str) -> None:
    """Per-routine hook, called as corpus/CLI loops enter a routine."""
    plan = active_plan()
    if plan is not None and name.lower() in plan.routines:
        raise InjectedFaultError(f"injected fault analyzing routine '{name}'")


def _shard_matches(selector: ShardSel, shard: ShardSel) -> bool:
    if selector is None:
        return True
    if isinstance(selector, str):
        return isinstance(shard, str) and shard.lower() == selector
    return shard == selector


def _drop_marker() -> None:
    """Create the :data:`MARKER_ENV_VAR` file, if one is configured.

    Called on the way into an ``os._exit`` so the harness that armed the
    fault can verify it actually fired; the write is best-effort (the
    process is about to die regardless).
    """
    path = os.environ.get(MARKER_ENV_VAR)
    if not path:
        return
    try:
        with open(path, "a") as handle:
            handle.write(f"{os.getpid()}\n")
            handle.flush()
            os.fsync(handle.fileno())
    except OSError:
        pass


# Appends this process has made to any verdict store (store-die counter).
_STORE_APPENDS = 0


def on_store_append(shard: ShardSel = None) -> None:
    """Per-record hook, called after each verdict-store append.

    ``store-die:<n>`` kills the process *uncleanly* (no flush, no atexit,
    no lock release beyond what the OS reclaims) right after the n-th
    append, leaving whatever the page cache happened to hold — the same
    torn-tail state a SIGKILL or power loss produces.  ``shard`` is the
    segment the record landed in (an id or ``"meta"``); a shard-scoped
    directive only counts matching appends.
    """
    global _STORE_APPENDS
    plan = active_plan()
    if plan is None or plan.store_die is None:
        return
    if not _shard_matches(plan.store_die_shard, shard):
        return
    _STORE_APPENDS += 1
    if _STORE_APPENDS >= plan.store_die:
        _drop_marker()
        os._exit(9)


# Store put attempts this process has made (reject-store counter).
_STORE_PUTS = 0


def on_store_put() -> None:
    """Per-write hook, called as a verdict/plan write enters the store.

    ``reject-store:<n>`` fails the first ``n`` writes with
    :class:`InjectedFaultError` — before anything is buffered — so the
    engine's memory-only degradation and the service's store circuit
    breaker can be driven deterministically, and recovery can be
    observed once the fault budget is spent.
    """
    global _STORE_PUTS
    plan = active_plan()
    if plan is None or plan.reject_store is None:
        return
    if _STORE_PUTS < plan.reject_store:
        _STORE_PUTS += 1
        raise InjectedFaultError(
            f"injected store rejection ({_STORE_PUTS}/{plan.reject_store})"
        )


# Service requests this process has started handling (slow-handler /
# kill-mid-request counters).
_REQUESTS = 0


def on_request() -> None:
    """Per-request hook, called as the analysis service starts a request.

    ``slow-handler:<seconds>[:<n>]`` sleeps while the request holds its
    in-flight slot (every request, or only the first ``n``), making
    queue-full load shedding and deadline expiry reproducible.
    ``kill-mid-request:<n>`` kills the whole service process (uncleanly,
    marker dropped first) at the start of the ``n``-th request.
    """
    global _REQUESTS
    plan = active_plan()
    if plan is None:
        return
    _REQUESTS += 1
    if plan.kill_request is not None and _REQUESTS >= plan.kill_request:
        _drop_marker()
        os._exit(11)
    if plan.slow_handler is not None:
        count = plan.slow_handler_count
        if count is None or _REQUESTS <= count:
            time.sleep(plan.slow_handler)


def on_lock_held(shard: ShardSel = None) -> None:
    """Called immediately after a shard lock is acquired (still held).

    ``lock-hold:<seconds>[:<shard>]`` widens every critical section so
    concurrent writers actually collide, making backoff and starvation
    paths deterministic enough to test.
    """
    plan = active_plan()
    if plan is None or plan.lock_hold is None:
        return
    if _shard_matches(plan.lock_hold_shard, shard):
        time.sleep(plan.lock_hold)


# Segment paths this process has already corrupted (corrupt once, so the
# recovery that follows sees a stable, not perpetually rotting, file).
_CORRUPTED: Set[str] = set()


def on_segment_open(path: os.PathLike, shard: ShardSel = None) -> None:
    """Called before a store opens/recovers a segment file.

    ``corrupt-shard:<shard>`` appends garbage to the matching segment
    the first time this process opens it — a synthetic torn tail that
    must be repaired (under lock) or quarantined, never propagated.
    """
    plan = active_plan()
    if plan is None or not plan.corrupt_shards:
        return
    if not any(_shard_matches(sel, shard) for sel in plan.corrupt_shards):
        return
    key = str(path)
    if key in _CORRUPTED:
        return
    _CORRUPTED.add(key)
    try:
        with open(path, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef torn")
    except OSError:
        pass


# Corpus files this process has started streaming (die-file counter).
_CORPUS_FILES = 0


def on_corpus_file(path: os.PathLike) -> None:
    """Called as the corpus streaming driver enters one source file.

    ``die-file:<n>`` kills the process *uncleanly* (marker dropped
    first) as the ``n``-th file is entered — a SIGKILL landing at a
    deterministic file boundary, which is exactly where the streaming
    driver's resume contract must hold: every earlier file's routines
    are durable and skippable, the current file re-analyzes.
    """
    global _CORPUS_FILES
    plan = active_plan()
    if plan is None or plan.die_file is None:
        return
    _CORPUS_FILES += 1
    if _CORPUS_FILES >= plan.die_file:
        _drop_marker()
        os._exit(9)


# Shard rewrites this process's compactions have attempted (die-compact).
_COMPACT_SHARDS = 0


def on_compact(shard: ShardSel = None) -> None:
    """Called right before a compaction commits one shard's rewrite.

    ``die-compact:<n>`` kills the process (marker dropped first) before
    the ``n``-th shard swap: shards compacted earlier hold their new
    segments, the dying shard must still hold its old one — the
    staging + atomic-rename crash-safety contract, made testable.
    """
    global _COMPACT_SHARDS
    plan = active_plan()
    if plan is None or plan.die_compact is None:
        return
    _COMPACT_SHARDS += 1
    if _COMPACT_SHARDS >= plan.die_compact:
        _drop_marker()
        os._exit(9)


def fake_rss() -> Optional[float]:
    """The injected RSS reading in MiB (``fake-rss:<mb>``), or None.

    Lets the corpus driver's memory-watermark throttling run in tests
    without actually ballooning the process.
    """
    plan = active_plan()
    return None if plan is None else plan.fake_rss_mb
