"""Engine observability: cache and fan-out counters.

The study harness threads a :class:`~repro.instrument.TestRecorder`
through the driver to count test applications (the paper's Table 3); the
engine adds :class:`EngineStats` alongside it to count what the *cache*
did — hits, misses, evictions — and how much work the parallel builder
shipped to workers.  The benchmark harness serializes these into
``BENCH_engine.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EngineStats:
    """Counters for one engine (or one :class:`CachedDriver`) lifetime.

    ``hits``/``misses`` count canonical-key lookups; ``evictions`` counts
    LRU drops; ``seeded`` counts entries inserted by the parallel builder
    (worker-produced results adopted without a local miss);
    ``dispatched`` counts pairs actually tested in worker processes.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    seeded: int = 0
    dispatched: int = 0

    @property
    def lookups(self) -> int:
        """Total cache probes."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def merge(self, other: "EngineStats") -> None:
        """Fold another stats object's counters into this one."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.seeded += other.seeded
        self.dispatched += other.dispatched

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = self.misses = self.evictions = 0
        self.seeded = self.dispatched = 0

    def as_dict(self) -> dict:
        """Plain-dict form for JSON serialization."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "seeded": self.seeded,
            "dispatched": self.dispatched,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __str__(self) -> str:
        return (
            f"cache: {self.hits} hits, {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate), {self.evictions} evictions"
        )
