"""Engine observability: cache, plan, and fan-out counters.

The study harness threads a :class:`~repro.instrument.TestRecorder`
through the driver to count test applications (the paper's Table 3); the
engine adds :class:`EngineStats` alongside it to count what the *cache*
did — hits, misses, evictions — how often the precompiled test-plan tier
fired, how much work the parallel builder shipped to workers, and how
often adaptive dispatch chose to stay serial.  An optional
:class:`~repro.engine.profile.PhaseProfile` rides along for per-phase
wall-clock timings.  The benchmark harness serializes all of it into
``BENCH_engine.json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engine.faults import FailureRecord
from repro.engine.profile import PhaseProfile


@dataclass
class EngineStats:
    """Counters for one engine (or one :class:`CachedDriver`) lifetime.

    ``hits``/``store_hits``/``misses`` count canonical-key verdict
    lookups by provenance — served from the in-memory LRU, served from
    the persistent :class:`~repro.engine.store.VerdictStore` (a resumed
    run's prior work), or actually tested; ``store_writes`` counts fresh
    verdicts written through to the store.  ``evictions``
    counts LRU drops; ``seeded`` counts entries inserted by the parallel
    builder (worker-produced results adopted without a local miss);
    ``dispatched`` counts pairs actually tested in worker processes.
    ``plan_hits``/``plan_misses`` count verdict misses that could / could
    not replay a precompiled test plan; ``auto_serial`` counts builds where
    adaptive dispatch predicted the pool would cost more than it saved and
    ran in-process instead.  ``profile`` holds per-phase wall timings when
    the engine was built with profiling on (None otherwise).

    The fault-tolerance layer reports here too: ``assumed`` counts pair
    resolutions degraded to a conservative assumed-dependence verdict,
    ``worker_crashes``/``chunk_timeouts`` count pool faults the supervisor
    absorbed, ``pool_restarts`` counts respawns, ``serial_recoveries``
    counts chunks re-run in the parent after a fault, and
    ``routines_skipped`` counts whole routines the study harness dropped.
    ``failures`` holds one structured :class:`FailureRecord` per absorbed
    failure event, in occurrence order.

    The long-running analysis service (``repro.service``) reports its
    request-level outcomes under the same keys: ``shed_requests`` counts
    admissions refused under overload (503 + ``Retry-After``),
    ``coalesced_requests`` counts requests served by awaiting another
    in-flight computation of the same canonical request key, and
    ``degraded_requests`` counts requests answered with conservative
    partial results (deadline expiry, absorbed faults).  The live
    counters are owned by the service's event loop (which never takes
    the engine lock) and overlaid onto the engine snapshot when
    ``/stats`` renders; the fields here exist so merged or deserialized
    service stats keep their meaning.  They are zero outside service
    runs.

    ``backend_coverage`` holds the batching backend's self-reported
    counters (harvested via ``TestBackend.take_coverage`` after each
    batch): how many pairs ran fully vectorized vs partially vs fell
    back to the per-pair walk, per-lane subscript counts, coupled-group
    lock-step counts, and ``fallback:<reason>`` tallies.  Empty for
    per-pair backends, and covers in-process batches only — worker
    processes keep their own backend instances.
    """

    hits: int = 0
    store_hits: int = 0
    store_foreign_hits: int = 0
    store_writes: int = 0
    misses: int = 0
    evictions: int = 0
    seeded: int = 0
    dispatched: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    auto_serial: int = 0
    assumed: int = 0
    worker_crashes: int = 0
    chunk_timeouts: int = 0
    pool_restarts: int = 0
    serial_recoveries: int = 0
    routines_skipped: int = 0
    shed_requests: int = 0
    coalesced_requests: int = 0
    degraded_requests: int = 0
    backend_coverage: Dict[str, int] = field(default_factory=dict)
    failures: List[FailureRecord] = field(default_factory=list)
    profile: Optional[PhaseProfile] = field(default=None, compare=False)

    @property
    def lookups(self) -> int:
        """Total cache probes (memory hits + store hits + misses)."""
        return self.hits + self.store_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered without testing (0.0 when unused)."""
        total = self.lookups
        return (self.hits + self.store_hits) / total if total else 0.0

    def provenance_report(self) -> str:
        """Where verdicts came from: memory / store / fresh test / assumed.

        The honesty line for degraded-and-resumed runs — an ``assumed``
        count is never hidden inside a hit rate, and store-served
        verdicts are distinguished from this process's own work.
        """
        store = f"{self.store_hits} store hit(s)"
        if self.store_foreign_hits:
            # Served from records a *concurrently running* process landed
            # in a shard after this store opened (folded from the tail),
            # as opposed to a prior run's resident records.
            store += f" ({self.store_foreign_hits} cross-process)"
        text = (
            f"verdict provenance: {self.hits} memory hit(s), "
            f"{store}, {self.misses} tested, "
            f"{self.assumed} assumed"
        )
        coverage = self.coverage_summary()
        if coverage:
            text += f"; {coverage}"
        return text

    def add_coverage(self, counters: Dict[str, int]) -> None:
        """Fold one harvested batch-coverage counter dict into the stats."""
        coverage = self.backend_coverage
        for key, count in counters.items():
            coverage[key] = coverage.get(key, 0) + count

    def coverage_summary(self) -> str:
        """One-line batched/partial/fallback pair split (empty when unused)."""
        coverage = self.backend_coverage
        total = coverage.get("pairs", 0)
        if not total:
            return ""
        batched = coverage.get("pairs_batched", 0)
        partial = coverage.get("pairs_partial", 0)
        fallback = coverage.get("pairs_fallback", 0)
        return (
            f"batched coverage: {batched}/{total} pair(s) fully batched "
            f"({batched / total:.1%}), {partial} partial, {fallback} fallback"
        )

    def coverage_report(self) -> str:
        """Multi-line lane/fallback breakdown (empty string when unused)."""
        summary = self.coverage_summary()
        if not summary:
            return ""
        coverage = self.backend_coverage
        lines = [summary]
        lanes = {
            key[len("lane:"):]: count
            for key, count in coverage.items()
            if key.startswith("lane:")
        }
        if lanes:
            lanes_text = ", ".join(
                f"{name} {count}" for name, count in sorted(lanes.items())
            )
            lines.append(f"  lanes: {lanes_text}")
        groups = coverage.get("delta:groups", 0)
        if groups:
            lines.append(
                f"  coupled groups: {coverage.get('delta:groups_batched', 0)}"
                f"/{groups} pre-run over {coverage.get('delta:rounds', 0)} "
                f"lock-step round(s) "
                f"({coverage.get('delta:inner_lane', 0)} lane / "
                f"{coverage.get('delta:inner_direct', 0)} direct subscript"
                f" test(s))"
            )
        fallbacks = {
            key[len("fallback:"):]: count
            for key, count in coverage.items()
            if key.startswith("fallback:")
        }
        if fallbacks:
            fallback_text = ", ".join(
                f"{name} {count}" for name, count in sorted(fallbacks.items())
            )
            lines.append(f"  fallback reasons: {fallback_text}")
        return "\n".join(lines)

    def record_failure(self, record: FailureRecord) -> None:
        """Append one absorbed-failure report (and bump its kind counter)."""
        self.failures.append(record)
        if record.kind == "worker-crash":
            self.worker_crashes += 1
        elif record.kind == "chunk-timeout":
            self.chunk_timeouts += 1
        elif record.kind == "routine":
            self.routines_skipped += 1

    def merge(self, other: "EngineStats") -> None:
        """Fold another stats object's counters into this one."""
        self.hits += other.hits
        self.store_hits += other.store_hits
        self.store_foreign_hits += other.store_foreign_hits
        self.store_writes += other.store_writes
        self.misses += other.misses
        self.evictions += other.evictions
        self.seeded += other.seeded
        self.dispatched += other.dispatched
        self.plan_hits += other.plan_hits
        self.plan_misses += other.plan_misses
        self.auto_serial += other.auto_serial
        self.assumed += other.assumed
        self.worker_crashes += other.worker_crashes
        self.chunk_timeouts += other.chunk_timeouts
        self.pool_restarts += other.pool_restarts
        self.serial_recoveries += other.serial_recoveries
        self.routines_skipped += other.routines_skipped
        self.shed_requests += other.shed_requests
        self.coalesced_requests += other.coalesced_requests
        self.degraded_requests += other.degraded_requests
        if other.backend_coverage:
            self.add_coverage(other.backend_coverage)
        self.failures.extend(other.failures)
        if other.profile is not None:
            if self.profile is None:
                self.profile = PhaseProfile()
            self.profile.merge(other.profile)

    def reset(self) -> None:
        """Zero every counter (keeps the profile object, zeroing its timers)."""
        self.hits = self.misses = self.evictions = 0
        self.store_hits = self.store_foreign_hits = self.store_writes = 0
        self.seeded = self.dispatched = 0
        self.plan_hits = self.plan_misses = self.auto_serial = 0
        self.assumed = self.worker_crashes = self.chunk_timeouts = 0
        self.pool_restarts = self.serial_recoveries = 0
        self.routines_skipped = 0
        self.shed_requests = self.coalesced_requests = 0
        self.degraded_requests = 0
        self.backend_coverage.clear()
        self.failures.clear()
        if self.profile is not None:
            self.profile.reset()

    @property
    def degraded(self) -> bool:
        """True when any failure was absorbed this lifetime."""
        return bool(self.failures) or self.assumed > 0

    def as_dict(self) -> dict:
        """Plain-dict form for JSON serialization."""
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "seeded": self.seeded,
            "dispatched": self.dispatched,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "auto_serial": self.auto_serial,
            "hit_rate": round(self.hit_rate, 4),
        }
        if self.store_hits or self.store_writes:
            out["store_hits"] = self.store_hits
            out["store_writes"] = self.store_writes
            if self.store_foreign_hits:
                out["store_foreign_hits"] = self.store_foreign_hits
        if self.degraded:
            out["assumed"] = self.assumed
            out["worker_crashes"] = self.worker_crashes
            out["chunk_timeouts"] = self.chunk_timeouts
            out["pool_restarts"] = self.pool_restarts
            out["serial_recoveries"] = self.serial_recoveries
            out["routines_skipped"] = self.routines_skipped
            out["failures"] = [record.as_dict() for record in self.failures]
        if self.shed_requests or self.coalesced_requests or self.degraded_requests:
            out["shed_requests"] = self.shed_requests
            out["coalesced_requests"] = self.coalesced_requests
            out["degraded_requests"] = self.degraded_requests
        if self.backend_coverage:
            out["backend_coverage"] = dict(self.backend_coverage)
        if self.profile is not None:
            out["profile"] = self.profile.as_dict()
        return out

    def failure_report(self) -> str:
        """Multi-line fault report (empty string when nothing degraded)."""
        if not self.degraded:
            return ""
        lines = [
            f"fault report: {len(self.failures)} failure(s), "
            f"{self.assumed} pair verdict(s) assumed dependent",
            f"  {self.provenance_report()}",
        ]
        for record in self.failures:
            lines.append(f"  {record}")
        if self.pool_restarts:
            lines.append(
                f"  pool restarted {self.pool_restarts}x; "
                f"{self.serial_recoveries} chunk(s) recovered serially"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        text = (
            f"cache: {self.hits} hits, {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate), {self.evictions} evictions"
        )
        if self.store_hits or self.store_writes:
            text += (
                f"; store: {self.store_hits} hits, "
                f"{self.store_writes} writes"
            )
            if self.store_foreign_hits:
                text += f" ({self.store_foreign_hits} cross-process)"
        if self.plan_hits or self.plan_misses:
            text += f"; plans: {self.plan_hits} replayed, {self.plan_misses} compiled"
        if self.auto_serial:
            text += f"; auto-serial builds: {self.auto_serial}"
        if self.degraded:
            text += (
                f"; degraded: {self.assumed} assumed, "
                f"{len(self.failures)} failure(s)"
            )
        return text
