"""An LRU outcome cache over the partition-based driver.

:class:`CachedDriver` is a drop-in ``tester`` for
:func:`~repro.graph.depgraph.build_dependence_graph`: it matches the
signature of :func:`~repro.core.driver.test_dependence` but memoizes
verdicts by canonical pair key, so the thousands of structurally identical
reference pairs of a corpus run share one test each.

Recorder parity is exact: every miss runs the real driver against a
private :class:`~repro.instrument.TestRecorder` and stores the counter
delta in the entry; hits and misses alike merge that delta into the
caller's recorder, so Table 3 statistics are byte-identical to a serial
uncached run.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.classify.pairs import PairContext
from repro.core.driver import DependenceResult, test_dependence
from repro.delta.delta import DEFAULT_OPTIONS, DeltaOptions
from repro.engine.canonical import (
    CacheEntry,
    CanonicalKey,
    canonical_pair_key,
    canonicalize_result,
    rehydrate_result,
    rename_map,
)
from repro.engine.stats import EngineStats
from repro.instrument import TestRecorder
from repro.ir.context import SymbolEnv
from repro.ir.loop import AccessSite

#: Default number of canonical entries kept; the whole kernel corpus needs
#: a few hundred, so the default effectively never evicts in practice.
DEFAULT_CAPACITY = 65536


class CachedDriver:
    """Memoizing dependence tester with an LRU eviction policy.

    Usable directly as ``tester=`` for the serial graph builder, and as
    the shared verdict store of the parallel builder (which seeds it with
    worker-produced entries).
    """

    def __init__(
        self,
        symbols: Optional[SymbolEnv] = None,
        capacity: int = DEFAULT_CAPACITY,
        delta_options: DeltaOptions = DEFAULT_OPTIONS,
        stats: Optional[EngineStats] = None,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.symbols = symbols
        self.capacity = capacity
        self.delta_options = delta_options
        self.stats = stats if stats is not None else EngineStats()
        self._entries: "OrderedDict[CanonicalKey, CacheEntry]" = OrderedDict()

    # -- cache primitives ------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, key: CanonicalKey) -> bool:
        """True when ``key`` is resident (does not touch LRU order)."""
        return key in self._entries

    def lookup(self, key: CanonicalKey) -> Optional[CacheEntry]:
        """Fetch an entry and mark it most recently used; counts hit/miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def store(self, key: CanonicalKey, entry: CacheEntry) -> None:
        """Insert an entry, evicting the least recently used past capacity."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def seed(self, key: CanonicalKey, entry: CacheEntry) -> None:
        """Adopt a worker-produced entry without counting a miss."""
        if key not in self._entries:
            self.stats.seeded += 1
        self.store(key, entry)

    def clear(self) -> None:
        """Drop every entry (counters are kept; see ``stats.reset``)."""
        self._entries.clear()

    # -- the tester interface --------------------------------------------

    def prepare(
        self,
        src_site: AccessSite,
        sink_site: AccessSite,
        symbols: Optional[SymbolEnv] = None,
    ) -> Tuple[PairContext, Dict[str, str], CanonicalKey]:
        """Build the context, rename map, and canonical key for one pair."""
        context = PairContext(
            src_site, sink_site, symbols if symbols is not None else self.symbols
        )
        mapping = rename_map(context)
        return context, mapping, canonical_pair_key(context, mapping)

    def resolve(
        self,
        context: PairContext,
        mapping: Dict[str, str],
        key: CanonicalKey,
        recorder: Optional[TestRecorder] = None,
    ) -> DependenceResult:
        """Serve a prepared pair from cache, testing (and filling) on miss."""
        entry = self.lookup(key)
        if entry is not None:
            if recorder is not None:
                recorder.merge(entry.recorder)
            return rehydrate_result(entry, context, mapping)
        local = TestRecorder()
        result = test_dependence(
            context.src_site,
            context.sink_site,
            symbols=context.symbols,
            recorder=local,
            delta_options=self.delta_options,
            context=context,
        )
        self.store(key, canonicalize_result(result, mapping, local))
        if recorder is not None:
            recorder.merge(local)
        return result

    def __call__(
        self,
        src_site: AccessSite,
        sink_site: AccessSite,
        symbols: Optional[SymbolEnv] = None,
        recorder: Optional[TestRecorder] = None,
    ) -> DependenceResult:
        """Drop-in replacement for :func:`~repro.core.driver.test_dependence`."""
        context, mapping, key = self.prepare(src_site, sink_site, symbols)
        return self.resolve(context, mapping, key, recorder)
