"""An LRU outcome cache over the partition-based driver.

:class:`CachedDriver` is a drop-in ``tester`` for
:func:`~repro.graph.depgraph.build_dependence_graph`: it matches the
signature of :func:`~repro.core.driver.test_dependence` but memoizes
verdicts by canonical pair key, so the thousands of structurally identical
reference pairs of a corpus run share one test each.

Below the verdict cache sits a second, cheaper tier: a store of
precompiled :class:`~repro.core.plan.TestPlan` objects, also keyed by
canonical key.  A verdict miss first consults it — a plan hit replays the
recorded partition shape and dispatch decisions, skipping
``partition_subscripts`` and ``classify`` while still running every test
on the pair's own data.  Plans are tiny (a tuple of positions and an enum
per partition), so the plan store holds many more shapes than the verdict
cache and keeps paying off after verdict entries are evicted.

Recorder parity is exact: every miss runs the real driver against a
private :class:`~repro.instrument.TestRecorder` and stores the counter
delta in the entry; hits and misses alike merge that delta into the
caller's recorder, so Table 3 statistics are byte-identical to a serial
uncached run.

An optional third tier sits below both: a crash-safe persistent
:class:`~repro.engine.store.VerdictStore`.  Lookups probe memory first,
then the store (promoting hits into the LRU); fresh verdicts and plans
are written through, so a killed run's successor reopens the store and
serves every previously tested shape without re-testing.  Assumed
(degraded) verdicts never reach the store — PR 3's contamination
guarantee extends across process boundaries.  A store *write* failure
mid-run degrades the driver back to memory-only operation with a
``store`` failure record rather than aborting analysis.
"""

from __future__ import annotations

from collections import OrderedDict
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.backends import BatchItem, TestBackend, get_backend
from repro.classify.pairs import PairContext
from repro.core.driver import (
    DependenceResult,
    assumed_dependence_result,
)
from repro.core.plan import PlanRecorder, TestPlan
from repro.delta.delta import DEFAULT_OPTIONS, DeltaOptions
from repro.engine import faultinject
from repro.engine.faults import (
    DEFAULT_PAIR_BUDGET,
    DEFAULT_POLICY,
    Deadline,
    FailureRecord,
    FaultPolicy,
    PairTestError,
    StepBudget,
    describe_error,
    failure_kind,
)
from repro.engine.canonical import (
    CacheEntry,
    CanonicalKey,
    canonical_pair_key,
    canonicalize_result,
    rehydrate_result,
    rename_map,
)
from repro.engine.stats import EngineStats
from repro.engine.store import VerdictStore
from repro.instrument import TestRecorder
from repro.ir.context import SymbolEnv
from repro.ir.loop import AccessSite

#: Default number of canonical entries kept; the whole kernel corpus needs
#: a few hundred, so the default effectively never evicts in practice.
DEFAULT_CAPACITY = 65536

#: Plan entries kept per verdict entry: plans are ~50 bytes against the
#: kilobytes a full canonical verdict carries, so the plan tier outlives
#: verdict eviction by design.
PLAN_CAPACITY_FACTOR = 4

#: Prepared-pair memo bound (cleared wholesale past this — entries are
#: cheap to rebuild and the memo only pays off within/between passes over
#: the same bodies).
PREPARE_MEMO_LIMIT = 1 << 15

#: Module-level (process-wide) prepared-pair memo, shared by every driver
#: like the expression and loop-context interning pools: contexts and
#: canonical keys are pure functions of the underlying IR objects, so
#: engines analyzing the same bodies share them even though each keeps
#: its own verdict cache.  Values hold the IR objects alive, so ids in
#: keys cannot be recycled while an entry is resident.
_PAIR_MEMO: Dict[Tuple, Tuple[PairContext, Dict[str, str], CanonicalKey]] = {}


class CachedDriver:
    """Memoizing dependence tester with an LRU eviction policy.

    Usable directly as ``tester=`` for the serial graph builder, and as
    the shared verdict store of the parallel builder (which seeds it with
    worker-produced entries).
    """

    def __init__(
        self,
        symbols: Optional[SymbolEnv] = None,
        capacity: int = DEFAULT_CAPACITY,
        delta_options: DeltaOptions = DEFAULT_OPTIONS,
        stats: Optional[EngineStats] = None,
        plan_capacity: Optional[int] = None,
        policy: FaultPolicy = DEFAULT_POLICY,
        store: Optional[VerdictStore] = None,
        backend: Union[TestBackend, str, None] = None,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        if plan_capacity is None:
            plan_capacity = capacity * PLAN_CAPACITY_FACTOR
        if plan_capacity < 1:
            raise ValueError(
                f"plan capacity must be positive, got {plan_capacity}"
            )
        self.symbols = symbols
        self.capacity = capacity
        self.plan_capacity = plan_capacity
        self.delta_options = delta_options
        self.policy = policy
        if isinstance(backend, str) or backend is None:
            backend = get_backend(backend)
        #: The test evaluator serving every miss; see ``repro.backends``.
        self.backend = backend
        self.stats = stats if stats is not None else EngineStats()
        #: Request-scoped wall-clock expiry (installed by the analysis
        #: service around each request's builds, under the engine's serve
        #: lock); every budget minted while set checks it per spend, so
        #: an expired request degrades each remaining pair to an assumed
        #: verdict in O(1) instead of testing it.  None = no deadline.
        self.deadline: Optional[Deadline] = None
        #: Persistent write-through tier (``store.py``); None = memory-only.
        #: Named ``persist`` because :meth:`store` is the LRU insert.
        self.persist = store
        self._entries: "OrderedDict[CanonicalKey, CacheEntry]" = OrderedDict()
        self._plans: "OrderedDict[CanonicalKey, TestPlan]" = OrderedDict()

    # -- cache primitives ------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, key: CanonicalKey) -> bool:
        """True when ``key`` is resident in any tier (LRU order untouched)."""
        if key in self._entries:
            return True
        return self.persist is not None and self.persist.contains(key)

    def lookup(self, key: CanonicalKey) -> Optional[CacheEntry]:
        """Fetch an entry, memory tier first, then the persistent store.

        Marks memory hits most recently used; promotes store hits into
        the LRU.  Counts provenance separately (``hits`` / ``store_hits``
        / ``misses``) so resumed runs report honestly.
        """
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry
        if self.persist is not None:
            entry = self.persist.get(key)
            if self.persist.events:
                self.drain_store_events()
            if entry is not None:
                self.stats.store_hits += 1
                if self.persist.foreign(key):
                    # Folded from a shard tail after open: written by a
                    # concurrently running process, not a prior run.
                    self.stats.store_foreign_hits += 1
                self.store(key, entry)
                return entry
        self.stats.misses += 1
        return None

    # -- the persistent tier ---------------------------------------------

    def _degrade_store(self, exc: Exception) -> None:
        """Drop to memory-only operation after a whole-store failure.

        Since the sharded store quarantines shard-scoped failures itself
        (surfaced via :meth:`drain_store_events`), this path is reserved
        for failures of the store as a whole — a closed handle, an
        unwritable directory — where no tier remains to write to.
        """
        store, self.persist = self.persist, None
        self.stats.record_failure(
            FailureRecord(
                "store",
                f"store {getattr(store, 'path', '?')}",
                describe_error(exc),
            )
        )

    def drain_store_events(self) -> None:
        """Surface shard-quarantine events as ``"store"`` failure records.

        The store absorbs shard-scoped failures (lock starvation, corrupt
        segment, ENOSPC) by quarantining the shard and queuing an event;
        the affected keys silently run memory-only.  Draining here turns
        each event into exactly one failure record for the fault report
        — never a traceback, never an assumed verdict.
        """
        if self.persist is None:
            return
        for where, message in self.persist.drain_events():
            self.stats.record_failure(FailureRecord("store", where, message))

    def _persist_entry(self, key: CanonicalKey, entry: CacheEntry) -> None:
        if (
            self.persist is None
            or entry.assumed
            or self.persist.read_only
        ):
            return
        try:
            self.persist.put(key, entry)
            self.stats.store_writes += 1
        except Exception as exc:
            self._degrade_store(exc)
        else:
            if self.persist.events:
                self.drain_store_events()

    def _persist_plan(self, key: CanonicalKey, plan: TestPlan) -> None:
        if self.persist is None or self.persist.read_only:
            return
        try:
            self.persist.put_plan(key, plan)
        except Exception as exc:
            self._degrade_store(exc)
        else:
            if self.persist.events:
                self.drain_store_events()

    def store(self, key: CanonicalKey, entry: CacheEntry) -> None:
        """Insert an entry, evicting the least recently used past capacity."""
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def seed(self, key: CanonicalKey, entry: CacheEntry) -> None:
        """Adopt a worker-produced entry without counting a miss.

        Write-through: seeded entries are the parallel builder's test
        results, so they persist like any miss fill (making per-chunk
        progress durable for checkpointed runs).
        """
        if key not in self._entries:
            self.stats.seeded += 1
        self.store(key, entry)
        self._persist_entry(key, entry)

    def clear(self) -> None:
        """Drop every verdict and plan (counters kept; see ``stats.reset``)."""
        self._entries.clear()
        self._plans.clear()

    def shed_memory(self) -> int:
        """Drop every in-memory tier under memory pressure; returns count.

        The corpus streaming driver calls this when its RSS watermark
        trips: the LRU verdict/plan tiers and the process-wide prepared-
        pair memo all rebuild lazily (or re-read from the persistent
        store), so shedding trades warm-cache speed for bounded memory
        without changing any verdict.
        """
        shed = len(self._entries) + len(self._plans) + len(_PAIR_MEMO)
        self._entries.clear()
        self._plans.clear()
        _PAIR_MEMO.clear()
        return shed

    def close(self) -> None:
        """Flush the persistent tier and surface every remaining event.

        The final checkpoint can itself quarantine a shard (lock
        starvation, ENOSPC on the last flush); those events are appended
        *after* any earlier drain, so without this last drain they would
        vanish from the fault report.  Safe to call repeatedly; the store
        object itself stays open (its owner closes it).
        """
        if self.persist is not None and not self.persist.read_only:
            try:
                self.persist.checkpoint()
            except Exception as exc:
                self._degrade_store(exc)
        self.drain_store_events()

    def _make_budget(self) -> Optional[StepBudget]:
        """A fresh per-pair budget carrying the current request deadline.

        Without a deadline this is the policy budget (or None when
        budgeting is disabled).  With one, a budget is always minted —
        the deadline is checked on its spend hook — using the default
        step limit when the policy has none, so the batched backend's
        shadow-budget pre-run stays bounded too.
        """
        limit = self.policy.pair_budget
        if self.deadline is None:
            return StepBudget(limit) if limit else None
        return StepBudget(limit or DEFAULT_PAIR_BUDGET, deadline=self.deadline)

    # -- the plan tier ---------------------------------------------------

    def plan_count(self) -> int:
        """Number of precompiled plans resident."""
        return len(self._plans)

    def plan_for(self, key: CanonicalKey) -> Optional[TestPlan]:
        """The precompiled plan for ``key`` (marks it recently used).

        Falls back to the persistent store, promoting hits into the
        memory tier, so plans survive process restarts too.
        """
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            return plan
        if self.persist is not None:
            plan = self.persist.get_plan(key)
            if plan is not None:
                self.store_plan(key, plan)
        return plan

    def store_plan(self, key: CanonicalKey, plan: TestPlan) -> None:
        """Keep a compiled plan, evicting the least recently used past cap.

        Write-through to the persistent store (a no-op for plans already
        on disk, including ones just promoted from it).
        """
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.plan_capacity:
            self._plans.popitem(last=False)
        self._persist_plan(key, plan)

    # -- the tester interface --------------------------------------------

    def prepare(
        self,
        src_site: AccessSite,
        sink_site: AccessSite,
        symbols: Optional[SymbolEnv] = None,
    ) -> Tuple[PairContext, Dict[str, str], CanonicalKey]:
        """Build the context, rename map, and canonical key for one pair.

        Memoized process-wide by the identity of the pair's underlying IR
        objects (reference, statement, environment):
        ``collect_access_sites`` wraps the same immutable tree in fresh
        :class:`AccessSite` objects on every walk, so a driver re-analyzing
        a body — the steady state of a transformation pipeline — would
        otherwise rebuild every context and key from scratch each pass.
        """
        env = symbols if symbols is not None else self.symbols
        memo_key = (
            id(src_site.ref),
            id(src_site.stmt),
            src_site.is_write,
            id(sink_site.ref),
            id(sink_site.stmt),
            sink_site.is_write,
            id(env),
        )
        cached = _PAIR_MEMO.get(memo_key)
        if cached is not None:
            return cached
        context = PairContext(src_site, sink_site, env)
        mapping = rename_map(context)
        value = (context, mapping, canonical_pair_key(context, mapping))
        if len(_PAIR_MEMO) >= PREPARE_MEMO_LIMIT:
            _PAIR_MEMO.clear()
        _PAIR_MEMO[memo_key] = value
        return value

    def resolve(
        self,
        context: PairContext,
        mapping: Dict[str, str],
        key: CanonicalKey,
        recorder: Optional[TestRecorder] = None,
    ) -> DependenceResult:
        """Serve a prepared pair from cache, testing (and filling) on miss.

        The miss path replays the key's precompiled test plan when one is
        resident (skipping partitioning and classification), and compiles
        one otherwise so the next miss on this shape is cheaper.

        The miss path is also the per-pair isolation boundary: any
        exception the test raises (including an exhausted
        :class:`~repro.engine.faults.StepBudget`) degrades to a
        conservative assumed-dependence verdict with a
        :class:`~repro.engine.faults.FailureRecord` in ``stats`` — unless
        the policy is strict, in which case it re-raises as
        :class:`~repro.engine.faults.PairTestError`.  Assumed verdicts
        carry no recorder counters, so surviving-pair statistics stay
        byte-identical to a clean run.
        """
        profile = self.stats.profile
        entry = self.lookup(key)
        if entry is not None:
            if entry.assumed:
                self.stats.assumed += 1
            if recorder is not None:
                recorder.merge(entry.recorder)
            if profile is None:
                return rehydrate_result(entry, context, mapping)
            start = perf_counter()
            result = rehydrate_result(entry, context, mapping)
            profile.add_phase("rehydrate", perf_counter() - start)
            return result
        local = TestRecorder()
        start = perf_counter() if profile is not None else 0.0
        budget = self._make_budget()
        try:
            # A pair starting after the request deadline has already
            # expired degrades in O(1): no fault hooks, no backend
            # dispatch, just the conservative assumed verdict below.
            if self.deadline is not None:
                self.deadline.check()
            faultinject.on_pair(context.src_site.ref.array)
            plan = self.plan_for(key)
            if plan is not None:
                self.stats.plan_hits += 1
                result = self.backend.run_pair(
                    context,
                    recorder=local,
                    delta_options=self.delta_options,
                    plan=plan.check(key),
                    profile=profile,
                    budget=budget,
                )
            else:
                self.stats.plan_misses += 1
                plan_recorder = PlanRecorder()
                result = self.backend.run_pair(
                    context,
                    recorder=local,
                    delta_options=self.delta_options,
                    plan_recorder=plan_recorder,
                    profile=profile,
                    budget=budget,
                )
                self.store_plan(key, plan_recorder.compile(key))
        except Exception as exc:
            where = f"{context.src_site.ref} -> {context.sink_site.ref}"
            if self.policy.strict:
                raise PairTestError(where, describe_error(exc)) from exc
            result = assumed_dependence_result(context, describe_error(exc))
            local = TestRecorder()  # discard partial counters: parity
            self.stats.record_failure(
                FailureRecord(failure_kind(exc), where, describe_error(exc))
            )
            self.stats.assumed += 1
        if profile is not None:
            profile.add_phase("test", perf_counter() - start)
        if not result.assumed:
            # Assumed verdicts never enter the cache (or the store): a
            # faulted pair must not contaminate structurally identical
            # healthy pairs, and a transient failure deserves a fresh
            # test next time — in this process or any later one.
            entry = canonicalize_result(result, mapping, local)
            self.store(key, entry)
            self._persist_entry(key, entry)
        if recorder is not None:
            recorder.merge(local)
        return result

    @property
    def wants_batch(self) -> bool:
        """True when graph builders should gather pairs for resolve_batch."""
        return self.backend.batching

    def resolve_batch(
        self,
        prepared: Sequence[Tuple[PairContext, Dict[str, str], CanonicalKey]],
        recorder: Optional[TestRecorder] = None,
    ) -> List[DependenceResult]:
        """Resolve many prepared pairs, testing all cache misses as one batch.

        Semantically identical to calling :meth:`resolve` per pair, in
        order — stats, recorder counters, stored entries, plans, and
        fault handling all match — but the misses flow to
        ``backend.run_batch`` together so a batching backend can group
        them by test class and evaluate each group vectorized.

        Duplicate canonical keys among the misses are deferred and served
        after the batch fills the cache (a second occurrence of a shape
        is a hit in per-pair order too); a deferred pair whose
        representative degraded to an assumed verdict re-tests
        individually, exactly as the per-pair path would.
        """
        profile = self.stats.profile
        results: List[Optional[DependenceResult]] = [None] * len(prepared)
        misses: List[int] = []
        deferred: List[int] = []
        missed = set()
        for i, (context, mapping, key) in enumerate(prepared):
            if key in missed:
                deferred.append(i)
                continue
            entry = self.lookup(key)
            if entry is None:
                missed.add(key)
                misses.append(i)
                continue
            if entry.assumed:
                self.stats.assumed += 1
            if recorder is not None:
                recorder.merge(entry.recorder)
            if profile is None:
                results[i] = rehydrate_result(entry, context, mapping)
            else:
                hit_start = perf_counter()
                results[i] = rehydrate_result(entry, context, mapping)
                profile.add_phase("rehydrate", perf_counter() - hit_start)
        pending: List[Tuple[int, CanonicalKey, BatchItem, Optional[PlanRecorder]]] = []
        start = perf_counter() if profile is not None else 0.0
        for i in misses:
            context, mapping, key = prepared[i]
            plan = self.plan_for(key)
            plan_recorder: Optional[PlanRecorder] = None
            if plan is not None:
                self.stats.plan_hits += 1
                plan = plan.check(key)
            else:
                self.stats.plan_misses += 1
                plan_recorder = PlanRecorder()
            item = BatchItem(
                context=context,
                delta_options=self.delta_options,
                plan=plan,
                plan_recorder=plan_recorder,
                profile=profile,
                budget=self._make_budget(),
            )
            pending.append((i, key, item, plan_recorder))
        if pending:
            self.backend.run_batch([item for _, _, item, _ in pending])
            coverage = self.backend.take_coverage()
            if coverage:
                self.stats.add_coverage(coverage)
            if profile is not None:
                profile.add_phase(
                    "test", perf_counter() - start, calls=len(pending)
                )
        for i, key, item, plan_recorder in pending:
            context, mapping, _ = prepared[i]
            if item.error is not None:
                exc = item.error
                where = f"{context.src_site.ref} -> {context.sink_site.ref}"
                if self.policy.strict:
                    raise PairTestError(where, describe_error(exc)) from exc
                results[i] = assumed_dependence_result(
                    context, describe_error(exc)
                )
                self.stats.record_failure(
                    FailureRecord(failure_kind(exc), where, describe_error(exc))
                )
                self.stats.assumed += 1
                if recorder is not None:
                    recorder.merge(item.recorder)  # reset on error: empty
                continue
            if plan_recorder is not None:
                self.store_plan(key, plan_recorder.compile(key))
            results[i] = item.result
            if not item.result.assumed:
                entry = canonicalize_result(item.result, mapping, item.recorder)
                self.store(key, entry)
                self._persist_entry(key, entry)
            if recorder is not None:
                recorder.merge(item.recorder)
        for i in deferred:
            context, mapping, key = prepared[i]
            results[i] = self.resolve(context, mapping, key, recorder)
        return results

    def __call__(
        self,
        src_site: AccessSite,
        sink_site: AccessSite,
        symbols: Optional[SymbolEnv] = None,
        recorder: Optional[TestRecorder] = None,
    ) -> DependenceResult:
        """Drop-in replacement for :func:`~repro.core.driver.test_dependence`."""
        profile = self.stats.profile
        if profile is None:
            context, mapping, key = self.prepare(src_site, sink_site, symbols)
        else:
            start = perf_counter()
            context, mapping, key = self.prepare(src_site, sink_site, symbols)
            profile.add_phase("prepare", perf_counter() - start)
        return self.resolve(context, mapping, key, recorder)
