"""Pluggable test backends: registry, selection, and graceful fallback.

The registry maps backend names to factories.  Selection order for
:func:`get_backend`: an explicit ``name`` argument (the ``--backend``
CLI flag), then the ``REPRO_BACKEND`` environment variable, then the
``reference`` default.  A backend whose construction raises
:class:`BackendUnavailableError` (e.g. ``batched`` without numpy)
degrades to the reference backend with a single :class:`RuntimeWarning`
— never a traceback — so ``--backend batched`` on a numpy-less install
still analyzes, just without the speedup.

Instances are memoized per name: backends are stateless evaluators, and
sharing one instance keeps lazy imports (numpy) from repeating.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, List

from repro.backends.base import BatchItem, TestBackend

__all__ = [
    "BackendUnavailableError",
    "BatchItem",
    "TestBackend",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
]

ENV_VAR = "REPRO_BACKEND"
DEFAULT_BACKEND = "reference"


class BackendUnavailableError(RuntimeError):
    """A backend's prerequisites (e.g. numpy) are missing on this install."""


_REGISTRY: Dict[str, Callable[[], TestBackend]] = {}
_INSTANCES: Dict[str, TestBackend] = {}


def register_backend(name: str, factory: Callable[[], TestBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _REGISTRY[name] = factory
    _INSTANCES.pop(name, None)


def backend_names() -> List[str]:
    """All registered backend names (available or not), sorted."""
    return sorted(_REGISTRY)


def available_backends() -> List[str]:
    """Names of backends that actually construct on this install."""
    names = []
    for name in backend_names():
        try:
            _instantiate(name)
        except BackendUnavailableError:
            continue
        names.append(name)
    return names


def _instantiate(name: str) -> TestBackend:
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; known backends: "
            f"{', '.join(backend_names())}"
        ) from None
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = factory()
        _INSTANCES[name] = instance
    return instance


def get_backend(name: str = None) -> TestBackend:
    """Resolve a backend by name, env var, or default — never raising
    for an *unavailable* (as opposed to unknown) backend."""
    requested = name or os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    try:
        return _instantiate(requested)
    except BackendUnavailableError as exc:
        warnings.warn(
            f"backend {requested!r} unavailable ({exc}); "
            f"falling back to {DEFAULT_BACKEND!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return _instantiate(DEFAULT_BACKEND)


def _reference_factory() -> TestBackend:
    from repro.backends.reference import ReferenceBackend

    return ReferenceBackend()


def _batched_factory() -> TestBackend:
    from repro.backends.batched import BatchedBackend

    return BatchedBackend()


register_backend("reference", _reference_factory)
register_backend("batched", _batched_factory)
