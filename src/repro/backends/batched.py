"""The batched backend: vectorized evaluation of the common test classes.

The paper's empirical claim — almost every subscript pair in real code is
ZIV or a simple SIV shape — means a corpus run spends most of its miss
path re-deriving the same few decision procedures one pair at a time.
This backend exploits that: after partitioning and classifying every
pair of a batch *once*, it groups the separable subscript positions by
test class and evaluates each group with numpy array operations:

* **ZIV** (constant difference): one vectorized ``!= 0`` over the
  difference array;
* **strong SIV** (constant difference): vectorized zero-trip, GCD
  divisibility (``d mod a``), distance (``d div a``), and
  ``|distance| <= span`` bound checks over coefficient arrays;
* **weak-zero SIV** (constant target): vectorized divisibility,
  pinned-iteration, and range-membership checks;
* **MIV Banerjee-GCD** (bounded, small depth): the direction hierarchy's
  legal-leaf set computed as a min/max accumulation over per-index,
  per-direction bound arrays for all ``3^d`` full direction assignments
  at once.  This is sound and verdict-identical because Banerjee bounds
  are *monotone under direction refinement* (a refined region is a
  subset of its parent, so its value interval is contained in the
  parent's): the depth-first hierarchy's pruning can never exclude a
  full assignment whose own bounds contain zero, so the legal leaf set
  equals ``{full assignments whose bounds contain 0}`` — exactly what
  the vectorized evaluation computes.

Everything irrational for arrays falls back to the reference path *per
partition*, inside the same driver walk: symbolic differences or bounds,
weak-crossing and general SIV shapes, RDIV, coupled groups (the Delta
test's propagation is inherently sequential), non-integer or huge
endpoints (beyond exact float range), and deep MIV hierarchies.  The
precomputed outcomes are injected through the driver's ``dispatcher``
hook, so budget charging, plan recording, recorder counters, early
exits, and constraint merging all run through the identical code path —
verdicts, direction vectors, and Table 3 counters are byte-identical to
the reference backend by construction, and the scenario suites assert
it.

numpy is optional (the ``repro[fast]`` extra): the module imports it
lazily, and construction raises
:class:`~repro.backends.BackendUnavailableError` when it is missing so
the registry can fall back to the reference backend with a clean
warning.
"""

from __future__ import annotations

from itertools import product
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.base import BatchItem, TestBackend
from repro.classify.pairs import PairContext, SubscriptPair
from repro.classify.partition import partition_subscripts
from repro.classify.subscript import (
    SubscriptKind,
    _classify_siv,
    siv_shape,
)
from repro.core.driver import default_dispatch
from repro.core.plan import PlanAction, TestPlan
from repro.dirvec.direction import (
    Direction,
    IndexConstraint,
    constraint_from_distance,
)
from repro.instrument import maybe_record
from repro.single.miv import _is_index_occurrence, _term_bounds
from repro.single.outcome import TestOutcome
from repro.single.siv import _weak_zero_directions
from repro.symbolic.ranges import Interval

#: Endpoint magnitude cap: float64 represents integers exactly below
#: 2**53; staying well under keeps every vectorized comparison exact.
_SAFE_INT = 1 << 50

#: Deepest direction hierarchy evaluated as a 3^d sweep (3^4 = 81
#: assignments per pair); deeper nests fall back to the pruned DFS.
_MAX_MIV_DEPTH = 4

_DIRECTIONS = (Direction.LT, Direction.EQ, Direction.GT)


def _load_numpy():
    """Import numpy lazily; raise the registry's unavailability error."""
    from repro.backends import BackendUnavailableError

    try:
        import numpy
    except Exception as exc:  # ImportError, or a broken installation
        raise BackendUnavailableError(f"numpy is not importable ({exc})") from None
    return numpy


def _endpoint(value) -> Optional[float]:
    """An interval endpoint as an exact float, or None when ineligible."""
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return float(value) if -_SAFE_INT <= value <= _SAFE_INT else None
    if isinstance(value, float) and (value == float("inf") or value == float("-inf")):
        return value
    return None


class _Table:
    """Per-item precomputation: outcome table and synthesized schedule."""

    __slots__ = ("pre", "plan")

    def __init__(self) -> None:
        #: positions tuple -> (TestOutcome, PlanAction), filled by lanes.
        self.pre: Dict[Tuple[int, ...], Tuple[TestOutcome, PlanAction]] = {}
        #: Full-schedule plan handed to the driver walk so it skips
        #: re-partitioning (None when the item already has a real plan,
        #: or when a step's action cannot be synthesized faithfully).
        self.plan: Optional[TestPlan] = None


class BatchedBackend(TestBackend):
    """numpy-vectorized evaluation of ZIV/SIV/GCD/Banerjee test groups."""

    name = "batched"
    batching = True

    def __init__(self) -> None:
        self.np = _load_numpy()

    # -- batch entry point ------------------------------------------------

    def run_batch(self, items: Sequence[BatchItem]) -> None:
        try:
            tables = self._precompute(items)
        except Exception:
            # Vectorized precomputation is strictly an accelerator: any
            # unexpected failure degrades the whole batch to the
            # reference per-pair walk, never to a wrong verdict.
            tables = [None] * len(items)
        for item, table in zip(items, tables):
            if table is None:
                self._run_item(item)
                continue
            if table.plan is not None and item.plan is None:
                # The synthesized schedule rides in as a plan so the walk
                # skips re-partitioning; the item's PlanRecorder still
                # records only the steps actually consumed, keeping the
                # compiled plan identical to a reference run's.
                original = item.plan
                item.plan = table.plan
                try:
                    self._run_item(item, dispatcher=self._dispatcher(table))
                finally:
                    item.plan = original
            else:
                self._run_item(item, dispatcher=self._dispatcher(table))

    def _dispatcher(self, table: _Table):
        """A driver dispatcher serving this item's precomputed outcomes."""
        pre = table.pre

        def dispatch(
            pairs, positions, action, context, recorder, delta_options,
            profile, budget,
        ):
            hit = pre.get(positions)
            if hit is not None:
                outcome, resolved = hit
                return maybe_record(recorder, outcome), resolved
            return default_dispatch(
                pairs, positions, action, context, recorder, delta_options,
                profile, budget,
            )

        return dispatch

    # -- precomputation ---------------------------------------------------

    def _precompute(self, items: Sequence[BatchItem]) -> List[Optional[_Table]]:
        lanes = _Lanes()
        tables: List[Optional[_Table]] = []
        for item in items:
            try:
                tables.append(self._extract_item(item, lanes))
            except Exception:
                tables.append(None)
        profile = next(
            (item.profile for item in items if item.profile is not None), None
        )
        lanes.evaluate(self.np, profile)
        return tables

    def _extract_item(self, item: BatchItem, lanes: "_Lanes") -> Optional[_Table]:
        context = item.context
        if context.rank_mismatch:
            return None  # the driver returns before the schedule walk
        subscripts = context.subscripts
        if item.plan is not None:
            schedule = [
                ([subscripts[p] for p in positions], positions, action)
                for positions, action in item.plan.steps
            ]
        else:
            schedule = [
                (partition.pairs, partition.positions, None)
                for partition in partition_subscripts(subscripts, context)
            ]
        table = _Table()
        synth: List[Tuple[Tuple[int, ...], PlanAction]] = []
        synthesizable = item.plan is None
        for pairs, positions, action in schedule:
            resolved = self._extract_step(
                table, lanes, pairs, positions, action, context
            )
            if resolved is None:
                synthesizable = False
            elif synthesizable:
                synth.append((positions, resolved))
        if synthesizable:
            table.plan = TestPlan(key=None, steps=tuple(synth))
        return table

    def _extract_step(
        self,
        table: _Table,
        lanes: "_Lanes",
        pairs: List[SubscriptPair],
        positions: Tuple[int, ...],
        action: Optional[PlanAction],
        context: PairContext,
    ) -> Optional[PlanAction]:
        """Classify one partition; route it to a lane when vectorizable.

        Returns the action a fresh dispatch would record (for schedule
        synthesis), or None when it cannot be predicted without running
        the test (the RDIV applicability fallback).
        """
        if len(pairs) > 1:
            return PlanAction.DELTA  # coupled group: Delta falls back
        pair = pairs[0]
        # Open-coded ``classify``: the lanes need the bases and the SIV
        # shape anyway, so deriving the kind from them (instead of calling
        # ``classify`` and re-extracting) computes each exactly once per
        # pair — the batching boundary's share of the speedup.
        if not pair.is_linear:
            return PlanAction.NONLINEAR
        bases = context.subscript_bases(pair)
        if not bases:
            lanes.add_ziv(table, positions, pair, context)
            return PlanAction.ZIV
        if len(bases) == 1:
            shape = siv_shape(pair, context, next(iter(bases)))
            kind = _classify_siv(shape)
            if kind is SubscriptKind.SIV_STRONG:
                lanes.add_strong_siv(table, positions, shape, context)
            elif kind is SubscriptKind.SIV_WEAK_ZERO:
                lanes.add_weak_zero_siv(table, positions, shape, context)
            # weak-crossing and general SIV shapes fall back per pair
            return PlanAction.SIV
        if len(bases) == 2:
            src_bases = context.base_indices_of(pair.src) if pair.src else set()
            sink_bases = (
                context.base_indices_of(pair.sink) if pair.sink else set()
            )
            if (
                len(src_bases) == 1
                and len(sink_bases) == 1
                and src_bases != sink_bases
            ):
                # RDIV: the recorded action depends on runtime
                # applicability (RDIV vs RDIV_MIV); leave the schedule
                # unsynthesized so the walk derives and records it
                # exactly as reference.
                return None
        lanes.add_miv(table, positions, pair, context, bases)
        return PlanAction.MIV


class _Lanes:
    """Accumulated vectorizable work, grouped by test class."""

    def __init__(self) -> None:
        self.ziv: List[Tuple[_Table, Tuple[int, ...], int]] = []
        self.strong: List[tuple] = []
        self.weak_zero: List[tuple] = []
        #: depth -> list of extracted MIV hierarchy problems.
        self.miv: Dict[int, List[tuple]] = {}

    # -- extraction -------------------------------------------------------

    def add_ziv(self, table, positions, pair, context) -> None:
        if not pair.is_linear:
            return
        difference = pair.difference()
        if not difference.is_constant():
            return  # symbolic ZIV: interval reasoning, per-pair fallback
        value = difference.constant_value()
        if not isinstance(value, int) or abs(value) > _SAFE_INT:
            return
        self.ziv.append((table, positions, value))

    def add_strong_siv(self, table, positions, shape, context) -> None:
        if shape.a1 != shape.a2 or shape.a1 == 0:
            return
        diff = shape.c1 - shape.c2
        if not diff.is_constant():
            return  # symbolic difference: interval path, per-pair fallback
        value = diff.constant_value()
        if not isinstance(value, int) or abs(value) > _SAFE_INT:
            return
        span = context.trip_span(shape.index)
        lo, hi = _endpoint(span.lo), _endpoint(span.hi)
        if lo is None or hi is None or abs(shape.a1) > _SAFE_INT:
            return
        self.strong.append((table, positions, shape, value, lo, hi))

    def add_weak_zero_siv(self, table, positions, shape, context) -> None:
        if shape.a1 != 0 and shape.a2 == 0:
            a, target = shape.a1, shape.c2 - shape.c1
            solved_name, solving_src = shape.src_name, True
        elif shape.a1 == 0 and shape.a2 != 0:
            a, target = shape.a2, shape.c1 - shape.c2
            solved_name, solving_src = shape.sink_name, False
        else:
            return
        if solved_name is None or not target.is_constant():
            return
        value = target.constant_value()
        if not isinstance(value, int) or abs(value) > _SAFE_INT:
            return
        index_range = context.range_of(solved_name)
        lo, hi = _endpoint(index_range.lo), _endpoint(index_range.hi)
        if lo is None or hi is None or abs(a) > _SAFE_INT:
            return
        self.weak_zero.append(
            (table, positions, shape, solving_src, index_range, a, value, lo, hi)
        )

    def add_miv(self, table, positions, pair, context, bases) -> None:
        from math import gcd

        h = pair.difference()
        g = 0
        symbolic: List[int] = []
        for name, coeff in h.terms:
            if _is_index_occurrence(name, context):
                g = gcd(g, abs(coeff))
            else:
                symbolic.append(coeff)
        if (
            g != 0
            and all(coeff % g == 0 for coeff in symbolic)
            and h.const % g != 0
        ):
            # GCD refutes every unconstrained solution: done, no bounds.
            table.pre[positions] = (
                TestOutcome.proves_independence("banerjee-gcd"),
                PlanAction.MIV,
            )
            return
        refine = [base for base in context.common_indices if base in bases]
        depth = len(refine)
        if depth == 0 or depth > _MAX_MIV_DEPTH:
            return  # trivial or combinatorially deep: per-pair fallback
        refine_set = set(refine)
        env = context.variable_env()
        fixed = Interval.point(h.const)
        handled = set()
        terms: Dict[str, List[Tuple[float, float]]] = {}
        for base in context.common_indices:
            src_name, sink_name = context.occurrence_names(base)
            x = h.coeff(src_name) if src_name else 0
            y = h.coeff(sink_name) if sink_name else 0
            if x == 0 and y == 0:
                if base in refine_set:
                    # No contribution in any direction (mirrors the
                    # reference bounds computation skipping the term).
                    terms[base] = [(0.0, 0.0)] * 3
                continue
            handled.add(src_name or "")
            handled.add(sink_name or "")
            src_range = (
                context.range_of(src_name) if src_name else Interval.unbounded()
            )
            sink_range = (
                context.range_of(sink_name) if sink_name else Interval.unbounded()
            )
            if base in refine_set:
                bounds = []
                for direction in _DIRECTIONS:
                    term = _term_bounds(x, y, src_range, sink_range, direction)
                    if term.is_empty():
                        # +inf/-inf sentinel: any assignment through an
                        # empty region sums to an illegal interval.
                        bounds.append((float("inf"), float("-inf")))
                        continue
                    lo, hi = _endpoint(term.lo), _endpoint(term.hi)
                    if lo is None or hi is None:
                        return
                    bounds.append((lo, hi))
                terms[base] = bounds
            else:
                term = _term_bounds(x, y, src_range, sink_range, None)
                if term.is_empty():
                    fixed = Interval.empty()
                    break
                fixed = fixed + term
        else:
            for name, coeff in h.terms:
                if name in handled:
                    continue
                fixed = fixed + env.get(name, Interval.unbounded()).scale(coeff)
        if fixed.is_empty():
            table.pre[positions] = (
                TestOutcome.proves_independence("banerjee-gcd", exact=False),
                PlanAction.MIV,
            )
            return
        lo, hi = _endpoint(fixed.lo), _endpoint(fixed.hi)
        if lo is None or hi is None:
            return
        self.miv.setdefault(depth, []).append(
            (table, positions, refine, [terms[base] for base in refine], lo, hi)
        )

    # -- vectorized evaluation --------------------------------------------

    def evaluate(self, np, profile) -> None:
        if self.ziv:
            self._timed(profile, "ziv", self._eval_ziv, np)
        if self.strong or self.weak_zero:
            self._timed(profile, "siv", self._eval_siv, np)
        if self.miv:
            self._timed(profile, "miv", self._eval_miv, np)

    @staticmethod
    def _timed(profile, tier, func, np) -> None:
        if profile is None:
            func(np)
            return
        start = perf_counter()
        try:
            func(np)
        finally:
            profile.add_test(tier, perf_counter() - start)

    def _eval_ziv(self, np) -> None:
        values = np.array([value for _, _, value in self.ziv], dtype=np.int64)
        nonzero = values != 0
        for (table, positions, _), indep in zip(self.ziv, nonzero):
            if indep:
                outcome = TestOutcome.proves_independence("ziv")
            else:
                outcome = TestOutcome("ziv", exact=True)
            table.pre[positions] = (outcome, PlanAction.ZIV)

    def _eval_siv(self, np) -> None:
        if self.strong:
            self._eval_strong(np)
        if self.weak_zero:
            self._eval_weak_zero(np)

    def _eval_strong(self, np) -> None:
        rows = self.strong
        a = np.array([r[2].a1 for r in rows], dtype=np.int64)
        value = np.array([r[3] for r in rows], dtype=np.int64)
        lo = np.array([r[4] for r in rows])
        hi = np.array([r[5] for r in rows])
        finite_hi = np.isfinite(hi)
        zero_trip = (lo > hi) | (finite_hi & (hi < 0))
        not_divisible = (value % a) != 0
        distance = value // a
        too_far = finite_hi & (np.abs(distance).astype(np.float64) > hi)
        independent = zero_trip | not_divisible | too_far
        verified = finite_hi | (distance == 0)
        for k, (table, positions, shape, *_rest) in enumerate(rows):
            if independent[k]:
                outcome = TestOutcome.proves_independence("strong-siv")
            else:
                d = int(distance[k])
                outcome = TestOutcome(
                    "strong-siv",
                    exact=bool(verified[k]),
                    constraints={shape.index: constraint_from_distance(d)},
                    notes={"distance": d},
                )
            table.pre[positions] = (outcome, PlanAction.SIV)

    def _eval_weak_zero(self, np) -> None:
        rows = self.weak_zero
        a = np.array([r[5] for r in rows], dtype=np.int64)
        value = np.array([r[6] for r in rows], dtype=np.int64)
        lo = np.array([r[7] for r in rows])
        hi = np.array([r[8] for r in rows])
        not_divisible = (value % a) != 0
        iteration = value // a
        as_float = iteration.astype(np.float64)
        out_of_range = (as_float < lo) | (as_float > hi)
        independent = not_divisible | out_of_range
        for k, (table, positions, shape, solving_src, index_range, *_r) in enumerate(
            rows
        ):
            if independent[k]:
                outcome = TestOutcome.proves_independence("weak-zero-siv")
            else:
                pinned = int(iteration[k])
                notes: Dict[str, object] = {
                    "solved_side": "src" if solving_src else "sink"
                }
                notes["zero_iteration"] = pinned
                if pinned == index_range.lo:
                    notes["boundary"] = "first"
                elif pinned == index_range.hi:
                    notes["boundary"] = "last"
                directions = _weak_zero_directions(
                    pinned, index_range, solving_src
                )
                verified = index_range.is_bounded() or pinned == index_range.lo
                outcome = TestOutcome(
                    "weak-zero-siv",
                    exact=verified,
                    constraints={shape.index: IndexConstraint(directions)},
                    notes=notes,
                )
            table.pre[positions] = (outcome, PlanAction.SIV)

    def _eval_miv(self, np) -> None:
        for depth, rows in self.miv.items():
            assign = np.array(
                list(product(range(3), repeat=depth)), dtype=np.intp
            )
            term_lo = np.array(
                [[[b[0] for b in dirs] for dirs in r[3]] for r in rows]
            )
            term_hi = np.array(
                [[[b[1] for b in dirs] for dirs in r[3]] for r in rows]
            )
            fixed_lo = np.array([r[4] for r in rows])
            fixed_hi = np.array([r[5] for r in rows])
            idx = np.arange(depth)
            with np.errstate(invalid="ignore"):
                lo_tot = fixed_lo[:, None] + term_lo[:, idx[None, :], assign].sum(
                    axis=2
                )
                hi_tot = fixed_hi[:, None] + term_hi[:, idx[None, :], assign].sum(
                    axis=2
                )
                legal = (lo_tot <= 0) & (hi_tot >= 0)  # NaN compares False
            for k, (table, positions, refine, *_rest) in enumerate(rows):
                vectors = frozenset(
                    tuple(_DIRECTIONS[assign[j, pos]] for pos in range(depth))
                    for j in np.nonzero(legal[k])[0]
                )
                name = "banerjee-gcd"
                if not vectors:
                    outcome = TestOutcome.proves_independence(name, exact=False)
                else:
                    outcome = TestOutcome(name, exact=False)
                    outcome.couplings.append((tuple(refine), vectors))
                    for position, base in enumerate(refine):
                        directions = frozenset(
                            vec[position] for vec in vectors
                        )
                        outcome.constraints[base] = IndexConstraint(directions)
                table.pre[positions] = (outcome, PlanAction.MIV)
