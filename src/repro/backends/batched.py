"""The batched backend: vectorized evaluation of the common test classes.

The paper's empirical claim — almost every subscript pair in real code is
ZIV or a simple SIV shape — means a corpus run spends most of its miss
path re-deriving the same few decision procedures one pair at a time.
This backend exploits that: after partitioning and classifying every
pair of a batch *once*, it groups the separable subscript positions by
test class and evaluates each group with numpy array operations:

* **ZIV** (constant difference): one vectorized ``!= 0`` over the
  difference array;
* **strong SIV** (constant difference): vectorized zero-trip, GCD
  divisibility (``d mod a``), distance (``d div a``), and
  ``|distance| <= span`` bound checks over coefficient arrays;
* **weak-zero SIV** (constant target): vectorized divisibility,
  pinned-iteration, and range-membership checks;
* **weak-crossing SIV** (constant target): vectorized divisibility of
  the crossing sum, feasibility against the doubled index range, and
  the even-crossing / interior direction conditions;
* **general (exact) SIV and RDIV** (constant target): the two-variable
  Diophantine queries of Section 4.2/4.4 — extended Euclid runs as a
  masked vectorized iteration producing Bezout coefficients for the
  whole lane at once, and each box/direction condition becomes an
  integer interval on the family parameter ``t`` (all division in
  int64, so the ceil/floor arithmetic is exact);
* **MIV Banerjee-GCD** (bounded, small depth): the direction hierarchy's
  legal-leaf set computed as a min/max accumulation over per-index,
  per-direction bound arrays for all ``3^d`` full direction assignments
  at once.  This is sound and verdict-identical because Banerjee bounds
  are *monotone under direction refinement* (a refined region is a
  subset of its parent, so its value interval is contained in the
  parent's): the depth-first hierarchy's pruning can never exclude a
  full assignment whose own bounds contain zero, so the legal leaf set
  equals ``{full assignments whose bounds contain 0}`` — exactly what
  the vectorized evaluation computes.

**Coupled groups** no longer fall back per pair.  The Delta test's
reduction loop is round-structured (see :mod:`repro.delta.delta`): each
pass collects every pending ZIV/SIV subscript against one shared
round context, evaluates them, then intersects constraints
sequentially.  The backend pre-runs every coupled group of the batch in
*lock step*: all groups' generators advance one round at a time, and
each round's collected single-subscript tests — across every group
still running — are evaluated through the same vectorized lanes (with
per-subscript fallback to the identical ``ziv_test``/``siv_test``
calls for shapes the lanes cannot take).  Constraint intersection,
propagation, and RDIV handling stay the sequential per-group walk.
Each pre-run records into a private recorder and logs its budget
spends; at dispatch time the walk replays the spends against the
item's real budget (so exhaustion raises at exactly the reference
point) and merges the recorder — a group the walk never reaches (an
earlier partition proved independence) contributes nothing, exactly as
in a sequential run.  Any pre-run failure simply drops that group's
precomputation and the walk runs the real ``delta_test``.

Everything still irrational for arrays falls back to the reference path
*per partition*, inside the same driver walk: symbolic differences or
bounds, non-integer or huge endpoints (beyond exact float range), and
deep MIV hierarchies.  The precomputed outcomes are injected through
the driver's ``dispatcher`` hook, so budget charging, plan recording,
recorder counters, early exits, and constraint merging all run through
the identical code path — verdicts, direction vectors, and Table 3
counters are byte-identical to the reference backend by construction,
and the scenario suites assert it.

The backend counts what it covered: per-lane subscript counters, per
pair fully-batched / partial / fallback totals, coupled-group and
per-round counters, and per-lane fallback reasons.  The engine harvests
them through :meth:`~repro.backends.base.TestBackend.take_coverage`
into ``EngineStats`` so ``--profile`` runs report what fraction of the
batch actually ran vectorized (in-process batches only: worker
processes keep their own backend instances).

numpy is optional (the ``repro[fast]`` extra): the module imports it
lazily, and construction raises
:class:`~repro.backends.BackendUnavailableError` when it is missing so
the registry can fall back to the reference backend with a clean
warning.
"""

from __future__ import annotations

from collections import Counter
from fractions import Fraction
from itertools import product
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.base import BatchItem, TestBackend
from repro.classify.pairs import PairContext, SubscriptPair
from repro.classify.partition import partition_subscripts
from repro.classify.subscript import (
    SubscriptKind,
    _classify_siv,
    rdiv_shape,
    siv_shape,
)
from repro.core.driver import default_dispatch
from repro.core.plan import PlanAction, TestPlan
from repro.delta.delta import delta_finalize, delta_prepare
from repro.dirvec.direction import (
    Direction,
    IndexConstraint,
    constraint_from_distance,
)
from repro.instrument import TestRecorder, maybe_record
from repro.single.miv import _is_index_occurrence, _term_bounds
from repro.single.outcome import TestOutcome
from repro.single.siv import _weak_zero_directions, siv_test
from repro.single.ziv import ziv_test
from repro.symbolic.ranges import Interval

#: Endpoint magnitude cap: float64 represents integers exactly below
#: 2**53; staying well under keeps every vectorized comparison exact.
_SAFE_INT = 1 << 50

#: Coefficient / constant caps for the Diophantine lanes: Bezout
#: coefficients are bounded by the inputs, so ``|a| <= 2^20`` and
#: ``|c| <= 2^31`` keep ``x0 = bezout * (c/g)`` under ``2^51`` — every
#: intermediate stays exact in int64 and exact as float64.
_DIO_COEF_MAX = 1 << 20
_DIO_CONST_MAX = 1 << 31

#: Deepest direction hierarchy evaluated as a 3^d sweep (3^4 = 81
#: assignments per pair); deeper nests fall back to the pruned DFS.
_MAX_MIV_DEPTH = 4

_DIRECTIONS = (Direction.LT, Direction.EQ, Direction.GT)


def _load_numpy():
    """Import numpy lazily; raise the registry's unavailability error."""
    from repro.backends import BackendUnavailableError

    try:
        import numpy
    except Exception as exc:  # ImportError, or a broken installation
        raise BackendUnavailableError(f"numpy is not importable ({exc})") from None
    return numpy


def _endpoint(value) -> Optional[float]:
    """An interval endpoint as an exact float, or None when ineligible."""
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        return float(value) if -_SAFE_INT <= value <= _SAFE_INT else None
    if isinstance(value, float) and (value == float("inf") or value == float("-inf")):
        return value
    return None


class _Table:
    """Per-item precomputation: outcome table and synthesized schedule."""

    __slots__ = ("pre", "plan", "steps")

    def __init__(self) -> None:
        #: positions tuple -> (TestOutcome, PlanAction) or _DeltaPre,
        #: filled by lanes and the coupled-group lock-step runner.
        self.pre: Dict[Tuple[int, ...], object] = {}
        #: Full-schedule plan handed to the driver walk so it skips
        #: re-partitioning (None when the item already has a real plan,
        #: or when a step's action cannot be synthesized faithfully).
        self.plan: Optional[TestPlan] = None
        #: Partition count of the schedule (for coverage accounting).
        self.steps = 0


class _DeltaPre:
    """A precomputed Delta run: outcome + recorder delta + budget replay.

    The dispatcher serves these specially: the logged spends replay
    against the walk's *real* budget (raising at exactly the point the
    reference run would), and the private recorder — which already holds
    the final ``delta`` outcome's record — merges into the walk's.
    """

    __slots__ = ("outcome", "recorder", "spends")

    def __init__(
        self, outcome: TestOutcome, recorder: TestRecorder, spends: Tuple[int, ...]
    ) -> None:
        self.outcome = outcome
        self.recorder = recorder
        self.spends = spends


class _ShadowExhausted(Exception):
    """A pre-run delta outran the item's full step budget: fall back."""


class _SpendLog:
    """Budget shadow for pre-run deltas.

    Logs every ``spend`` for replay against the real budget at dispatch
    time, while enforcing the item's full limit itself so a pathological
    group cannot monopolize precomputation (the walk's own ``delta_test``
    then raises the real ``BudgetExceededError`` at the reference point).
    """

    __slots__ = ("limit", "used", "log")

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0
        self.log: List[int] = []

    def spend(self, steps: int = 1) -> None:
        self.log.append(steps)
        self.used += steps
        if self.used > self.limit:
            raise _ShadowExhausted()


class _GroupTask:
    """One coupled group awaiting (or undergoing) a lock-step pre-run."""

    __slots__ = (
        "table", "positions", "pairs", "context", "options", "limit",
        "state", "gen", "recorder", "budget", "request",
    )

    def __init__(self, table, positions, pairs, context, options, limit):
        self.table = table
        self.positions = positions
        self.pairs = pairs
        self.context = context
        self.options = options
        self.limit = limit
        self.state = None
        self.gen = None
        self.recorder = None
        self.budget = None
        self.request = None


def _pre_emit(table: _Table, positions: Tuple[int, ...]):
    """An emit callback depositing into a table's precomputed outcomes."""

    def emit(outcome: TestOutcome, action: PlanAction) -> None:
        table.pre[positions] = (outcome, action)

    return emit


def _slot_emit(outcomes: List[Optional[TestOutcome]], index: int):
    """An emit callback filling one slot of a delta round's outcome list."""

    def emit(outcome: TestOutcome, action: PlanAction) -> None:
        outcomes[index] = outcome

    return emit


class BatchedBackend(TestBackend):
    """numpy-vectorized evaluation of ZIV/SIV/RDIV/GCD/Banerjee/Delta groups."""

    name = "batched"
    batching = True

    def __init__(self) -> None:
        self.np = _load_numpy()
        self._coverage: Counter = Counter()

    def take_coverage(self) -> Optional[Dict[str, int]]:
        """Drain the accumulated batch-coverage counters (None when empty)."""
        if not self._coverage:
            return None
        out = dict(self._coverage)
        self._coverage.clear()
        return out

    # -- batch entry point ------------------------------------------------

    def run_batch(self, items: Sequence[BatchItem]) -> None:
        try:
            tables = self._precompute(items)
        except Exception:
            # Vectorized precomputation is strictly an accelerator: any
            # unexpected failure degrades the whole batch to the
            # reference per-pair walk, never to a wrong verdict.
            tables = [None] * len(items)
        cov = self._coverage
        for item, table in zip(items, tables):
            cov["pairs"] += 1
            if table is None:
                cov["pairs_fallback"] += 1
                self._run_item(item)
                continue
            covered = len(table.pre)
            if covered >= table.steps:
                cov["pairs_batched"] += 1
            elif covered:
                cov["pairs_partial"] += 1
            else:
                cov["pairs_fallback"] += 1
            if table.plan is not None and item.plan is None:
                # The synthesized schedule rides in as a plan so the walk
                # skips re-partitioning; the item's PlanRecorder still
                # records only the steps actually consumed, keeping the
                # compiled plan identical to a reference run's.
                original = item.plan
                item.plan = table.plan
                try:
                    self._run_item(item, dispatcher=self._dispatcher(table))
                finally:
                    item.plan = original
            else:
                self._run_item(item, dispatcher=self._dispatcher(table))

    def _dispatcher(self, table: _Table):
        """A driver dispatcher serving this item's precomputed outcomes."""
        pre = table.pre

        def dispatch(
            pairs, positions, action, context, recorder, delta_options,
            profile, budget,
        ):
            hit = pre.get(positions)
            if hit is not None:
                if type(hit) is _DeltaPre:
                    if budget is not None:
                        for steps in hit.spends:
                            budget.spend(steps)
                    if recorder is not None:
                        recorder.merge(hit.recorder)
                    return hit.outcome, PlanAction.DELTA
                outcome, resolved = hit
                return maybe_record(recorder, outcome), resolved
            return default_dispatch(
                pairs, positions, action, context, recorder, delta_options,
                profile, budget,
            )

        return dispatch

    # -- precomputation ---------------------------------------------------

    def _precompute(self, items: Sequence[BatchItem]) -> List[Optional[_Table]]:
        lanes = _Lanes(self._coverage)
        tables: List[Optional[_Table]] = []
        for item in items:
            try:
                tables.append(self._extract_item(item, lanes))
            except Exception:
                self._coverage["fallback:extract-error"] += 1
                tables.append(None)
        profile = next(
            (item.profile for item in items if item.profile is not None), None
        )
        lanes.evaluate(self.np, profile)
        if lanes.groups:
            if profile is None:
                self._run_groups(lanes.groups)
            else:
                start = perf_counter()
                try:
                    self._run_groups(lanes.groups)
                finally:
                    profile.add_test("delta", perf_counter() - start)
        return tables

    def _extract_item(self, item: BatchItem, lanes: "_Lanes") -> Optional[_Table]:
        context = item.context
        if context.rank_mismatch:
            self._coverage["fallback:rank-mismatch"] += 1
            return None  # the driver returns before the schedule walk
        subscripts = context.subscripts
        if item.plan is not None:
            schedule = [
                ([subscripts[p] for p in positions], positions, action)
                for positions, action in item.plan.steps
            ]
        else:
            schedule = [
                (partition.pairs, partition.positions, None)
                for partition in partition_subscripts(subscripts, context)
            ]
        table = _Table()
        table.steps = len(schedule)
        synth: List[Tuple[Tuple[int, ...], PlanAction]] = []
        synthesizable = item.plan is None
        for pairs, positions, action in schedule:
            resolved = self._extract_step(
                table, lanes, pairs, positions, action, context, item
            )
            if resolved is None:
                synthesizable = False
            elif synthesizable:
                synth.append((positions, resolved))
        if synthesizable:
            table.plan = TestPlan(key=None, steps=tuple(synth))
        return table

    def _extract_step(
        self,
        table: _Table,
        lanes: "_Lanes",
        pairs: List[SubscriptPair],
        positions: Tuple[int, ...],
        action: Optional[PlanAction],
        context: PairContext,
        item: BatchItem,
    ) -> Optional[PlanAction]:
        """Classify one partition; route it to a lane when vectorizable.

        Returns the action a fresh dispatch would record (for schedule
        synthesis), or None when it cannot be predicted without running
        the test.
        """
        cov = self._coverage
        if len(pairs) > 1:
            # Coupled group: registered for the lock-step Delta pre-run.
            limit = getattr(item.budget, "limit", None)
            if item.budget is None or limit is not None:
                cov["delta:groups"] += 1
                lanes.groups.append(
                    _GroupTask(
                        table, positions, pairs, context,
                        item.delta_options, limit,
                    )
                )
            else:
                # An opaque budget object cannot be shadowed faithfully.
                cov["delta:groups_fallback"] += 1
            return PlanAction.DELTA
        pair = pairs[0]
        # Open-coded ``classify``: the lanes need the bases and the SIV
        # shape anyway, so deriving the kind from them (instead of calling
        # ``classify`` and re-extracting) computes each exactly once per
        # pair — the batching boundary's share of the speedup.
        if not pair.is_linear:
            cov["fallback:nonlinear"] += 1
            return PlanAction.NONLINEAR
        bases = context.subscript_bases(pair)
        if not bases:
            emit = _pre_emit(table, positions)
            if lanes.add_ziv(emit, pair):
                cov["lane:ziv"] += 1
            else:
                cov["fallback:ziv"] += 1
            return PlanAction.ZIV
        if len(bases) == 1:
            shape = siv_shape(pair, context, next(iter(bases)))
            kind = _classify_siv(shape)
            emit = _pre_emit(table, positions)
            if self._route_siv(lanes, emit, shape, kind, context):
                cov[f"lane:{kind.value}"] += 1
            else:
                cov[f"fallback:{kind.value}"] += 1
            return PlanAction.SIV
        if len(bases) == 2:
            src_bases = context.base_indices_of(pair.src) if pair.src else set()
            sink_bases = (
                context.base_indices_of(pair.sink) if pair.sink else set()
            )
            if (
                len(src_bases) == 1
                and len(sink_bases) == 1
                and src_bases != sink_bases
            ):
                shape = rdiv_shape(pair, context)
                emit = _pre_emit(table, positions)
                if (shape.c2 - shape.c1).is_constant():
                    # Constant target: the RDIV test always applies, so
                    # the recorded action is RDIV either way.
                    if lanes.add_rdiv(emit, shape, context):
                        cov["lane:rdiv"] += 1
                    else:
                        cov["fallback:rdiv"] += 1
                    return PlanAction.RDIV
                # Symbolic target: the reference records the inapplicable
                # RDIV attempt (never counted) and runs Banerjee-GCD, so
                # the pair routes straight to the MIV lane.
                if lanes.add_miv(
                    emit, pair, context, bases, PlanAction.RDIV_MIV
                ):
                    cov["lane:miv"] += 1
                else:
                    cov["fallback:miv"] += 1
                return PlanAction.RDIV_MIV
        emit = _pre_emit(table, positions)
        if lanes.add_miv(emit, pair, context, bases, PlanAction.MIV):
            cov["lane:miv"] += 1
        else:
            cov["fallback:miv"] += 1
        return PlanAction.MIV

    def _route_siv(
        self,
        lanes: "_Lanes",
        emit,
        shape,
        kind: SubscriptKind,
        context: PairContext,
    ) -> bool:
        """Route one SIV shape to its lane, mirroring ``siv_test`` dispatch."""
        if kind is SubscriptKind.SIV_STRONG:
            return lanes.add_strong_siv(emit, shape, context)
        if kind is SubscriptKind.SIV_WEAK_ZERO:
            return lanes.add_weak_zero_siv(emit, shape, context)
        if kind is SubscriptKind.SIV_WEAK_CROSSING:
            if shape.src_name is not None and shape.sink_name is not None:
                return lanes.add_weak_crossing_siv(emit, shape, context)
            # One side's loop does not enclose the reference: the
            # reference dispatch falls through to the exact test.
            return lanes.add_exact_siv(emit, shape, context)
        return lanes.add_exact_siv(emit, shape, context)

    # -- coupled groups: lock-step Delta pre-runs --------------------------

    def _run_groups(self, groups: List[_GroupTask]) -> None:
        """Advance every coupled group's Delta reduction in lock step.

        Each round gathers the ZIV/SIV requests of *all* still-running
        groups and answers them with one vectorized lane evaluation
        (per-request fallback to the identical single-test calls); the
        sequential constraint walk runs inside each group's generator
        between rounds.  A group failing in any way simply loses its
        precomputation — the driver walk then runs the real
        ``delta_test``.
        """
        cov = self._coverage
        active: List[_GroupTask] = []
        for task in groups:
            try:
                task.recorder = TestRecorder()
                budget = None
                if task.limit is not None:
                    task.budget = _SpendLog(task.limit)
                    budget = task.budget
                task.state = delta_prepare(
                    task.pairs, task.context, task.recorder,
                    task.options, budget,
                )
                task.gen = task.state.rounds()
                task.request = task.gen.send(None)
                active.append(task)
            except StopIteration as stop:
                self._finish_group(task, bool(stop.value))
            except Exception:
                cov["delta:groups_fallback"] += 1
        while active:
            cov["delta:rounds"] += 1
            evaluations = self._eval_round(active)
            advancing: List[_GroupTask] = []
            for task, outcomes in zip(active, evaluations):
                try:
                    task.request = task.gen.send(outcomes)
                    advancing.append(task)
                except StopIteration as stop:
                    self._finish_group(task, bool(stop.value))
                except Exception:
                    cov["delta:groups_fallback"] += 1
            active = advancing

    def _eval_round(
        self, active: List[_GroupTask]
    ) -> List[List[Optional[TestOutcome]]]:
        """Evaluate one lock-step round of ZIV/SIV requests across groups."""
        cov = self._coverage
        lanes = _Lanes(cov)
        evaluations: List[List[Optional[TestOutcome]]] = []
        direct: List[Tuple[List[Optional[TestOutcome]], int, SubscriptPair,
                           SubscriptKind, PairContext]] = []
        for task in active:
            tests, ctx = task.request
            outcomes: List[Optional[TestOutcome]] = [None] * len(tests)
            evaluations.append(outcomes)
            for index, (pair, kind) in enumerate(tests):
                emit = _slot_emit(outcomes, index)
                if self._route_round_test(lanes, emit, pair, kind, ctx):
                    cov["delta:inner_lane"] += 1
                else:
                    cov["delta:inner_direct"] += 1
                    direct.append((outcomes, index, pair, kind, ctx))
        lanes.evaluate(self.np, None)
        for outcomes, index, pair, kind, ctx in direct:
            if kind is SubscriptKind.ZIV:
                outcomes[index] = ziv_test(pair, ctx)
            else:
                outcomes[index] = siv_test(pair, ctx)
        return evaluations

    def _route_round_test(
        self,
        lanes: "_Lanes",
        emit,
        pair: SubscriptPair,
        kind: SubscriptKind,
        ctx: PairContext,
    ) -> bool:
        """Route one in-round request to a lane against the round context."""
        if kind is SubscriptKind.ZIV:
            return lanes.add_ziv(emit, pair)
        bases = ctx.subscript_bases(pair)
        if len(bases) != 1:
            return False  # defensive: siv_test itself re-classifies
        shape = siv_shape(pair, ctx, next(iter(bases)))
        if _classify_siv(shape) is not kind:
            return False
        return self._route_siv(lanes, emit, shape, kind, ctx)

    def _finish_group(self, task: _GroupTask, independent: bool) -> None:
        """Store one finished group's outcome, recorder delta, and spends."""
        try:
            outcome = delta_finalize(task.state, task.recorder, independent)
        except Exception:
            self._coverage["delta:groups_fallback"] += 1
            return
        spends = tuple(task.budget.log) if task.budget is not None else ()
        task.table.pre[task.positions] = _DeltaPre(
            outcome, task.recorder, spends
        )
        self._coverage["delta:groups_batched"] += 1


# ---------------------------------------------------------------------------
# Vectorized two-variable Diophantine queries
# ---------------------------------------------------------------------------


def _vec_ext_gcd(np, a, b):
    """Vectorized extended Euclid: ``(g, x, y)`` with ``a*x + b*y = g``.

    Mirrors :func:`repro.symbolic.diophantine.ext_gcd` elementwise,
    including the non-negative ``g`` normalization; rows converge in at
    most O(log max|input|) masked iterations.
    """
    old_r = a.astype(np.int64).copy()
    r = b.astype(np.int64).copy()
    old_x = np.ones_like(old_r)
    x = np.zeros_like(old_r)
    old_y = np.zeros_like(old_r)
    y = np.ones_like(old_r)
    while True:
        mask = r != 0
        if not mask.any():
            break
        safe = np.where(mask, r, 1)
        q = np.where(mask, old_r // safe, 0)
        old_r, r = np.where(mask, r, old_r), np.where(mask, old_r - q * r, r)
        old_x, x = np.where(mask, x, old_x), np.where(mask, old_x - q * x, x)
        old_y, y = np.where(mask, y, old_y), np.where(mask, old_y - q * y, y)
    neg = old_r < 0
    return (
        np.where(neg, -old_r, old_r),
        np.where(neg, -old_x, old_x),
        np.where(neg, -old_y, old_y),
    )


def _dio_solve(np, a, b, c):
    """Vectorized ``solve_linear_2var``: rows must not have ``a == b == 0``.

    Returns ``(solvable, x0, y0, dx, dy)`` arrays describing the solution
    family ``(x0 + dx*t, y0 + dy*t)`` wherever ``solvable``.
    """
    g, px, py = _vec_ext_gcd(np, a, b)
    solvable = (c % g) == 0
    scale = np.where(solvable, c // g, 0)
    return solvable, px * scale, py * scale, b // g, -(a // g)


def _dio_constrain(np, family, condition, ok, tlo, thi):
    """Fold one ``lo <= cx*x + cy*y <= hi`` condition into the t-interval.

    ``condition`` is ``(cx, cy, lo, hi)`` with scalar integer ``cx``/``cy``
    and float bound arrays (±inf allowed).  Returns updated
    ``(ok, tlo, thi)``; all finite arithmetic runs in int64 (``ceil_div``
    as ``-((-p) // q)``), so no float rounding can move a boundary.
    """
    _, x0, y0, dx, dy = family
    cx, cy, lo, hi = condition
    base = cx * x0 + cy * y0
    step = cx * dx + cy * dy
    lo_fin = np.isfinite(lo)
    hi_fin = np.isfinite(hi)
    lo_i = np.where(lo_fin, lo, 0).astype(np.int64)
    hi_i = np.where(hi_fin, hi, 0).astype(np.int64)
    zero = step == 0
    ok = ok & ~(
        zero & ((lo_fin & (base < lo_i)) | (hi_fin & (base > hi_i)))
    )
    positive = step > 0
    astep = np.abs(np.where(zero, 1, step))
    tlo_fin = np.where(positive, lo_fin, hi_fin)
    thi_fin = np.where(positive, hi_fin, lo_fin)
    tlo_num = np.where(positive, lo_i - base, base - hi_i)
    thi_num = np.where(positive, hi_i - base, base - lo_i)
    cand_tlo = -((-tlo_num) // astep)
    cand_thi = thi_num // astep
    update = ~zero & tlo_fin
    tlo = np.where(
        update, np.maximum(tlo, cand_tlo.astype(np.float64)), tlo
    )
    update = ~zero & thi_fin
    thi = np.where(
        update, np.minimum(thi, cand_thi.astype(np.float64)), thi
    )
    return ok, tlo, thi


def _dio_open(np, family):
    """A fresh (unconstrained) feasibility state for a solution family."""
    solvable = family[0]
    n = solvable.shape[0]
    return (
        solvable.copy(),
        np.full(n, -np.inf),
        np.full(n, np.inf),
    )


def _dio_feasible(ok, tlo, thi):
    """Collapse a feasibility state to a boolean array."""
    return ok & (tlo <= thi)


class _Lanes:
    """Accumulated vectorizable work, grouped by test class."""

    def __init__(self, coverage: Optional[Counter] = None) -> None:
        self.coverage = coverage if coverage is not None else Counter()
        self.ziv: List[tuple] = []
        self.strong: List[tuple] = []
        self.weak_zero: List[tuple] = []
        self.weak_crossing: List[tuple] = []
        self.exact: List[tuple] = []
        self.rdiv: List[tuple] = []
        #: depth -> list of extracted MIV hierarchy problems.
        self.miv: Dict[int, List[tuple]] = {}
        #: Coupled groups registered for the lock-step Delta pre-run.
        self.groups: List[_GroupTask] = []

    # -- extraction -------------------------------------------------------

    def add_ziv(self, emit, pair) -> bool:
        if not pair.is_linear:
            return False
        difference = pair.difference()
        if not difference.is_constant():
            return False  # symbolic ZIV: interval reasoning, per-pair fallback
        value = difference.constant_value()
        if not isinstance(value, int) or abs(value) > _SAFE_INT:
            return False
        self.ziv.append((emit, value))
        return True

    def add_strong_siv(self, emit, shape, context) -> bool:
        if shape.a1 != shape.a2 or shape.a1 == 0:
            return False
        diff = shape.c1 - shape.c2
        if not diff.is_constant():
            return False  # symbolic difference: interval path, per-pair fallback
        value = diff.constant_value()
        if not isinstance(value, int) or abs(value) > _SAFE_INT:
            return False
        span = context.trip_span(shape.index)
        lo, hi = _endpoint(span.lo), _endpoint(span.hi)
        if lo is None or hi is None or abs(shape.a1) > _SAFE_INT:
            return False
        self.strong.append((emit, shape, value, lo, hi))
        return True

    def add_weak_zero_siv(self, emit, shape, context) -> bool:
        if shape.a1 != 0 and shape.a2 == 0:
            a, target = shape.a1, shape.c2 - shape.c1
            solved_name, solving_src = shape.src_name, True
        elif shape.a1 == 0 and shape.a2 != 0:
            a, target = shape.a2, shape.c1 - shape.c2
            solved_name, solving_src = shape.sink_name, False
        else:
            return False
        if solved_name is None or not target.is_constant():
            return False
        value = target.constant_value()
        if not isinstance(value, int) or abs(value) > _SAFE_INT:
            return False
        index_range = context.range_of(solved_name)
        lo, hi = _endpoint(index_range.lo), _endpoint(index_range.hi)
        if lo is None or hi is None or abs(a) > _SAFE_INT:
            return False
        self.weak_zero.append(
            (emit, shape, solving_src, index_range, a, value, lo, hi)
        )
        return True

    def add_weak_crossing_siv(self, emit, shape, context) -> bool:
        """The weak-crossing lane: constant crossing target, exact floats."""
        if shape.a1 == 0 or shape.a1 != -shape.a2:
            return False
        if shape.src_name is None or shape.sink_name is None:
            return False
        target = shape.c2 - shape.c1
        if not target.is_constant():
            return False  # symbolic target: interval path, per-pair fallback
        value = target.constant_value()
        if not isinstance(value, int) or abs(value) > _SAFE_INT:
            return False
        if abs(shape.a1) > _SAFE_INT:
            return False
        index_range = context.range_of(shape.src_name).hull(
            context.range_of(shape.sink_name)
        )
        lo, hi = _endpoint(index_range.lo), _endpoint(index_range.hi)
        if lo is None or hi is None:
            return False
        self.weak_crossing.append(
            (emit, shape, index_range, shape.a1, value, lo, hi)
        )
        return True

    def add_exact_siv(self, emit, shape, context) -> bool:
        """The general SIV lane: vectorized exact Diophantine queries."""
        if shape.a1 == shape.a2:
            return False  # strong shape (or ZIV): never reaches the exact test
        target = shape.c2 - shape.c1
        if not target.is_constant():
            return False
        c = target.constant_value()
        if not isinstance(c, int) or abs(c) > _DIO_CONST_MAX:
            return False
        if abs(shape.a1) > _DIO_COEF_MAX or abs(shape.a2) > _DIO_COEF_MAX:
            return False
        x_range = (
            context.range_of(shape.src_name)
            if shape.src_name
            else Interval.unbounded()
        )
        y_range = (
            context.range_of(shape.sink_name)
            if shape.sink_name
            else Interval.unbounded()
        )
        xlo, xhi = _endpoint(x_range.lo), _endpoint(x_range.hi)
        ylo, yhi = _endpoint(y_range.lo), _endpoint(y_range.hi)
        if xlo is None or xhi is None or ylo is None or yhi is None:
            return False
        witness_bounded = x_range.is_bounded() and y_range.is_bounded()
        both_names = shape.src_name is not None and shape.sink_name is not None
        self.exact.append(
            (emit, shape, c, xlo, xhi, ylo, yhi, both_names, witness_bounded)
        )
        return True

    def add_rdiv(self, emit, shape, context) -> bool:
        """The RDIV lane: one vectorized box-feasibility query per pair."""
        target = shape.c2 - shape.c1
        if not target.is_constant():
            return False
        c = target.constant_value()
        if not isinstance(c, int) or abs(c) > _DIO_CONST_MAX:
            return False
        if abs(shape.a1) > _DIO_COEF_MAX or abs(shape.a2) > _DIO_COEF_MAX:
            return False
        if shape.a1 == 0 and shape.a2 == 0:
            return False  # degenerate: cannot arise from a real RDIV shape
        x_range = (
            context.range_of(shape.src_name)
            if shape.src_name
            else Interval.unbounded()
        )
        y_range = (
            context.range_of(shape.sink_name)
            if shape.sink_name
            else Interval.unbounded()
        )
        xlo, xhi = _endpoint(x_range.lo), _endpoint(x_range.hi)
        ylo, yhi = _endpoint(y_range.lo), _endpoint(y_range.hi)
        if xlo is None or xhi is None or ylo is None or yhi is None:
            return False
        witness_bounded = x_range.is_bounded() and y_range.is_bounded()
        self.rdiv.append(
            (emit, shape.a1, shape.a2, c, xlo, xhi, ylo, yhi, witness_bounded)
        )
        return True

    def add_miv(self, emit, pair, context, bases, action) -> bool:
        from math import gcd

        h = pair.difference()
        g = 0
        symbolic: List[int] = []
        for name, coeff in h.terms:
            if _is_index_occurrence(name, context):
                g = gcd(g, abs(coeff))
            else:
                symbolic.append(coeff)
        if (
            g != 0
            and all(coeff % g == 0 for coeff in symbolic)
            and h.const % g != 0
        ):
            # GCD refutes every unconstrained solution: done, no bounds.
            emit(TestOutcome.proves_independence("banerjee-gcd"), action)
            return True
        refine = [base for base in context.common_indices if base in bases]
        depth = len(refine)
        if depth == 0 or depth > _MAX_MIV_DEPTH:
            return False  # trivial or combinatorially deep: per-pair fallback
        refine_set = set(refine)
        env = context.variable_env()
        fixed = Interval.point(h.const)
        handled = set()
        terms: Dict[str, List[Tuple[float, float]]] = {}
        for base in context.common_indices:
            src_name, sink_name = context.occurrence_names(base)
            x = h.coeff(src_name) if src_name else 0
            y = h.coeff(sink_name) if sink_name else 0
            if x == 0 and y == 0:
                if base in refine_set:
                    # No contribution in any direction (mirrors the
                    # reference bounds computation skipping the term).
                    terms[base] = [(0.0, 0.0)] * 3
                continue
            handled.add(src_name or "")
            handled.add(sink_name or "")
            src_range = (
                context.range_of(src_name) if src_name else Interval.unbounded()
            )
            sink_range = (
                context.range_of(sink_name) if sink_name else Interval.unbounded()
            )
            if base in refine_set:
                bounds = []
                for direction in _DIRECTIONS:
                    term = _term_bounds(x, y, src_range, sink_range, direction)
                    if term.is_empty():
                        # +inf/-inf sentinel: any assignment through an
                        # empty region sums to an illegal interval.
                        bounds.append((float("inf"), float("-inf")))
                        continue
                    lo, hi = _endpoint(term.lo), _endpoint(term.hi)
                    if lo is None or hi is None:
                        return False
                    bounds.append((lo, hi))
                terms[base] = bounds
            else:
                term = _term_bounds(x, y, src_range, sink_range, None)
                if term.is_empty():
                    fixed = Interval.empty()
                    break
                fixed = fixed + term
        else:
            for name, coeff in h.terms:
                if name in handled:
                    continue
                fixed = fixed + env.get(name, Interval.unbounded()).scale(coeff)
        if fixed.is_empty():
            emit(
                TestOutcome.proves_independence("banerjee-gcd", exact=False),
                action,
            )
            return True
        lo, hi = _endpoint(fixed.lo), _endpoint(fixed.hi)
        if lo is None or hi is None:
            return False
        self.miv.setdefault(depth, []).append(
            (emit, action, refine, [terms[base] for base in refine], lo, hi)
        )
        return True

    # -- vectorized evaluation --------------------------------------------

    def evaluate(self, np, profile) -> None:
        if self.ziv:
            self._timed(profile, "ziv", self._eval_ziv, np)
        if (
            self.strong
            or self.weak_zero
            or self.weak_crossing
            or self.exact
        ):
            self._timed(profile, "siv", self._eval_siv, np)
        if self.rdiv:
            self._timed(profile, "rdiv", self._eval_rdiv, np)
        if self.miv:
            self._timed(profile, "miv", self._eval_miv, np)

    @staticmethod
    def _timed(profile, tier, func, np) -> None:
        if profile is None:
            func(np)
            return
        start = perf_counter()
        try:
            func(np)
        finally:
            profile.add_test(tier, perf_counter() - start)

    def _eval_ziv(self, np) -> None:
        values = np.array([value for _, value in self.ziv], dtype=np.int64)
        nonzero = values != 0
        for (emit, _), indep in zip(self.ziv, nonzero):
            if indep:
                outcome = TestOutcome.proves_independence("ziv")
            else:
                outcome = TestOutcome("ziv", exact=True)
            emit(outcome, PlanAction.ZIV)

    def _eval_siv(self, np) -> None:
        if self.strong:
            self._eval_strong(np)
        if self.weak_zero:
            self._eval_weak_zero(np)
        if self.weak_crossing:
            self._eval_weak_crossing(np)
        if self.exact:
            self._eval_exact(np)

    def _eval_strong(self, np) -> None:
        rows = self.strong
        a = np.array([r[1].a1 for r in rows], dtype=np.int64)
        value = np.array([r[2] for r in rows], dtype=np.int64)
        lo = np.array([r[3] for r in rows])
        hi = np.array([r[4] for r in rows])
        finite_hi = np.isfinite(hi)
        zero_trip = (lo > hi) | (finite_hi & (hi < 0))
        not_divisible = (value % a) != 0
        distance = value // a
        too_far = finite_hi & (np.abs(distance).astype(np.float64) > hi)
        independent = zero_trip | not_divisible | too_far
        verified = finite_hi | (distance == 0)
        for k, (emit, shape, *_rest) in enumerate(rows):
            if independent[k]:
                outcome = TestOutcome.proves_independence("strong-siv")
            else:
                d = int(distance[k])
                outcome = TestOutcome(
                    "strong-siv",
                    exact=bool(verified[k]),
                    constraints={shape.index: constraint_from_distance(d)},
                    notes={"distance": d},
                )
            emit(outcome, PlanAction.SIV)

    def _eval_weak_zero(self, np) -> None:
        rows = self.weak_zero
        a = np.array([r[4] for r in rows], dtype=np.int64)
        value = np.array([r[5] for r in rows], dtype=np.int64)
        lo = np.array([r[6] for r in rows])
        hi = np.array([r[7] for r in rows])
        not_divisible = (value % a) != 0
        iteration = value // a
        as_float = iteration.astype(np.float64)
        out_of_range = (as_float < lo) | (as_float > hi)
        independent = not_divisible | out_of_range
        for k, (emit, shape, solving_src, index_range, *_r) in enumerate(rows):
            if independent[k]:
                outcome = TestOutcome.proves_independence("weak-zero-siv")
            else:
                pinned = int(iteration[k])
                notes: Dict[str, object] = {
                    "solved_side": "src" if solving_src else "sink"
                }
                notes["zero_iteration"] = pinned
                if pinned == index_range.lo:
                    notes["boundary"] = "first"
                elif pinned == index_range.hi:
                    notes["boundary"] = "last"
                directions = _weak_zero_directions(
                    pinned, index_range, solving_src
                )
                verified = index_range.is_bounded() or pinned == index_range.lo
                outcome = TestOutcome(
                    "weak-zero-siv",
                    exact=verified,
                    constraints={shape.index: IndexConstraint(directions)},
                    notes=notes,
                )
            emit(outcome, PlanAction.SIV)

    def _eval_weak_crossing(self, np) -> None:
        rows = self.weak_crossing
        a = np.array([r[3] for r in rows], dtype=np.int64)
        value = np.array([r[4] for r in rows], dtype=np.int64)
        lo = np.array([r[5] for r in rows])
        hi = np.array([r[6] for r in rows])
        lo2, hi2 = 2.0 * lo, 2.0 * hi
        not_divisible = (value % a) != 0
        crossing = value // a
        as_float = crossing.astype(np.float64)
        independent = not_divisible | (as_float < lo2) | (as_float > hi2)
        even = (crossing % 2) == 0
        half = (crossing // 2).astype(np.float64)
        eq_ok = even & (half >= lo) & (half <= hi)
        interior = (lo2 < as_float) & (as_float < hi2)
        for k, (emit, shape, index_range, *_rest) in enumerate(rows):
            if independent[k]:
                outcome = TestOutcome.proves_independence("weak-crossing-siv")
            else:
                crossing_sum = int(crossing[k])
                directions = set()
                if eq_ok[k]:
                    directions.add(Direction.EQ)
                if interior[k]:
                    directions.add(Direction.LT)
                    directions.add(Direction.GT)
                notes = {
                    "crossing_sum": crossing_sum,
                    "crossing_iteration": Fraction(crossing_sum, 2),
                }
                outcome = TestOutcome(
                    "weak-crossing-siv",
                    exact=index_range.is_bounded(),
                    constraints={
                        shape.index: IndexConstraint(frozenset(directions))
                    },
                    notes=notes,
                )
            emit(outcome, PlanAction.SIV)

    def _eval_exact(self, np) -> None:
        rows = self.exact
        a = np.array([r[1].a1 for r in rows], dtype=np.int64)
        b = np.array([-r[1].a2 for r in rows], dtype=np.int64)
        c = np.array([r[2] for r in rows], dtype=np.int64)
        xlo = np.array([r[3] for r in rows])
        xhi = np.array([r[4] for r in rows])
        ylo = np.array([r[5] for r in rows])
        yhi = np.array([r[6] for r in rows])
        family = _dio_solve(np, a, b, c)
        ok, tlo, thi = _dio_open(np, family)
        ok, tlo, thi = _dio_constrain(np, family, (1, 0, xlo, xhi), ok, tlo, thi)
        ok, tlo, thi = _dio_constrain(np, family, (0, 1, ylo, yhi), ok, tlo, thi)
        in_box = _dio_feasible(ok, tlo, thi)
        neg_inf = np.full(c.shape, -np.inf)
        pos_inf = np.full(c.shape, np.inf)
        minus_one = np.full(c.shape, -1.0)
        plus_one = np.full(c.shape, 1.0)
        zero = np.zeros(c.shape)
        lt = _dio_feasible(
            *_dio_constrain(np, family, (1, -1, neg_inf, minus_one), ok, tlo, thi)
        )
        eq = _dio_feasible(
            *_dio_constrain(np, family, (1, -1, zero, zero), ok, tlo, thi)
        )
        gt = _dio_feasible(
            *_dio_constrain(np, family, (1, -1, plus_one, pos_inf), ok, tlo, thi)
        )
        for k, (emit, shape, *_mid, both_names, witness_bounded) in enumerate(
            rows
        ):
            if not in_box[k]:
                outcome = TestOutcome.proves_independence("exact-siv")
            elif not both_names:
                # Only one occurrence: no ordering information to compute.
                outcome = TestOutcome("exact-siv", exact=witness_bounded)
            else:
                directions = set()
                if lt[k]:
                    directions.add(Direction.LT)
                if eq[k]:
                    directions.add(Direction.EQ)
                if gt[k]:
                    directions.add(Direction.GT)
                # The lane excludes ``a1 == a2`` shapes, so the solution
                # family never has ``dx == dy`` and the reference's
                # fixed-distance branch cannot fire: notes stay empty.
                outcome = TestOutcome(
                    "exact-siv",
                    exact=witness_bounded,
                    constraints={
                        shape.index: IndexConstraint(frozenset(directions))
                    },
                    notes={},
                )
            emit(outcome, PlanAction.SIV)

    def _eval_rdiv(self, np) -> None:
        rows = self.rdiv
        a = np.array([r[1] for r in rows], dtype=np.int64)
        b = np.array([-r[2] for r in rows], dtype=np.int64)
        c = np.array([r[3] for r in rows], dtype=np.int64)
        xlo = np.array([r[4] for r in rows])
        xhi = np.array([r[5] for r in rows])
        ylo = np.array([r[6] for r in rows])
        yhi = np.array([r[7] for r in rows])
        family = _dio_solve(np, a, b, c)
        ok, tlo, thi = _dio_open(np, family)
        ok, tlo, thi = _dio_constrain(np, family, (1, 0, xlo, xhi), ok, tlo, thi)
        ok, tlo, thi = _dio_constrain(np, family, (0, 1, ylo, yhi), ok, tlo, thi)
        feasible = _dio_feasible(ok, tlo, thi)
        for k, row in enumerate(rows):
            emit, witness_bounded = row[0], row[8]
            if feasible[k]:
                # The found witness lies inside *known* bounds only when
                # both ranges are bounded (mirrors ``rdiv_test``).
                outcome = TestOutcome("rdiv", exact=witness_bounded)
            else:
                outcome = TestOutcome.proves_independence("rdiv")
            emit(outcome, PlanAction.RDIV)

    def _eval_miv(self, np) -> None:
        for depth, rows in self.miv.items():
            assign = np.array(
                list(product(range(3), repeat=depth)), dtype=np.intp
            )
            term_lo = np.array(
                [[[b[0] for b in dirs] for dirs in r[3]] for r in rows]
            )
            term_hi = np.array(
                [[[b[1] for b in dirs] for dirs in r[3]] for r in rows]
            )
            fixed_lo = np.array([r[4] for r in rows])
            fixed_hi = np.array([r[5] for r in rows])
            idx = np.arange(depth)
            with np.errstate(invalid="ignore"):
                lo_tot = fixed_lo[:, None] + term_lo[:, idx[None, :], assign].sum(
                    axis=2
                )
                hi_tot = fixed_hi[:, None] + term_hi[:, idx[None, :], assign].sum(
                    axis=2
                )
                legal = (lo_tot <= 0) & (hi_tot >= 0)  # NaN compares False
            for k, (emit, action, refine, *_rest) in enumerate(rows):
                vectors = frozenset(
                    tuple(_DIRECTIONS[assign[j, pos]] for pos in range(depth))
                    for j in np.nonzero(legal[k])[0]
                )
                name = "banerjee-gcd"
                if not vectors:
                    outcome = TestOutcome.proves_independence(name, exact=False)
                else:
                    outcome = TestOutcome(name, exact=False)
                    outcome.couplings.append((tuple(refine), vectors))
                    for position, base in enumerate(refine):
                        directions = frozenset(
                            vec[position] for vec in vectors
                        )
                        outcome.constraints[base] = IndexConstraint(directions)
                emit(outcome, action)
