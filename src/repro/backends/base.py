"""The backend seam: one pair-test request, and the interface that serves it.

A *backend* is the thing that actually evaluates the paper's test cascade
for a prepared pair.  The driver stack above it — canonical-key cache,
test plans, the persistent store, the parallel builder — is backend
agnostic: it hands a backend :class:`BatchItem` objects (a pair's
:class:`~repro.classify.pairs.PairContext` plus the run's knobs) and gets
back a :class:`~repro.core.driver.DependenceResult` per item, with the
item's private :class:`~repro.instrument.TestRecorder` carrying exactly
the counter delta a serial uncached run would have produced.

Two call shapes exist:

``run_pair``
    One pair, synchronously, exceptions propagating — the drop-in
    equivalent of calling :func:`~repro.core.driver.test_dependence`.
    The *caller* owns fault handling (the cache's miss path wraps it).

``run_batch``
    Many pairs at once.  Each item is individually guarded: a failing
    pair records its exception in ``item.error`` (and resets the item's
    recorder, preserving counter parity with the degraded path) instead
    of taking its batch-mates down.  The per-pair fault-injection hook
    fires inside the guard, exactly where the per-pair paths fire it.
    Batch-capable backends override this to group items by test class
    and evaluate each group in bulk; the base implementation is the
    plain per-pair loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.classify.pairs import PairContext
from repro.core.driver import DependenceResult, test_dependence
from repro.core.plan import PlanRecorder, TestPlan
from repro.delta.delta import DEFAULT_OPTIONS, DeltaOptions
from repro.instrument import TestRecorder


@dataclass
class BatchItem:
    """One pair-test request flowing through a backend's batch interface.

    Inputs mirror the keyword surface of
    :func:`~repro.core.driver.test_dependence`; ``recorder`` is the item's
    *private* recorder (callers merge it on success and discard it on
    failure, exactly like the cache's miss path).  After ``run_batch``,
    exactly one of ``result`` / ``error`` is set.
    """

    context: PairContext
    delta_options: DeltaOptions = DEFAULT_OPTIONS
    plan: Optional[TestPlan] = None
    plan_recorder: Optional[PlanRecorder] = None
    profile: object = None
    budget: object = None
    recorder: TestRecorder = field(default_factory=TestRecorder)
    result: Optional[DependenceResult] = None
    error: Optional[BaseException] = None


class TestBackend:
    """Interface all registered backends implement.

    ``batching`` advertises whether graph builders should gather prepared
    pairs and call :meth:`run_batch` in bulk; per-pair backends leave it
    False so the serial fast path stays exactly as it was.
    """

    __test__ = False  # not a pytest test class despite the name

    name = "abstract"
    batching = False

    def run_pair(
        self,
        context: PairContext,
        recorder: Optional[TestRecorder] = None,
        delta_options: DeltaOptions = DEFAULT_OPTIONS,
        plan: Optional[TestPlan] = None,
        plan_recorder: Optional[PlanRecorder] = None,
        profile=None,
        budget=None,
    ) -> DependenceResult:
        """Test one prepared pair; exceptions propagate to the caller."""
        return test_dependence(
            context.src_site,
            context.sink_site,
            symbols=context.symbols,
            recorder=recorder,
            delta_options=delta_options,
            context=context,
            plan=plan,
            plan_recorder=plan_recorder,
            profile=profile,
            budget=budget,
        )

    def run_batch(self, items: Sequence[BatchItem]) -> None:
        """Test every item, filling ``result`` or ``error`` per item."""
        for item in items:
            self._run_item(item)

    def take_coverage(self):
        """Drain accumulated batch-coverage counters, or None.

        Batch-capable backends count, per :meth:`run_batch`, how much of
        the work ran through vectorized lanes versus fell back to the
        per-pair walk (and why).  The engine harvests the counters after
        each batch and folds them into ``EngineStats.backend_coverage``;
        per-pair backends have nothing to report.
        """
        return None

    def _run_item(self, item: BatchItem, dispatcher=None) -> None:
        """One guarded item: fault hook, test, per-item error capture."""
        # Imported here, not at module top: the engine package imports the
        # backends package (via the cached driver), so a top-level import
        # of any ``repro.engine`` module would be circular.
        from repro.engine import faultinject

        try:
            # A pair starting after the request deadline has already
            # expired degrades in O(1) — checked before the fault hook,
            # mirroring the per-pair resolve path, so an injected delay
            # (or any per-pair setup cost) can't stretch an expired
            # request across the whole batch.
            deadline = getattr(item.budget, "deadline", None)
            if deadline is not None:
                deadline.check()
            faultinject.on_pair(item.context.src_site.ref.array)
            item.result = test_dependence(
                item.context.src_site,
                item.context.sink_site,
                symbols=item.context.symbols,
                recorder=item.recorder,
                delta_options=item.delta_options,
                context=item.context,
                plan=item.plan,
                plan_recorder=item.plan_recorder,
                profile=item.profile,
                budget=item.budget,
                dispatcher=dispatcher,
            )
        except Exception as exc:
            item.error = exc
            item.result = None
            item.recorder = TestRecorder()  # discard partial counters: parity
