"""The reference backend: the per-pair driver path, behind the interface.

This is the exact code path every release before the backend split ran —
:func:`~repro.core.driver.test_dependence` once per pair, partitions
dispatched one at a time.  It exists as a named backend so the batched
implementation has a ground truth to be parity-checked against (the
breezy ``_groupcompress_py`` pattern: the pure-Python reference defines
correct behavior; fast implementations must match it byte for byte) and
so environments without numpy lose nothing but speed.
"""

from __future__ import annotations

from repro.backends.base import TestBackend


class ReferenceBackend(TestBackend):
    """Per-pair evaluation via the unmodified partition-based driver."""

    name = "reference"
    batching = False
