"""The I-test (Kong, Klappholz & Psarris 1990; paper Section 7.2).

The paper's related work: "The I-test ... integrates the GCD and Banerjee
tests and can usually prove integer solutions."  It decides whether

    a1*x1 + ... + an*xn = c,     Lk <= xk <= Uk

has an *integer* solution by manipulating an **interval equation**
``sum(ak*xk) = [lo, hi]``:

* a term whose coefficient satisfies ``|ak| <= hi - lo + 1`` may be *moved
  into* the interval (the interval grows by the term's value range and,
  because the stride ``|ak|`` cannot out-jump the interval's width, no
  integer gaps appear — this absorption is exact);
* when no term qualifies, the equation is divided through by the GCD of
  the remaining coefficients (the GCD-test step), shrinking the interval
  to its multiples;
* an empty interval at any point proves independence; an equation with no
  terms left is solvable iff ``lo <= 0 <= hi``.

When every step is an exact absorption the verdict is exact in both
directions; otherwise a "dependent" answer is conservative (marked
inexact), exactly as the original paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import List, Optional, Sequence, Tuple

from repro.classify.pairs import PairContext, SubscriptPair, unprime
from repro.single.outcome import TestOutcome
from repro.symbolic.ranges import Interval, ceil_div, floor_div, is_finite

TEST_NAME = "i-test"


@dataclass(frozen=True)
class BoundedTerm:
    """One variable term ``coeff * x`` with ``x`` in ``[lo, hi]``."""

    name: str
    coeff: int
    lo: int
    hi: int

    def value_range(self) -> Tuple[int, int]:
        values = (self.coeff * self.lo, self.coeff * self.hi)
        return min(values), max(values)


@dataclass
class ITestResult:
    """Outcome of one interval-equation run.

    ``solvable`` — whether an integer solution may exist;
    ``exact`` — True when every manipulation preserved exactness, so the
    ``solvable`` answer is definitive in both directions.
    """

    solvable: bool
    exact: bool
    steps: List[str]


def interval_equation_test(
    terms: Sequence[BoundedTerm], constant: int
) -> ITestResult:
    """Decide ``sum(coeff*x) = constant`` with bounded integer variables."""
    lo = hi = constant
    remaining = list(terms)
    exact = True
    steps: List[str] = []
    while remaining:
        width = hi - lo + 1
        movable = [t for t in remaining if abs(t.coeff) <= width]
        if movable:
            term = movable[0]
            value_lo, value_hi = term.value_range()
            lo -= value_hi
            hi -= value_lo
            remaining.remove(term)
            steps.append(
                f"absorb {term.coeff}*{term.name} -> [{lo}, {hi}]"
            )
            continue
        g = 0
        for term in remaining:
            g = gcd(g, abs(term.coeff))
        if g <= 1:
            # Cannot refine further: unbounded-style fallback (inexact).
            value_lo = sum(t.value_range()[0] for t in remaining)
            value_hi = sum(t.value_range()[1] for t in remaining)
            overlap = not (value_hi < lo or value_lo > hi)
            steps.append("fallback to value-range overlap")
            return ITestResult(overlap, False, steps)
        new_lo = ceil_div(lo, g)
        new_hi = floor_div(hi, g)
        steps.append(f"divide by gcd {g} -> [{new_lo}, {new_hi}]")
        if new_lo > new_hi:
            return ITestResult(False, True, steps)
        lo, hi = new_lo, new_hi
        remaining = [
            BoundedTerm(t.name, t.coeff // g, t.lo, t.hi) for t in remaining
        ]
        # Division is exact for refutation but keeps exactness for the
        # solvable direction only if a solution in the reduced equation
        # maps back — it does (multiples of g cover the reduced interval).
    solvable = lo <= 0 <= hi
    steps.append(f"final interval [{lo}, {hi}]")
    return ITestResult(solvable, exact, steps)


def i_test(pair: SubscriptPair, context: PairContext) -> TestOutcome:
    """Apply the I-test to one linear subscript pair.

    Requires a constant invariant part and finite variable ranges for
    exactness; unknown ranges degrade gracefully (a variable with an
    unbounded range can always be absorbed conservatively).
    """
    if not pair.is_linear:
        return TestOutcome.not_applicable(TEST_NAME)
    h = pair.difference()
    terms: List[BoundedTerm] = []
    for name, coeff in h.terms:
        if not context.is_index(unprime(name)):
            # Symbolic invariant term: treat as an unbounded variable —
            # sound, but the result cannot be exact.
            bound = context.range_of(name)
            if not (is_finite(bound.lo) and is_finite(bound.hi)):
                return TestOutcome.not_applicable(TEST_NAME)
            terms.append(BoundedTerm(name, coeff, int(bound.lo), int(bound.hi)))
            continue
        bound = context.range_of(name)
        if not (is_finite(bound.lo) and is_finite(bound.hi)):
            return TestOutcome.not_applicable(TEST_NAME)
        terms.append(BoundedTerm(name, coeff, int(bound.lo), int(bound.hi)))
    if not terms:
        return TestOutcome.not_applicable(TEST_NAME)  # ZIV shape
    result = interval_equation_test(terms, -h.const)
    if not result.solvable:
        return TestOutcome.proves_independence(TEST_NAME, exact=True)
    return TestOutcome(TEST_NAME, exact=False, notes={"steps": result.steps,
                                                      "definitive": result.exact})
