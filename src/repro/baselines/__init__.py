"""Baseline dependence tests the paper compares against (Section 7)."""

from repro.baselines.fme import FMSystem, Inequality, box_system
from repro.baselines.itest import (
    BoundedTerm,
    ITestResult,
    i_test,
    interval_equation_test,
)
from repro.baselines.lam import lambda_combinations, lambda_test
from repro.baselines.mdgcd import (
    ParametricSolution,
    solve_integer_system,
    system_from_pairs,
)
from repro.baselines.power import mdgcd_test, power_test
from repro.baselines.subscript_by_subscript import (
    test_dependence_lambda,
    test_dependence_power,
    test_dependence_subscript_by_subscript,
)

__all__ = [
    "FMSystem",
    "Inequality",
    "box_system",
    "BoundedTerm",
    "ITestResult",
    "i_test",
    "interval_equation_test",
    "lambda_combinations",
    "lambda_test",
    "ParametricSolution",
    "solve_integer_system",
    "system_from_pairs",
    "mdgcd_test",
    "power_test",
    "test_dependence_lambda",
    "test_dependence_power",
    "test_dependence_subscript_by_subscript",
]
