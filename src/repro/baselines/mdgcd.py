"""The multidimensional GCD test (Banerjee [8], paper Section 7.3).

Checks for *simultaneous unconstrained* integer solutions of the coupled
dependence system by integer Gaussian elimination with unimodular column
operations: the system ``A x = c`` is reduced to echelon form ``A U = H``
so every integer point of the reduced system maps to an integer solution of
the original.  The elimination also yields the *parametric solution*
``x = x0 + B t`` over free integer parameters ``t``, which the Power test
feeds into Fourier-Motzkin elimination.

Symbolic loop-invariant terms are treated as additional unconstrained
integer unknowns — sound for proving independence (if no solution exists
with the symbols free, none exists for any fixed symbol values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.symbolic.linexpr import LinearExpr


@dataclass
class ParametricSolution:
    """All integer solutions of ``A x = c``: ``x = x0 + B t``, ``t`` free.

    ``variables`` names the solution components; ``basis`` holds one column
    per free parameter.
    """

    variables: Tuple[str, ...]
    x0: Tuple[int, ...]
    basis: Tuple[Tuple[int, ...], ...]  # basis[k][i]: coefficient of t_k in x_i

    @property
    def num_parameters(self) -> int:
        return len(self.basis)

    def component(self, name: str) -> Tuple[int, Tuple[int, ...]]:
        """``(constant, parameter coefficients)`` of one variable."""
        index = self.variables.index(name)
        return self.x0[index], tuple(column[index] for column in self.basis)


def solve_integer_system(
    equations: Sequence[Dict[str, int]],
    constants: Sequence[int],
    variables: Sequence[str],
) -> Optional[ParametricSolution]:
    """Solve ``A x = c`` over the integers.

    ``equations[r][v]`` is the coefficient of variable ``v`` in row ``r``;
    ``constants[r]`` the right-hand side.  Returns None when no integer
    solution exists (independence), else the full parametric solution.
    """
    names = list(variables)
    n = len(names)
    m = len(equations)
    matrix = [[equations[r].get(name, 0) for name in names] for r in range(m)]
    rhs = list(constants)
    unimodular = [[1 if i == j else 0 for j in range(n)] for i in range(n)]

    def column_axpy(target: int, source: int, factor: int) -> None:
        """column[target] -= factor * column[source] in both matrices."""
        for r in range(m):
            matrix[r][target] -= factor * matrix[r][source]
        for r in range(n):
            unimodular[r][target] -= factor * unimodular[r][source]

    def column_swap(a: int, b: int) -> None:
        for r in range(m):
            matrix[r][a], matrix[r][b] = matrix[r][b], matrix[r][a]
        for r in range(n):
            unimodular[r][a], unimodular[r][b] = unimodular[r][b], unimodular[r][a]

    pivot_cols: List[Optional[int]] = []
    col = 0
    for row in range(m):
        # Reduce columns col..n-1 of this row to a single nonzero entry
        # (their GCD) using Euclid's algorithm as column operations.
        while True:
            nonzero = [j for j in range(col, n) if matrix[row][j] != 0]
            if len(nonzero) <= 1:
                break
            nonzero.sort(key=lambda j: abs(matrix[row][j]))
            smallest = nonzero[0]
            for other in nonzero[1:]:
                factor = matrix[row][other] // matrix[row][smallest]
                column_axpy(other, smallest, factor)
        nonzero = [j for j in range(col, n) if matrix[row][j] != 0]
        if nonzero:
            if nonzero[0] != col:
                column_swap(nonzero[0], col)
            pivot_cols.append(col)
            col += 1
        else:
            pivot_cols.append(None)

    # Forward-substitute H y = c with divisibility checks.
    y: List[Optional[int]] = [None] * n
    for row in range(m):
        residual = rhs[row]
        pivot = pivot_cols[row]
        for j in range(n):
            if j == pivot:
                continue
            coeff = matrix[row][j]
            if coeff and y[j] is not None:
                residual -= coeff * y[j]
            elif coeff:
                # Entries left of the pivot sit in earlier pivot columns,
                # whose y is already determined; anything else is zero.
                raise AssertionError("echelon invariant violated")
        if pivot is None:
            if residual != 0:
                return None
            continue
        pivot_value = matrix[row][pivot]
        if residual % pivot_value != 0:
            return None
        y[pivot] = residual // pivot_value

    free_cols = [j for j in range(n) if y[j] is None]
    y_fixed = [value if value is not None else 0 for value in y]
    x0 = tuple(
        sum(unimodular[i][j] * y_fixed[j] for j in range(n)) for i in range(n)
    )
    basis = tuple(
        tuple(unimodular[i][j] for i in range(n)) for j in free_cols
    )
    return ParametricSolution(tuple(names), x0, basis)


def system_from_pairs(pairs, context):
    """Build ``(equations, constants, variables)`` from linear subscript pairs.

    Each pair contributes ``h = src - sink = 0``; occurrence variables and
    symbols become system unknowns (symbols unconstrained — see module
    docstring).  Nonlinear pairs are skipped (callers account for the
    precision loss).
    """
    equations: List[Dict[str, int]] = []
    constants: List[int] = []
    names: List[str] = []
    seen = set()
    for pair in pairs:
        if not pair.is_linear:
            continue
        h = pair.difference()
        row = {name: coeff for name, coeff in h.terms}
        equations.append(row)
        constants.append(-h.const)
        for name in row:
            if name not in seen:
                seen.add(name)
                names.append(name)
    return equations, constants, names
