"""The λ-test (Li, Yew & Zhu [38], paper Section 7.3).

A multiple-subscript baseline for coupled groups: form linear combinations
of the subscript equations that *eliminate* occurrences of an index, then
apply Banerjee-style bounds to each combination.  Simultaneous real-valued
solutions exist iff every combination admits one, so any combination whose
bounds exclude zero proves independence.

This implementation generates, for every pair of equations in the group and
every shared occurrence variable, the combination that cancels it — the
core λ-plane set for two-dimensional coupled groups, which the paper notes
is where the λ-test is strongest (it is exact for two coupled dimensions
with coefficients in {-1, 0, 1}).  The original equations are also tested.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.classify.pairs import PairContext, SubscriptPair
from repro.ir.context import eval_interval
from repro.single.outcome import TestOutcome
from repro.symbolic.linexpr import LinearExpr

TEST_NAME = "lambda"


def lambda_test(
    pairs: Sequence[SubscriptPair], context: PairContext
) -> TestOutcome:
    """Apply the λ-test to a coupled group of linear subscript pairs."""
    equations = [pair.difference() for pair in pairs if pair.is_linear]
    if not equations:
        return TestOutcome.not_applicable(TEST_NAME)
    for combination in lambda_combinations(equations):
        if _excludes_zero(combination, context):
            return TestOutcome.proves_independence(TEST_NAME, exact=False)
    return TestOutcome(TEST_NAME, exact=False)


def lambda_combinations(equations: Sequence[LinearExpr]) -> Iterable[LinearExpr]:
    """The original equations plus pairwise cancelling combinations."""
    for equation in equations:
        yield equation
    for i in range(len(equations)):
        for j in range(i + 1, len(equations)):
            first, second = equations[i], equations[j]
            shared = first.variables() & second.variables()
            for name in sorted(shared):
                a = first.coeff(name)
                b = second.coeff(name)
                # b*first - a*second cancels `name`.
                yield first.scale(b) - second.scale(a)


def _excludes_zero(combination: LinearExpr, context: PairContext) -> bool:
    """Banerjee-style real bounds of a combination over the variable box."""
    interval = eval_interval(combination, context.variable_env())
    return not interval.contains(0)
