"""The Power test (Wolfe & Tseng [56], paper Section 7.3).

A high-precision, high-cost multiple-subscript baseline: the
multidimensional GCD test produces the parametric integer solution
``x = x0 + B t`` of the whole dependence system; loop-bound inequalities on
``x`` become rational inequalities on ``t`` that Fourier-Motzkin
elimination checks for feasibility.  Direction vectors are produced by
re-running the feasibility check with ordering constraints per common loop
(the same hierarchy the Banerjee MIV test uses).

The test is *exact* for unconstrained integer solutions (MD-GCD) and
conservative-but-tight for the bounded system (rational FME); the paper
positions it as what you fall back to when coupled MIV subscripts survive
the Delta test — and as the expensive alternative the Delta test avoids
(FME costs 22-28x more than conventional tests [47]).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.fme import FMSystem
from repro.baselines.mdgcd import ParametricSolution, solve_integer_system, system_from_pairs
from repro.classify.pairs import PairContext, SubscriptPair
from repro.dirvec.direction import Direction, IndexConstraint
from repro.instrument import TestRecorder, maybe_record
from repro.single.outcome import TestOutcome
from repro.symbolic.ranges import is_finite

TEST_NAME = "power"
MDGCD_TEST = "mdgcd"


def mdgcd_test(
    pairs: Sequence[SubscriptPair], context: PairContext
) -> TestOutcome:
    """The multidimensional GCD test alone (unconstrained solutions)."""
    equations, constants, names = system_from_pairs(pairs, context)
    if not equations:
        return TestOutcome.not_applicable(MDGCD_TEST)
    solution = solve_integer_system(equations, constants, names)
    if solution is None:
        return TestOutcome.proves_independence(MDGCD_TEST)
    return TestOutcome(MDGCD_TEST, exact=False)


def power_test(
    pairs: Sequence[SubscriptPair],
    context: PairContext,
    refine_directions: bool = True,
) -> TestOutcome:
    """The full Power test on a subscript group (or a whole reference pair)."""
    equations, constants, names = system_from_pairs(pairs, context)
    if not equations:
        return TestOutcome.not_applicable(TEST_NAME)
    solution = solve_integer_system(equations, constants, names)
    if solution is None:
        return TestOutcome.proves_independence(TEST_NAME)
    base_system = _bound_system(solution, context)
    operations = 0
    feasible, operations = _feasible(base_system, operations)
    if not feasible:
        return TestOutcome.proves_independence(TEST_NAME, exact=False)
    outcome = TestOutcome(TEST_NAME, exact=False)
    if refine_directions:
        refine = [
            base
            for base in context.common_indices
            if _occurs(base, names, context)
        ]
        if refine:
            vectors, operations = _direction_search(
                solution, context, refine, operations
            )
            if not vectors:
                return TestOutcome.proves_independence(TEST_NAME, exact=False)
            outcome.couplings.append((tuple(refine), frozenset(vectors)))
            for position, base in enumerate(refine):
                directions = frozenset(vec[position] for vec in vectors)
                outcome.constraints[base] = IndexConstraint(directions)
    outcome.notes["fme_operations"] = operations
    return outcome


# ---------------------------------------------------------------------------


def _occurs(base: str, names: Sequence[str], context: PairContext) -> bool:
    src_name, sink_name = context.occurrence_names(base)
    src_occurs = src_name is not None and src_name in names
    sink_occurs = sink_name is not None and sink_name in names
    return src_occurs or sink_occurs


def _bound_system(solution: ParametricSolution, context: PairContext) -> FMSystem:
    """Loop-bound inequalities on x, rewritten over the free parameters t."""
    system = FMSystem()
    for name in solution.variables:
        bound = context.range_of(name)
        constant, coeffs = solution.component(name)
        terms = {f"t{k}": c for k, c in enumerate(coeffs) if c}
        if is_finite(bound.hi):
            system.add(dict(terms), bound.hi - constant)
        if is_finite(bound.lo):
            system.add_ge(dict(terms), bound.lo - constant)
    return system


def _ordering_inequality(
    solution: ParametricSolution,
    context: PairContext,
    base: str,
    direction: Direction,
) -> Optional[List[Tuple[Dict[str, int], int, str]]]:
    """Inequalities over t encoding ``i <dir> i'`` for one common index.

    Returns a list of ``(coeffs, bound, kind)`` with kind in {"le", "ge",
    "eq"}; None when an occurrence is absent from the system (direction
    unconstrained).
    """
    src_name, sink_name = context.occurrence_names(base)
    if src_name is None or sink_name is None:
        return None
    if src_name not in solution.variables or sink_name not in solution.variables:
        return None
    c_src, k_src = solution.component(src_name)
    c_sink, k_sink = solution.component(sink_name)
    # delta = i - i' = (c_src - c_sink) + sum (k_src - k_sink) t
    coeffs = {
        f"t{k}": k_src[k] - k_sink[k]
        for k in range(solution.num_parameters)
        if k_src[k] - k_sink[k]
    }
    constant = c_src - c_sink
    if direction is Direction.LT:  # i <= i' - 1  ->  delta <= -1
        return [(coeffs, -1 - constant, "le")]
    if direction is Direction.GT:  # delta >= 1
        return [(coeffs, 1 - constant, "ge")]
    return [(coeffs, -constant, "eq")]


def _apply(system: FMSystem, entry: Tuple[Dict[str, int], int, str]) -> None:
    coeffs, bound, kind = entry
    if kind == "le":
        system.add(dict(coeffs), bound)
    elif kind == "ge":
        system.add_ge(dict(coeffs), bound)
    else:
        system.add_eq(dict(coeffs), bound)


def _feasible(system: FMSystem, operations: int) -> Tuple[bool, int]:
    feasible = system.is_rationally_feasible()
    return feasible, operations + system.operations


def _direction_search(
    solution: ParametricSolution,
    context: PairContext,
    refine: Sequence[str],
    operations: int,
):
    legal: List[Tuple[Direction, ...]] = []
    assignment: List[Direction] = []

    def descend(position: int) -> None:
        nonlocal operations
        system = _bound_system(solution, context)
        unconstrained = True
        for pos, direction in enumerate(assignment):
            entries = _ordering_inequality(solution, context, refine[pos], direction)
            if entries is None:
                continue
            unconstrained = False
            for entry in entries:
                _apply(system, entry)
        feasible, operations = _feasible(system, operations)
        if not feasible:
            return
        if position == len(refine):
            legal.append(tuple(assignment))
            return
        for direction in (Direction.LT, Direction.EQ, Direction.GT):
            assignment.append(direction)
            descend(position + 1)
            assignment.pop()

    descend(0)
    return frozenset(legal), operations
