"""Baseline drivers: alternative whole-pair testing strategies.

The paper's Section 8 recounts that the first version of PFC tested each
subscript *independently* with the Banerjee-GCD test and intersected the
per-dimension direction vectors — conservative for coupled subscripts
(Section 2.2's example shows it can report direction vectors that do not
exist).  These drivers reproduce that strategy (and Power-test / λ-test
variants) with the same signature as
:func:`repro.core.driver.test_dependence`, so the benchmark harness can
swap them in and measure the precision gap the paper reports (multiple-
subscript tests prove up to ~36% more coupled independences on eispack).
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.lam import lambda_test
from repro.baselines.power import power_test
from repro.classify.pairs import PairContext
from repro.classify.partition import partition_subscripts
from repro.core.driver import DependenceResult
from repro.dirvec.vectors import DependenceInfo
from repro.instrument import TestRecorder, maybe_record
from repro.ir.context import SymbolEnv
from repro.ir.loop import AccessSite
from repro.single.miv import banerjee_gcd_test
from repro.single.outcome import TestOutcome


def test_dependence_subscript_by_subscript(
    src_site: AccessSite,
    sink_site: AccessSite,
    symbols: Optional[SymbolEnv] = None,
    recorder: Optional[TestRecorder] = None,
) -> DependenceResult:
    """The "old PFC" baseline: Banerjee-GCD on every subscript independently.

    No subscript classification, no Delta test: coupled groups get the same
    per-dimension treatment as separable subscripts, and the per-dimension
    direction vectors are intersected — precise for separable subscripts,
    conservative for coupled ones.
    """
    context = PairContext(src_site, sink_site, symbols)
    info = DependenceInfo(context.common_indices)
    result = DependenceResult(context, independent=False, info=info, exact=False)
    if context.rank_mismatch:
        return result
    for pair in context.subscripts:
        outcome = maybe_record(recorder, banerjee_gcd_test(pair, context))
        result.outcomes.append(outcome)
        if not outcome.applicable:
            continue
        if outcome.independent:
            result.independent = True
            return result
        for index, constraint in outcome.constraints.items():
            if index in info.indices:
                info.merge_index(index, constraint)
        for coupling in outcome.couplings:
            info.add_coupling(*coupling)
    if info.refuted:
        result.independent = True
    return result


def test_dependence_power(
    src_site: AccessSite,
    sink_site: AccessSite,
    symbols: Optional[SymbolEnv] = None,
    recorder: Optional[TestRecorder] = None,
) -> DependenceResult:
    """Whole-pair Power test: one dense system for all subscripts."""
    context = PairContext(src_site, sink_site, symbols)
    info = DependenceInfo(context.common_indices)
    result = DependenceResult(context, independent=False, info=info, exact=False)
    if context.rank_mismatch:
        return result
    outcome = maybe_record(recorder, power_test(context.subscripts, context))
    result.outcomes.append(outcome)
    if outcome.applicable and outcome.independent:
        result.independent = True
        return result
    for index, constraint in outcome.constraints.items():
        if index in info.indices:
            info.merge_index(index, constraint)
    for coupling in outcome.couplings:
        info.add_coupling(*coupling)
    if info.refuted:
        result.independent = True
    return result


def test_dependence_lambda(
    src_site: AccessSite,
    sink_site: AccessSite,
    symbols: Optional[SymbolEnv] = None,
    recorder: Optional[TestRecorder] = None,
) -> DependenceResult:
    """λ-test driver: λ-test per coupled group, Banerjee-GCD elsewhere.

    Matches how the paper positions the λ-test: a multiple-subscript test
    for coupled groups, with conventional single-subscript testing for the
    separable positions; direction vectors still come from the Banerjee
    hierarchy.
    """
    context = PairContext(src_site, sink_site, symbols)
    info = DependenceInfo(context.common_indices)
    result = DependenceResult(context, independent=False, info=info, exact=False)
    if context.rank_mismatch:
        return result
    partitions = partition_subscripts(context.subscripts, context)
    for partition in partitions:
        if partition.is_separable:
            outcome = maybe_record(
                recorder, banerjee_gcd_test(partition.pairs[0], context)
            )
        else:
            outcome = maybe_record(recorder, lambda_test(partition.pairs, context))
            if outcome.applicable and not outcome.independent:
                # Direction vectors per subscript, as the λ-test paper does.
                for pair in partition.pairs:
                    sub_outcome = maybe_record(
                        recorder, banerjee_gcd_test(pair, context)
                    )
                    result.outcomes.append(sub_outcome)
                    if sub_outcome.applicable and sub_outcome.independent:
                        result.independent = True
                        return result
                    for index, constraint in sub_outcome.constraints.items():
                        if index in info.indices:
                            info.merge_index(index, constraint)
                    for coupling in sub_outcome.couplings:
                        info.add_coupling(*coupling)
        result.outcomes.append(outcome)
        if outcome.applicable and outcome.independent:
            result.independent = True
            return result
        for index, constraint in outcome.constraints.items():
            if index in info.indices:
                info.merge_index(index, constraint)
        for coupling in outcome.couplings:
            info.add_coupling(*coupling)
    if info.refuted:
        result.independent = True
    return result


# Keep pytest from collecting the baseline drivers in test modules.
test_dependence_subscript_by_subscript.__test__ = False  # type: ignore[attr-defined]
test_dependence_power.__test__ = False  # type: ignore[attr-defined]
test_dependence_lambda.__test__ = False  # type: ignore[attr-defined]
