"""Fourier-Motzkin elimination over rational linear inequalities.

The Power test (Wolfe & Tseng [56]) applies loop-bound inequalities to the
dense system produced by the multidimensional GCD test using
Fourier-Motzkin elimination; the paper's related work also cites Kuhn [35]
and Triolet [48] using FME over convex regions, noting it runs 22-28x
slower than conventional tests [47].  This module is that engine: an exact
rational feasibility check with variable elimination, instrumented with an
operation counter so the timing benchmarks can reproduce the cost claim.

Rational feasibility is *conservative* for dependence testing: if no
rational point satisfies the system there is certainly no integer point
(independence); if a rational point exists, a dependence is assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

Rat = Fraction


@dataclass(frozen=True)
class Inequality:
    """``sum(coeffs[v] * v) <= bound`` with rational coefficients."""

    coeffs: Tuple[Tuple[str, Fraction], ...]
    bound: Fraction

    @staticmethod
    def of(coeffs: Dict[str, object], bound: object) -> "Inequality":
        """Build from a name->number mapping, dropping zero coefficients."""
        cleaned = tuple(
            sorted(
                (name, Fraction(value))
                for name, value in coeffs.items()
                if Fraction(value) != 0
            )
        )
        return Inequality(cleaned, Fraction(bound))

    def coeff(self, name: str) -> Fraction:
        for var, value in self.coeffs:
            if var == name:
                return value
        return Fraction(0)

    def variables(self) -> Set[str]:
        return {name for name, _ in self.coeffs}

    def is_constant(self) -> bool:
        return not self.coeffs

    def is_trivially_true(self) -> bool:
        return self.is_constant() and self.bound >= 0

    def is_trivially_false(self) -> bool:
        return self.is_constant() and self.bound < 0

    def __str__(self) -> str:
        if not self.coeffs:
            return f"0 <= {self.bound}"
        terms = " + ".join(f"{value}*{name}" for name, value in self.coeffs)
        return f"{terms} <= {self.bound}"


@dataclass
class FMSystem:
    """A conjunction of rational linear inequalities.

    ``operations`` counts coefficient arithmetic steps performed during
    elimination — the cost metric reported by the timing benches.
    """

    inequalities: List[Inequality] = field(default_factory=list)
    operations: int = 0

    # -- construction ------------------------------------------------------

    def add(self, coeffs: Dict[str, object], bound: object) -> None:
        """Add ``sum(coeffs) <= bound``."""
        self.inequalities.append(Inequality.of(coeffs, bound))

    def add_le(self, coeffs: Dict[str, object], bound: object) -> None:
        """Alias of :meth:`add` for readability."""
        self.add(coeffs, bound)

    def add_ge(self, coeffs: Dict[str, object], bound: object) -> None:
        """Add ``sum(coeffs) >= bound``."""
        negated = {name: -Fraction(value) for name, value in coeffs.items()}
        self.add(negated, -Fraction(bound))

    def add_eq(self, coeffs: Dict[str, object], bound: object) -> None:
        """Add ``sum(coeffs) == bound`` as two inequalities."""
        self.add(coeffs, bound)
        self.add_ge(coeffs, bound)

    def variables(self) -> Set[str]:
        names: Set[str] = set()
        for inequality in self.inequalities:
            names |= inequality.variables()
        return names

    def copy(self) -> "FMSystem":
        clone = FMSystem(list(self.inequalities))
        return clone

    # -- elimination ---------------------------------------------------------

    def eliminate(self, name: str) -> "FMSystem":
        """Project out one variable (the Fourier-Motzkin step).

        Every pair of a lower-bounding and an upper-bounding inequality on
        ``name`` combines into one inequality without it; inequalities not
        mentioning ``name`` carry over.
        """
        uppers: List[Inequality] = []  # positive coefficient on name
        lowers: List[Inequality] = []  # negative coefficient on name
        others: List[Inequality] = []
        for inequality in self.inequalities:
            coeff = inequality.coeff(name)
            if coeff > 0:
                uppers.append(inequality)
            elif coeff < 0:
                lowers.append(inequality)
            else:
                others.append(inequality)
        result = FMSystem(others, self.operations)
        for upper in uppers:
            cu = upper.coeff(name)
            for lower in lowers:
                cl = -lower.coeff(name)
                combined: Dict[str, Fraction] = {}
                for var, value in upper.coeffs:
                    if var != name:
                        combined[var] = combined.get(var, Fraction(0)) + value / cu
                        result.operations += 1
                for var, value in lower.coeffs:
                    if var != name:
                        combined[var] = combined.get(var, Fraction(0)) + value / cl
                        result.operations += 1
                bound = upper.bound / cu + lower.bound / cl
                result.operations += 1
                result.inequalities.append(Inequality.of(combined, bound))
        return result

    def is_rationally_feasible(self) -> bool:
        """Exact rational feasibility by eliminating every variable."""
        system = self
        for name in sorted(self.variables()):
            if any(i.is_trivially_false() for i in system.inequalities):
                return False
            system = system.eliminate(name)
        self.operations = system.operations
        return not any(i.is_trivially_false() for i in system.inequalities)

    def __str__(self) -> str:
        return "\n".join(str(i) for i in self.inequalities) or "<empty system>"


def box_system(bounds: Dict[str, Tuple[object, object]]) -> FMSystem:
    """A system constraining each variable to ``[lo, hi]`` (None = open)."""
    system = FMSystem()
    for name, (lo, hi) in bounds.items():
        if hi is not None:
            system.add({name: 1}, hi)
        if lo is not None:
            system.add_ge({name: 1}, lo)
    return system
