"""Dependence graph construction over loop nests.

Runs the partition-based driver on every candidate reference pair of a
statement list and assembles the results into a :class:`DependenceGraph`
with typed edges (flow / anti / output / input), direction and distance
vectors, and carried levels — the structure PFC's vectorization and
ParaScope's transformations consume.

Direction-vector bookkeeping follows the paper: for an ordered pair tested
as (source, sink), vectors whose leading non-``=`` direction is ``>``
denote the *reversed* dependence and are attributed to the reverse edge
with the vector element-wise reversed (citing Burke & Cytron); the all-``=``
vector is a loop-independent dependence and is only real when the source
executes no later than the sink within an iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from time import perf_counter
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.driver import DependenceResult, test_dependence
from repro.dirvec.direction import Direction
from repro.dirvec.vectors import (
    DirectionVector,
    carrier_level,
    format_vector,
    is_plausible,
    reverse_vector,
)
from repro.instrument import TestRecorder
from repro.ir.context import SymbolEnv
from repro.ir.loop import AccessSite, Loop, Node, collect_access_sites


class DependenceType(Enum):
    """Classic dependence classification (Section 2 of the paper)."""

    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"
    INPUT = "input"

    def __str__(self) -> str:
        return self.value


def dependence_type(source_is_write: bool, sink_is_write: bool) -> DependenceType:
    """Dependence type from the access modes of source and sink."""
    if source_is_write and not sink_is_write:
        return DependenceType.FLOW
    if not source_is_write and sink_is_write:
        return DependenceType.ANTI
    if source_is_write and sink_is_write:
        return DependenceType.OUTPUT
    return DependenceType.INPUT


@dataclass
class DependenceEdge:
    """One dependence between two access sites.

    ``vectors`` are the plausible direction vectors over the pair's common
    loops (leading non-``=`` always ``<``); ``result`` is the driver result
    the edge came from (its context maps vector positions to loops).
    """

    source: AccessSite
    sink: AccessSite
    dep_type: DependenceType
    vectors: FrozenSet[DirectionVector]
    result: DependenceResult
    reversed_from_test: bool = False

    @property
    def common_loops(self) -> Tuple[Loop, ...]:
        """Loops the direction-vector positions refer to, outermost first."""
        return self.result.context.common

    def carried_levels(self) -> FrozenSet[int]:
        """Levels carrying some vector of this edge (0 = loop independent)."""
        return frozenset(carrier_level(v) for v in self.vectors)

    def carrier_loops(self) -> FrozenSet[int]:
        """Stable keys of the loops that carry this dependence.

        Carrying loops are found by nesting position in the pair's
        common-loop tuple (the vector position *is* the nesting level) and
        keyed with :func:`loop_key`.  Keys are ordinary data rather than
        ``id()`` values, so edges computed in a worker process still match
        the parent's loop objects after crossing the pickle boundary.
        """
        loops = self.common_loops
        carried = set()
        for vector in self.vectors:
            level = carrier_level(vector)
            if level > 0:
                carried.add(loop_key(loops[level - 1]))
        return frozenset(carried)

    @property
    def loop_independent(self) -> bool:
        """True when the all-``=`` vector is among this edge's vectors."""
        return any(carrier_level(v) == 0 for v in self.vectors)

    @property
    def assumed(self) -> bool:
        """True when this edge was assumed after a test failure.

        Assumed edges are conservative: the pair's test crashed, was
        injected with a fault, or exhausted its step budget, so the engine
        degraded to "assume dependence with all directions" rather than
        risk reporting a spurious independence.  ``result.failure`` holds
        the reason.
        """
        return self.result.assumed

    def distance_vector(self):
        """Exact distances where known (source-order distances)."""
        distances = self.result.info.distance_vector()
        if not self.reversed_from_test:
            return distances
        return tuple(
            -d if isinstance(d, int) else (None if d is None else -d)
            for d in distances
        )

    def __str__(self) -> str:
        inner = ", ".join(sorted(format_vector(v) for v in self.vectors))
        text = (
            f"{self.dep_type} {self.source.ref} (S{self.source.stmt.stmt_id})"
            f" -> {self.sink.ref} (S{self.sink.stmt.stmt_id}) {{{inner}}}"
        )
        if self.assumed:
            text += " [assumed]"
        return text


def loop_key(loop: Loop) -> int:
    """The stable key used by :meth:`DependenceEdge.carrier_loops`.

    The key is the loop's construction serial (:attr:`Loop.uid`), which a
    pickle round-trip preserves — unlike ``id()``, which changes whenever a
    result crosses a process boundary.
    """
    return loop.uid


@dataclass
class DependenceGraph:
    """All dependences of a statement list.

    ``independent_pairs`` counts reference pairs proven independent —
    the quantity the paper's Table 3 tracks per test via the recorder.
    """

    sites: List[AccessSite]
    edges: List[DependenceEdge]
    independent_pairs: int
    tested_pairs: int
    recorder: Optional[TestRecorder] = None

    def edges_for_array(self, array: str) -> List[DependenceEdge]:
        """Edges whose endpoints reference ``array``."""
        return [e for e in self.edges if e.source.ref.array == array]

    def edges_of_type(self, dep_type: DependenceType) -> List[DependenceEdge]:
        """Edges of one dependence class."""
        return [e for e in self.edges if e.dep_type is dep_type]

    def edges_carried_by(self, loop: Loop) -> List[DependenceEdge]:
        """Edges carried by a particular loop."""
        key = loop_key(loop)
        return [e for e in self.edges if key in e.carrier_loops()]

    def to_networkx(self):
        """Export as a ``networkx.MultiDiGraph`` (statement-level nodes)."""
        import networkx as nx

        graph = nx.MultiDiGraph()
        for edge in self.edges:
            graph.add_edge(
                f"S{edge.source.stmt.stmt_id}",
                f"S{edge.sink.stmt.stmt_id}",
                dep_type=str(edge.dep_type),
                array=edge.source.ref.array,
                vectors=sorted(format_vector(v) for v in edge.vectors),
            )
        return graph

    def __str__(self) -> str:
        lines = [str(edge) for edge in self.edges]
        lines.append(
            f"({self.tested_pairs} pairs tested, "
            f"{self.independent_pairs} independent)"
        )
        return "\n".join(lines)


ALL_EQ_CACHE: Dict[int, DirectionVector] = {}


def _all_eq(depth: int) -> DirectionVector:
    if depth not in ALL_EQ_CACHE:
        ALL_EQ_CACHE[depth] = tuple([Direction.EQ] * depth)
    return ALL_EQ_CACHE[depth]


def iter_candidate_pairs(
    sites: Sequence[AccessSite], include_input: bool = False
) -> Iterable[Tuple[AccessSite, AccessSite]]:
    """All reference pairs dependence testing must consider.

    Pairs reference the same array and include at least one write (unless
    input dependences are requested); a site pairs with itself (carried
    self-dependences).  This is the "pairs of array references tested"
    population of the paper's Table 1.
    """
    by_array: Dict[str, List[AccessSite]] = {}
    for site in sites:
        by_array.setdefault(site.ref.array, []).append(site)
    for array_sites in by_array.values():
        for i, first in enumerate(array_sites):
            for second in array_sites[i:]:
                if not (first.is_write or second.is_write) and not include_input:
                    continue
                yield first, second


def build_dependence_graph(
    nodes: Sequence[Node],
    symbols: Optional[SymbolEnv] = None,
    recorder: Optional[TestRecorder] = None,
    include_input: bool = False,
    tester=test_dependence,
    profile=None,
) -> DependenceGraph:
    """Test all candidate reference pairs of a statement list.

    ``tester`` may be swapped for a baseline driver (the benchmark harness
    compares the paper's suite against subscript-by-subscript Banerjee-GCD
    and the Power test this way); it must match the signature of
    :func:`repro.core.driver.test_dependence`.  ``profile`` is an optional
    :class:`~repro.engine.profile.PhaseProfile` charged with the time
    spent expanding results into typed edges (the ``edge-build`` phase;
    the tester accounts for its own phases).
    """
    sites = collect_access_sites(nodes)
    edges: List[DependenceEdge] = []
    tested = 0
    independent = 0
    if getattr(tester, "wants_batch", False):
        # A batching tester (a CachedDriver over a batch-capable backend):
        # prepare every candidate pair, resolve them as one batch so the
        # backend can group by test class, then expand edges in order.
        pairs = list(iter_candidate_pairs(sites, include_input))
        if profile is None:
            prepared = [
                tester.prepare(first, second, symbols) for first, second in pairs
            ]
        else:
            start = perf_counter()
            prepared = [
                tester.prepare(first, second, symbols) for first, second in pairs
            ]
            profile.add_phase("prepare", perf_counter() - start, calls=len(pairs))
        results = tester.resolve_batch(prepared, recorder)
        for (first, second), result in zip(pairs, results):
            tested += 1
            if result.independent:
                independent += 1
                continue
            if profile is None:
                edges.extend(edges_from_result(first, second, result))
            else:
                start = perf_counter()
                edges.extend(edges_from_result(first, second, result))
                profile.add_phase("edge-build", perf_counter() - start)
        return DependenceGraph(sites, edges, independent, tested, recorder)
    for first, second in iter_candidate_pairs(sites, include_input):
        tested += 1
        result = tester(first, second, symbols=symbols, recorder=recorder)
        if result.independent:
            independent += 1
            continue
        if profile is None:
            edges.extend(edges_from_result(first, second, result))
        else:
            start = perf_counter()
            edges.extend(edges_from_result(first, second, result))
            profile.add_phase("edge-build", perf_counter() - start)
    return DependenceGraph(sites, edges, independent, tested, recorder)


def edges_from_result(
    first: AccessSite, second: AccessSite, result: DependenceResult
) -> Iterable[DependenceEdge]:
    """Typed, oriented edges for one tested pair's driver result.

    Splits the result's vectors into the forward and (reversed) backward
    edge per the module docstring; the engine's cached/parallel builders
    call this with rehydrated results to assemble identical graphs.
    """
    vectors = result.direction_vectors
    depth = len(result.context.common_indices)
    forward: Set[DirectionVector] = set()
    backward: Set[DirectionVector] = set()
    for vector in vectors:
        if is_plausible(vector):
            forward.add(vector)
        else:
            backward.add(reverse_vector(vector))
    if first is second:
        # A site paired with itself: the all-= vector is the access itself.
        forward.discard(_all_eq(depth))
    edges = []
    if forward:
        edges.append(
            DependenceEdge(
                first,
                second,
                dependence_type(first.is_write, second.is_write),
                frozenset(forward),
                result,
            )
        )
    if backward and first is not second:
        backward.discard(_all_eq(depth))  # second executes after first
        if backward:
            edges.append(
                DependenceEdge(
                    second,
                    first,
                    dependence_type(second.is_write, first.is_write),
                    frozenset(backward),
                    result,
                    reversed_from_test=True,
                )
            )
    return edges
