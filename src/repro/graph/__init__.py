"""Dependence graph construction over loop nests."""

from repro.graph.depgraph import (
    DependenceEdge,
    DependenceGraph,
    DependenceType,
    build_dependence_graph,
    edges_from_result,
    iter_candidate_pairs,
    dependence_type,
    loop_key,
)

__all__ = [
    "DependenceEdge",
    "DependenceGraph",
    "DependenceType",
    "build_dependence_graph",
    "edges_from_result",
    "iter_candidate_pairs",
    "dependence_type",
    "loop_key",
]
