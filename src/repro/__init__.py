"""repro — a reproduction of "Practical Dependence Testing" (PLDI 1991).

Goff, Kennedy & Tseng's partition-based suite of data dependence tests for
array references in Fortran loop nests: subscript classification (ZIV / SIV
/ MIV), exact special-case SIV tests, MIV tests (GCD, Banerjee with a
direction-vector hierarchy), and the Delta test for coupled subscript
groups — plus the baselines the paper compares against (subscript-by-
subscript Banerjee-GCD, multidimensional GCD, the Power test, the λ-test)
and the empirical study harness that regenerates the paper's tables.

Quick start::

    from repro import analyze_fragment

    report = analyze_fragment('''
        do i = 1, n
           a(i+1) = a(i) + b(i)
        enddo
    ''')
    for dep in report.edges:
        print(dep)
"""

__version__ = "1.0.0"

from repro.core.driver import DependenceResult, test_dependence
from repro.ir.context import SymbolEnv
from repro.instrument import TestRecorder


def analyze_fragment(source: str, symbols=None):
    """Parse a Fortran fragment and build its dependence graph.

    Convenience one-call entry point; see :mod:`repro.graph` for the full
    API.
    """
    from repro.fortran.parser import parse_fragment
    from repro.graph.depgraph import build_dependence_graph

    nodes = parse_fragment(source)
    return build_dependence_graph(nodes, symbols=symbols)


__all__ = [
    "DependenceResult",
    "test_dependence",
    "SymbolEnv",
    "TestRecorder",
    "analyze_fragment",
    "__version__",
]
