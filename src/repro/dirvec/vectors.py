"""Direction and distance vectors over a common loop nest.

A :class:`DependenceInfo` summarizes everything the tests proved about a
candidate dependence between two references: per-common-index
:class:`~repro.dirvec.direction.IndexConstraint` entries.  It expands into
the minimal complete set of direction vectors (the paper's output format),
computes the carried level, and supports the merge used by the driver.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.dirvec.direction import (
    ALL_DIRECTIONS,
    Direction,
    Distance,
    IndexConstraint,
    UNCONSTRAINED,
    format_directions,
)

DirectionVector = Tuple[Direction, ...]
DistanceVector = Tuple[Optional[Distance], ...]

#: A coupling: an explicit set of joint direction assignments over a subset
#: of indices (produced by the MIV direction hierarchy, where the legal
#: vectors need not form a cartesian product).
Coupling = Tuple[Tuple[str, ...], FrozenSet[Tuple[Direction, ...]]]


@dataclass
class DependenceInfo:
    """Per-index dependence knowledge over a common loop nest.

    ``indices`` lists the common loop indices outermost-first; every index
    has a constraint (defaulting to unconstrained).  The dependence as a
    whole is *refuted* when any index's constraint is refuted — separable
    subscript systems solve independently, so one independent position
    kills the whole dependence (Section 2.2).

    ``couplings`` carry non-rectangular joint constraints from MIV
    subscripts: each entry restricts the directions of several indices
    *simultaneously* to an explicit vector set, as PFC's Banerjee hierarchy
    produces.  :meth:`direction_vectors` intersects the cartesian product of
    the per-index sets with every coupling.
    """

    indices: Tuple[str, ...]
    constraints: Dict[str, IndexConstraint] = field(default_factory=dict)
    couplings: List[Coupling] = field(default_factory=list)

    def constraint(self, index: str) -> IndexConstraint:
        """The constraint on ``index`` (unconstrained when never tested)."""
        return self.constraints.get(index, UNCONSTRAINED)

    @property
    def refuted(self) -> bool:
        """True when some index has no surviving direction."""
        return any(self.constraint(i).refuted for i in self.indices)

    def merge_index(self, index: str, constraint: IndexConstraint) -> None:
        """Intersect new knowledge about one index into the summary."""
        self.constraints[index] = self.constraint(index).merge(constraint)

    def merge(self, other: "DependenceInfo") -> None:
        """Intersect all of another summary's constraints into this one."""
        for index, constraint in other.constraints.items():
            if index in self.indices:
                self.merge_index(index, constraint)
        for coupling in other.couplings:
            self.add_coupling(*coupling)

    def add_coupling(
        self,
        coupled_indices: Tuple[str, ...],
        vectors: FrozenSet[Tuple[Direction, ...]],
    ) -> None:
        """Record a joint direction constraint over several indices.

        Also folds the per-index projections into the rectangular
        constraints so simple queries stay precise, and refutes the
        dependence when the vector set is empty.
        """
        kept = tuple(i for i in coupled_indices if i in self.indices)
        if len(kept) != len(coupled_indices):
            positions = [
                pos for pos, i in enumerate(coupled_indices) if i in self.indices
            ]
            vectors = frozenset(
                tuple(vec[pos] for pos in positions) for vec in vectors
            )
            coupled_indices = kept
        if not coupled_indices:
            return
        self.couplings.append((coupled_indices, vectors))
        for position, index in enumerate(coupled_indices):
            projected = frozenset(vec[position] for vec in vectors)
            self.merge_index(index, IndexConstraint(projected))

    # ------------------------------------------------------------------

    def direction_vectors(self) -> FrozenSet[DirectionVector]:
        """The complete set of possible direction vectors.

        The cartesian product of the per-index direction sets, intersected
        with every recorded coupling.  Empty when refuted.  Callers that
        care about legality (the all-``=`` vector is only a real dependence
        when the source lexically precedes the sink) filter afterwards —
        see :mod:`repro.graph`.
        """
        if self.refuted:
            return frozenset()
        choices: List[Iterable[Direction]] = []
        for index in self.indices:
            directions = self.constraint(index).directions
            choices.append(sorted(directions, key=lambda d: d.value))
        candidates = itertools.product(*choices)
        if not self.couplings:
            return frozenset(candidates)
        position_of = {index: pos for pos, index in enumerate(self.indices)}
        survivors = []
        for vector in candidates:
            if all(
                tuple(vector[position_of[i]] for i in coupled) in allowed
                for coupled, allowed in self.couplings
            ):
                survivors.append(vector)
        return frozenset(survivors)

    def distance_vector(self) -> DistanceVector:
        """Per-index exact distances (None where unknown)."""
        return tuple(self.constraint(i).distance for i in self.indices)

    def has_full_distance_vector(self) -> bool:
        """True when every index has an exact distance."""
        return all(self.constraint(i).distance is not None for i in self.indices)

    def carried_levels(self) -> FrozenSet[int]:
        """Levels (1-based) at which some direction vector is carried.

        A dependence is carried by the outermost loop whose direction is not
        ``=``; vectors that are all ``=`` are loop-independent (level 0 by
        convention here).
        """
        levels = set()
        for vector in self.direction_vectors():
            levels.add(carrier_level(vector))
        return frozenset(levels)

    def __str__(self) -> str:
        inner = ", ".join(
            f"{index}: {self.constraint(index)}" for index in self.indices
        )
        return f"DependenceInfo({inner})"


def carrier_level(vector: DirectionVector) -> int:
    """The 1-based carrying level of a direction vector (0 = loop independent)."""
    for level, direction in enumerate(vector, start=1):
        if direction is not Direction.EQ:
            return level
    return 0


def is_plausible(vector: DirectionVector) -> bool:
    """True when the leading non-``=`` direction is ``<``.

    Vectors whose leading non-``=`` is ``>`` denote the *reversed*
    dependence (sink to source); per the paper (citing Burke & Cytron) they
    are reported as the reverse edge with the vector element-wise reversed.
    The all-``=`` vector is plausible (loop-independent).
    """
    for direction in vector:
        if direction is Direction.LT:
            return True
        if direction is Direction.GT:
            return False
    return True


def reverse_vector(vector: DirectionVector) -> DirectionVector:
    """Element-wise reversal (``<`` ↔ ``>``) for the reversed dependence."""
    return tuple(d.reverse() for d in vector)


def format_vector(vector: DirectionVector) -> str:
    """Render ``(<, =, >)`` style."""
    return "(" + ", ".join(str(d) for d in vector) + ")"


def format_vector_set(vectors: Iterable[DirectionVector]) -> str:
    """Render a set of vectors sorted lexicographically."""
    rendered = sorted(format_vector(v) for v in vectors)
    return "{" + ", ".join(rendered) + "}"


def summarize_directions(
    vectors: Iterable[DirectionVector], depth: int
) -> Tuple[FrozenSet[Direction], ...]:
    """Per-position union of directions over a vector set (for compact display)."""
    union: List[set] = [set() for _ in range(depth)]
    for vector in vectors:
        for position, direction in enumerate(vector):
            union[position].add(direction)
    return tuple(frozenset(s) for s in union)
