"""Dependence directions and distances (Section 2.1 of the paper).

A *direction* relates the source and sink iterations of one common loop:
``<`` means the source iteration precedes the sink (``i < i'``), ``=``
equal, ``>`` follows.  ``*`` is the unconstrained top of the lattice.  A
*distance* is the exact value ``d = i' - i`` when known; integer distances
refine to a single direction, symbolic distances (difference of symbolic
additive constants) keep direction ``*``.

The module also defines the merge (intersection) operations used when
combining per-subscript results: directions intersect as sets, distances
must agree exactly or the dependence is refuted.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Optional, Union

from repro.symbolic.linexpr import LinearExpr

Distance = Union[int, LinearExpr]


class Direction(Enum):
    """One component of a direction vector."""

    LT = "<"
    EQ = "="
    GT = ">"

    def __str__(self) -> str:
        return self.value

    def reverse(self) -> "Direction":
        """The direction of the reversed dependence (``<`` ↔ ``>``)."""
        if self is Direction.LT:
            return Direction.GT
        if self is Direction.GT:
            return Direction.LT
        return Direction.EQ


#: Convenient direction sets; a set of basic directions plays the role of
#: the classic {<, =, >, <=, >=, !=, *} lattice (e.g. {LT, EQ} is "<=").
ALL_DIRECTIONS: FrozenSet[Direction] = frozenset(
    (Direction.LT, Direction.EQ, Direction.GT)
)
LT_ONLY: FrozenSet[Direction] = frozenset((Direction.LT,))
EQ_ONLY: FrozenSet[Direction] = frozenset((Direction.EQ,))
GT_ONLY: FrozenSet[Direction] = frozenset((Direction.GT,))


def direction_of_distance(distance: Distance) -> FrozenSet[Direction]:
    """Directions consistent with an exact distance ``d = i' - i``."""
    if isinstance(distance, LinearExpr):
        if distance.is_constant():
            distance = distance.constant_value()
        else:
            return ALL_DIRECTIONS
    if distance > 0:
        return LT_ONLY
    if distance < 0:
        return GT_ONLY
    return EQ_ONLY


def format_directions(directions: FrozenSet[Direction]) -> str:
    """Render a direction set in the classic notation.

    ``{<}`` → ``<``; ``{<, =}`` → ``<=``; ``{<, >}`` → ``!=``;
    ``{<, =, >}`` → ``*``; the empty set → ``0`` (refuted).
    """
    if not directions:
        return "0"
    if directions == ALL_DIRECTIONS:
        return "*"
    if directions == frozenset((Direction.LT, Direction.EQ)):
        return "<="
    if directions == frozenset((Direction.GT, Direction.EQ)):
        return ">="
    if directions == frozenset((Direction.LT, Direction.GT)):
        return "!="
    return "".join(sorted(d.value for d in directions))


@dataclass(frozen=True, slots=True)
class IndexConstraint:
    """What is known about one common-loop index of a dependence.

    ``directions`` is the set of still-possible directions (empty set means
    the dependence is refuted on this index); ``distance`` is the exact
    dependence distance when some test established one.  Constraints merge
    by intersection: this is exactly the paper's "merge all the direction
    vectors computed in the previous steps" for separable subscripts.
    """

    directions: FrozenSet[Direction] = ALL_DIRECTIONS
    distance: Optional[Distance] = None

    @property
    def refuted(self) -> bool:
        """True when no direction survives — independence on this index."""
        return not self.directions

    def merge(self, other: "IndexConstraint") -> "IndexConstraint":
        """Intersect two constraints on the same index.

        Conflicting exact distances refute the dependence (the constraint
        intersection rule of Section 5.2: "if all distances are not equal,
        then no dependences exist").
        """
        directions = self.directions & other.directions
        distance = self.distance
        if other.distance is not None:
            if distance is None:
                distance = other.distance
            elif not _distances_equal(distance, other.distance):
                return IndexConstraint(frozenset(), None)
        if distance is not None:
            directions = directions & direction_of_distance(distance)
        return IndexConstraint(directions, distance)

    def __str__(self) -> str:
        text = format_directions(self.directions)
        if self.distance is not None:
            text += f" (d={self.distance})"
        return text


UNCONSTRAINED = IndexConstraint()
REFUTED = IndexConstraint(frozenset(), None)


def constraint_from_distance(distance: Distance) -> IndexConstraint:
    """An :class:`IndexConstraint` carrying an exact distance."""
    if isinstance(distance, LinearExpr) and distance.is_constant():
        distance = distance.constant_value()
    return IndexConstraint(direction_of_distance(distance), distance)


def _distances_equal(a: Distance, b: Distance) -> bool:
    a_expr = a if isinstance(a, LinearExpr) else LinearExpr.constant(a)
    b_expr = b if isinstance(b, LinearExpr) else LinearExpr.constant(b)
    return a_expr == b_expr
