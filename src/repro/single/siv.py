"""The SIV tests (Section 4.2): strong, weak-zero, weak-crossing, and exact.

All four tests analyze a single-index subscript pair

    a1*i + c1   (source)   vs.   a2*i' + c2   (sink)

where ``c1``/``c2`` may carry loop-invariant symbolic terms.  The special
cases are exact and cheaper than the general Single-Index exact test; the
paper's insight is that they cover nearly every SIV subscript in practice.

* **strong** (``a1 == a2 == a``): dependence iff the distance
  ``d = (c1 - c2)/a`` is an integer with ``|d| <= U - L``.
* **weak-zero** (``a2 == 0``): the dependence pins one side to iteration
  ``i = (c2 - c1)/a1`` — dependence iff that is an integer within bounds.
  First/last-iteration hits are recorded for loop peeling.
* **weak-crossing** (``a2 == -a1``): endpoints satisfy ``i + i' = s`` with
  ``s = (c2 - c1)/a1``; dependence iff ``s`` is an integer with
  ``2L <= s <= 2U`` (equivalently the crossing point ``s/2`` lies in bounds
  and is an integer or half-integer).  Recorded for loop splitting.
* **exact** (general): solve the two-variable linear Diophantine equation
  ``a1*i - a2*i' = c2 - c1`` within the index ranges; direction sets are
  derived exactly by adding the constraint ``i < i'`` / ``i = i'`` /
  ``i > i'`` to the solution family.

Symbolic additive constants are handled as in Section 4.5: differences of
invariant parts cancel syntactically; what remains is decided exactly when
it is constant, and by sound interval reasoning over known symbol ranges
otherwise.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.classify.pairs import PairContext, SubscriptPair
from repro.classify.subscript import SIVShape, SubscriptKind, classify, siv_shape
from repro.dirvec.direction import (
    ALL_DIRECTIONS,
    Direction,
    IndexConstraint,
    constraint_from_distance,
)
from repro.ir.context import eval_interval
from repro.single.outcome import TestOutcome
from repro.symbolic.diophantine import has_solution_with_conditions, solve_linear_2var
from repro.symbolic.linexpr import LinearExpr
from repro.symbolic.ranges import Interval, NEG_INF, POS_INF, is_finite


def siv_test(pair: SubscriptPair, context: PairContext) -> TestOutcome:
    """Dispatch an SIV subscript pair to its special-case test.

    Falls through to the exact general SIV test for shapes no special case
    covers; returns "not applicable" for non-SIV pairs.
    """
    kind = classify(pair, context)
    if not kind.is_siv:
        return TestOutcome.not_applicable("siv")
    base = next(iter(context.subscript_bases(pair)))
    shape = siv_shape(pair, context, base)
    if kind is SubscriptKind.SIV_STRONG:
        return strong_siv_test(shape, context)
    if kind is SubscriptKind.SIV_WEAK_ZERO:
        return weak_zero_siv_test(shape, context)
    if kind is SubscriptKind.SIV_WEAK_CROSSING:
        outcome = weak_crossing_siv_test(shape, context)
        if outcome.applicable:
            return outcome
    return exact_siv_test(shape, context)


# ---------------------------------------------------------------------------
# Strong SIV
# ---------------------------------------------------------------------------


def strong_siv_test(shape: SIVShape, context: PairContext) -> TestOutcome:
    """The strong SIV test: equal nonzero coefficients."""
    name = "strong-siv"
    if shape.a1 != shape.a2 or shape.a1 == 0:
        return TestOutcome.not_applicable(name)
    a = shape.a1
    diff = shape.c1 - shape.c2  # d = (c1 - c2) / a
    span = context.trip_span(shape.index)
    if span.is_empty() or (is_finite(span.hi) and span.hi < 0):
        # The loop executes at most... never: zero-trip loop, no dependence.
        return TestOutcome.proves_independence(name)
    if diff.is_constant():
        value = diff.constant_value()
        if value % a != 0:
            return TestOutcome.proves_independence(name)
        distance = value // a
        if is_finite(span.hi) and abs(distance) > span.hi:
            return TestOutcome.proves_independence(name)
        constraint = constraint_from_distance(distance)
        # The dependence *exists* only if |d| <= U - L; with an unknown
        # span that was not verified (except d = 0, which any executed
        # iteration witnesses), so the exactness flag must drop.
        verified = is_finite(span.hi) or distance == 0
        return TestOutcome(
            name,
            exact=verified,
            constraints={shape.index: constraint},
            notes={"distance": distance},
        )
    # Symbolic constant difference.
    env = context.variable_env()
    try:
        distance_expr = diff.exact_div(a)
    except ValueError:
        distance_iv = eval_interval(diff, env).scale(Fraction(1, a))
        if _outside_span(distance_iv, span):
            return TestOutcome.proves_independence(name)
        directions = _directions_from_interval(distance_iv)
        return TestOutcome(
            name, exact=False, constraints={shape.index: IndexConstraint(directions)}
        )
    distance_iv = eval_interval(distance_expr, env)
    if _outside_span(distance_iv, span):
        return TestOutcome.proves_independence(name)
    directions = _directions_from_interval(distance_iv)
    constraint = IndexConstraint(directions, distance_expr)
    verified = (
        is_finite(span.hi)
        and distance_iv.is_bounded()
        and -span.hi <= distance_iv.lo
        and distance_iv.hi <= span.hi
    ) or distance_expr == LinearExpr.ZERO
    return TestOutcome(
        name,
        exact=bool(verified),
        constraints={shape.index: constraint},
        notes={"distance": distance_expr},
    )


def _outside_span(distance_iv: Interval, span: Interval) -> bool:
    """True when no value of the distance interval satisfies ``|d| <= span``."""
    if not is_finite(span.hi):
        return False
    allowed = Interval(-span.hi, span.hi)
    return distance_iv.intersect(allowed).is_empty()


def _directions_from_interval(distance_iv: Interval) -> FrozenSet[Direction]:
    """Directions consistent with ``d = i' - i`` lying in an interval."""
    directions: Set[Direction] = set()
    if distance_iv.hi > 0:
        directions.add(Direction.LT)
    if distance_iv.contains(0):
        directions.add(Direction.EQ)
    if distance_iv.lo < 0:
        directions.add(Direction.GT)
    return frozenset(directions)


# ---------------------------------------------------------------------------
# Weak-zero SIV
# ---------------------------------------------------------------------------


def weak_zero_siv_test(shape: SIVShape, context: PairContext) -> TestOutcome:
    """The weak-zero SIV test: one coefficient is zero.

    Solves ``a*x = c`` for the single constrained occurrence and checks the
    result against that occurrence's loop range.  Dependences hitting the
    first or last iteration are noted (the loop peeling opportunity of the
    paper's tomcatv example).
    """
    name = "weak-zero-siv"
    if shape.a1 != 0 and shape.a2 == 0:
        a = shape.a1
        target = shape.c2 - shape.c1
        solved_name = shape.src_name
        solving_src = True
    elif shape.a1 == 0 and shape.a2 != 0:
        a = shape.a2
        target = shape.c1 - shape.c2
        solved_name = shape.sink_name
        solving_src = False
    else:
        return TestOutcome.not_applicable(name)
    if solved_name is None:
        return TestOutcome.not_applicable(name)
    index_range = context.range_of(solved_name)
    env = context.variable_env()
    notes: Dict[str, object] = {"solved_side": "src" if solving_src else "sink"}

    if target.is_constant():
        value = target.constant_value()
        if value % a != 0:
            return TestOutcome.proves_independence(name)
        iteration = value // a
        if not index_range.contains(iteration):
            return TestOutcome.proves_independence(name)
        notes["zero_iteration"] = iteration
        if iteration == index_range.lo:
            notes["boundary"] = "first"
        elif iteration == index_range.hi:
            notes["boundary"] = "last"
        directions = _weak_zero_directions(iteration, index_range, solving_src)
        constraint = IndexConstraint(directions)
        # With an unbounded (symbolic) upper bound the pinned iteration may
        # lie beyond the real trip count — unless it is the first one.
        verified = index_range.is_bounded() or iteration == index_range.lo
        return TestOutcome(
            name, exact=verified, constraints={shape.index: constraint}, notes=notes
        )

    # Symbolic target.
    try:
        iteration_expr = target.exact_div(a)
        iteration_iv = eval_interval(iteration_expr, env)
        exact = True
        notes["zero_iteration"] = iteration_expr
    except ValueError:
        iteration_iv = eval_interval(target, env).scale(Fraction(1, a))
        exact = False
    if iteration_iv.intersect(index_range).is_empty():
        return TestOutcome.proves_independence(name)
    directions = _weak_zero_directions_symbolic(iteration_iv, index_range, solving_src)
    return TestOutcome(
        name, exact=exact, constraints={shape.index: IndexConstraint(directions)}, notes=notes
    )


def _weak_zero_directions(
    iteration: int, index_range: Interval, solving_src: bool
) -> FrozenSet[Direction]:
    """Directions for a pinned source (or sink) iteration.

    When the *source* is pinned at ``i0``, the sink iteration ranges freely,
    so ``<`` needs some ``i' > i0`` etc.; pinning the sink mirrors the
    comparisons.
    """
    directions: Set[Direction] = {Direction.EQ}
    above_possible = iteration < index_range.hi
    below_possible = iteration > index_range.lo
    if solving_src:
        if above_possible:
            directions.add(Direction.LT)
        if below_possible:
            directions.add(Direction.GT)
    else:
        if below_possible:
            directions.add(Direction.LT)
        if above_possible:
            directions.add(Direction.GT)
    return frozenset(directions)


def _weak_zero_directions_symbolic(
    iteration_iv: Interval, index_range: Interval, solving_src: bool
) -> FrozenSet[Direction]:
    directions: Set[Direction] = {Direction.EQ}
    above_impossible = iteration_iv.lo >= index_range.hi
    below_impossible = iteration_iv.hi <= index_range.lo
    if solving_src:
        if not above_impossible:
            directions.add(Direction.LT)
        if not below_impossible:
            directions.add(Direction.GT)
    else:
        if not below_impossible:
            directions.add(Direction.LT)
        if not above_impossible:
            directions.add(Direction.GT)
    return frozenset(directions)


# ---------------------------------------------------------------------------
# Weak-crossing SIV
# ---------------------------------------------------------------------------


def weak_crossing_siv_test(shape: SIVShape, context: PairContext) -> TestOutcome:
    """The weak-crossing SIV test: opposite nonzero coefficients.

    Endpoint iterations satisfy ``i + i' = s``; all dependences cross
    iteration ``s/2`` (the loop-splitting opportunity of the paper's
    Callahan-Dongarra-Levine example).
    """
    name = "weak-crossing-siv"
    if shape.a1 == 0 or shape.a1 != -shape.a2:
        return TestOutcome.not_applicable(name)
    if shape.src_name is None or shape.sink_name is None:
        # One side's loop does not actually enclose the reference; the
        # general exact test handles this rare shape.
        return TestOutcome.not_applicable(name)
    a = shape.a1
    target = shape.c2 - shape.c1  # i + i' = target / a
    index_range = context.range_of(shape.src_name).hull(
        context.range_of(shape.sink_name)
    )
    env = context.variable_env()

    if target.is_constant():
        value = target.constant_value()
        if value % a != 0:
            return TestOutcome.proves_independence(name)
        crossing_sum = value // a
        feasible = Interval(crossing_sum, crossing_sum).intersect(
            index_range.scale(2)
        )
        if feasible.is_empty():
            return TestOutcome.proves_independence(name)
        directions = _crossing_directions(crossing_sum, index_range)
        notes = {
            "crossing_sum": crossing_sum,
            "crossing_iteration": Fraction(crossing_sum, 2),
        }
        return TestOutcome(
            name,
            exact=index_range.is_bounded(),
            constraints={shape.index: IndexConstraint(directions)},
            notes=notes,
        )

    # Symbolic target.
    try:
        sum_expr = target.exact_div(a)
        sum_iv = eval_interval(sum_expr, env)
        exact = True
    except ValueError:
        sum_iv = eval_interval(target, env).scale(Fraction(1, a))
        exact = False
    if sum_iv.intersect(index_range.scale(2)).is_empty():
        return TestOutcome.proves_independence(name)
    directions: Set[Direction] = {Direction.EQ}
    if sum_iv.hi > index_range.scale(2).lo:
        directions.update((Direction.LT, Direction.GT))
    return TestOutcome(
        name,
        exact=exact,
        constraints={shape.index: IndexConstraint(frozenset(directions))},
    )


def _crossing_directions(
    crossing_sum: int, index_range: Interval
) -> FrozenSet[Direction]:
    """Directions of crossing dependences with ``i + i' = crossing_sum``."""
    directions: Set[Direction] = set()
    if crossing_sum % 2 == 0 and index_range.contains(crossing_sum // 2):
        directions.add(Direction.EQ)
    interior = (2 * index_range.lo < crossing_sum) and (
        crossing_sum < 2 * index_range.hi
    )
    if interior:
        directions.add(Direction.LT)
        directions.add(Direction.GT)
    return frozenset(directions)


# ---------------------------------------------------------------------------
# Exact (general) SIV
# ---------------------------------------------------------------------------


def exact_siv_test(shape: SIVShape, context: PairContext) -> TestOutcome:
    """The Single-Index exact test for arbitrary linear SIV subscripts.

    Views the dependence equation ``a1*i - a2*i' = c2 - c1`` as a line in
    the ``(i, i')`` plane (the paper's Figure 2 geometry) and asks whether
    it passes through an integer point of the bounded iteration square —
    a two-variable Diophantine query.  Direction sets come from re-solving
    with each ordering constraint added.
    """
    name = "exact-siv"
    target = shape.c2 - shape.c1
    if not target.is_constant():
        return TestOutcome.not_applicable(name)
    c = target.constant_value()
    a1, a2 = shape.a1, shape.a2
    x_range = (
        context.range_of(shape.src_name) if shape.src_name else Interval.unbounded()
    )
    y_range = (
        context.range_of(shape.sink_name) if shape.sink_name else Interval.unbounded()
    )
    box = [
        (1, 0, x_range.lo, x_range.hi),
        (0, 1, y_range.lo, y_range.hi),
    ]
    if not has_solution_with_conditions(a1, -a2, c, box):
        return TestOutcome.proves_independence(name)
    witness_bounded = x_range.is_bounded() and y_range.is_bounded()
    if shape.src_name is None or shape.sink_name is None:
        # Only one occurrence: no ordering information to compute.
        return TestOutcome(name, exact=witness_bounded)
    directions: Set[Direction] = set()
    if has_solution_with_conditions(a1, -a2, c, box + [(1, -1, NEG_INF, -1)]):
        directions.add(Direction.LT)
    if has_solution_with_conditions(a1, -a2, c, box + [(1, -1, 0, 0)]):
        directions.add(Direction.EQ)
    if has_solution_with_conditions(a1, -a2, c, box + [(1, -1, 1, POS_INF)]):
        directions.add(Direction.GT)
    constraint = IndexConstraint(frozenset(directions))
    # A fixed distance exists when the solution family moves i and i'
    # together (dx == dy), i.e. the line has slope one.
    family = solve_linear_2var(a1, -a2, c)
    notes: Dict[str, object] = {}
    if family is not None and not family.unconstrained and family.dx == family.dy:
        distance = family.y0 - family.x0
        constraint = constraint.merge(constraint_from_distance(distance))
        notes["distance"] = distance
    return TestOutcome(
        name,
        exact=witness_bounded,
        constraints={shape.index: constraint},
        notes=notes,
    )
