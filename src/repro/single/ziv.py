"""The ZIV test (Section 4.1).

A ZIV subscript pair compares two loop-invariant expressions ``e1`` and
``e2``.  If ``e1 - e2`` simplifies to a nonzero constant, the references
never overlap in this dimension and the whole reference pair is
independent.  The symbolic extension works the same way: because
:class:`~repro.symbolic.linexpr.LinearExpr` cancels identical symbolic
terms, ``N + 1`` versus ``N + 2`` simplifies to the nonzero constant ``-1``.

We additionally use any known symbol ranges: when the difference is a
symbolic expression whose interval cannot contain zero (e.g. ``N`` with the
assumption ``N >= 1``), independence is still proven — a conservative,
sound strengthening in the spirit of the paper's symbolic ZIV discussion.
"""

from __future__ import annotations

from repro.classify.pairs import PairContext, SubscriptPair
from repro.ir.context import eval_interval
from repro.single.outcome import TestOutcome

TEST_NAME = "ziv"


def ziv_test(pair: SubscriptPair, context: PairContext) -> TestOutcome:
    """Apply the ZIV test to one loop-invariant subscript pair."""
    if not pair.is_linear:
        return TestOutcome.not_applicable(TEST_NAME)
    difference = pair.difference()
    if difference.is_constant():
        if difference.constant_value() != 0:
            return TestOutcome.proves_independence(TEST_NAME)
        # Identical invariant subscripts: always equal, no constraint arises.
        return TestOutcome(TEST_NAME, exact=True)
    # Symbolic difference: decide via known symbol ranges when possible.
    interval = eval_interval(difference, context.variable_env())
    if not interval.contains(0):
        return TestOutcome.proves_independence(TEST_NAME)
    # The difference *may* be zero for some symbol values: assume dependence.
    # This is still exact in the paper's sense for a fixed-but-unknown
    # symbol value only when the difference is identically zero; report
    # non-exact otherwise.
    return TestOutcome(TEST_NAME, exact=False)
