"""MIV tests (Section 4.4): the GCD test and Banerjee's inequalities.

For subscripts containing multiple indices, the paper falls back on the
classic Banerjee-GCD combination:

* The **GCD test** checks *unconstrained* integer solutions: the GCD of all
  index-occurrence coefficients must divide the constant term, or no
  dependence exists anywhere — bounds ignored.  With symbolic additive
  constants, independence still follows when the GCD divides every symbolic
  coefficient but not the residual constant.
* **Banerjee's inequalities** bound the value of the dependence difference
  ``h = f_src - f_sink`` over the iteration region, optionally constrained
  by a (partial) direction vector; ``0`` outside ``[min(h), max(h)]`` proves
  independence for that direction.  With fully bounded index ranges the
  per-index extrema are computed *exactly* by evaluating the vertices of
  the constrained 2-D regions (triangle/segment/box); with unbounded or
  symbolic ranges the bounds fall back to sound interval arithmetic.
* The **direction hierarchy** refines ``(*, *, ..., *)`` one index at a
  time into ``<``, ``=``, ``>``, pruning refuted subtrees, and returns the
  legal direction-vector set — PFC's strategy, and the triangular Banerjee
  behaviour comes for free because the index ranges are the maximal ranges
  of Section 4.3.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.classify.pairs import PairContext, SubscriptPair, prime
from repro.dirvec.direction import Direction, IndexConstraint
from repro.ir.context import eval_interval
from repro.single.outcome import TestOutcome
from repro.symbolic.linexpr import LinearExpr
from repro.symbolic.ranges import Interval, is_finite

GCD_TEST = "gcd"
BANERJEE_TEST = "banerjee"

#: Partial direction assignment: None means ``*`` (unconstrained).
DirectionAssignment = Mapping[str, Optional[Direction]]


# ---------------------------------------------------------------------------
# GCD test
# ---------------------------------------------------------------------------


def gcd_test(pair: SubscriptPair, context: PairContext) -> TestOutcome:
    """The GCD test on one linear subscript pair."""
    if not pair.is_linear:
        return TestOutcome.not_applicable(GCD_TEST)
    h = pair.difference()
    g = 0
    symbolic: List[Tuple[str, int]] = []
    for name, coeff in h.terms:
        if _is_index_occurrence(name, context):
            g = gcd(g, abs(coeff))
        else:
            symbolic.append((name, coeff))
    if g == 0:
        return TestOutcome.not_applicable(GCD_TEST)  # ZIV shape
    if any(coeff % g != 0 for _, coeff in symbolic):
        # The divisibility depends on unknown symbol values.
        return TestOutcome(GCD_TEST, exact=False)
    if h.const % g != 0:
        return TestOutcome.proves_independence(GCD_TEST)
    return TestOutcome(GCD_TEST, exact=False)


def _is_index_occurrence(name: str, context: PairContext) -> bool:
    from repro.classify.pairs import unprime

    return context.is_index(unprime(name))


# ---------------------------------------------------------------------------
# Banerjee bounds
# ---------------------------------------------------------------------------


def banerjee_bounds(
    pair: SubscriptPair,
    context: PairContext,
    directions: Optional[DirectionAssignment] = None,
) -> Interval:
    """The interval ``[min(h), max(h)]`` of the dependence difference.

    ``directions`` optionally constrains common indices; an infeasible
    constraint (e.g. ``<`` on a single-iteration loop) yields the empty
    interval, which callers read as "no dependence for this direction".
    """
    directions = directions or {}
    h = pair.difference()
    total = Interval.point(h.const)
    env = context.variable_env()
    handled: Set[str] = set()
    for base in context.common_indices:
        src_name, sink_name = context.occurrence_names(base)
        x = h.coeff(src_name) if src_name else 0
        y = h.coeff(sink_name) if sink_name else 0
        if x == 0 and y == 0:
            continue
        handled.add(src_name or "")
        handled.add(sink_name or "")
        src_range = (
            context.range_of(src_name) if src_name else Interval.unbounded()
        )
        sink_range = (
            context.range_of(sink_name) if sink_name else Interval.unbounded()
        )
        term = _term_bounds(x, y, src_range, sink_range, directions.get(base))
        if term.is_empty():
            return Interval.empty()
        total = total + term
    for name, coeff in h.terms:
        if name in handled:
            continue
        total = total + env.get(name, Interval.unbounded()).scale(coeff)
    return total


def _term_bounds(
    x: int,
    y: int,
    src_range: Interval,
    sink_range: Interval,
    direction: Optional[Direction],
) -> Interval:
    """Bounds of ``x*i + y*i'`` over the direction-constrained region.

    ``i`` ranges over ``src_range`` and ``i'`` over ``sink_range`` — they
    start identical (both occurrences index the same loop) but the Delta
    test's range tightening can pin one occurrence independently, so the
    region is a rectangle, not a square.
    """
    if src_range.is_empty() or sink_range.is_empty():
        return Interval.empty()
    if direction is None:
        return src_range.scale(x) + sink_range.scale(y)
    if direction is Direction.EQ:
        meet = src_range.intersect(sink_range)
        if meet.is_empty():
            return Interval.empty()
        return meet.scale(x + y)
    if direction is Direction.GT:
        # i > i'  <=>  i' < i: mirror of LT with the roles swapped.
        return _term_bounds(y, x, sink_range, src_range, Direction.LT)
    if direction is not Direction.LT:
        raise ValueError(f"unknown direction {direction!r}")
    # LT region: i in src_range, i' in sink_range, i + 1 <= i'.
    bounded = src_range.is_bounded() and sink_range.is_bounded()
    if not bounded:
        # Conservative decoupled bounds: clip each range by the halfplane.
        clipped_src = src_range.intersect(
            Interval(float("-inf"), sink_range.hi - 1)
        )
        clipped_sink = sink_range.intersect(
            Interval(src_range.lo + 1, float("inf"))
        )
        if clipped_src.is_empty() or clipped_sink.is_empty():
            return Interval.empty()
        return clipped_src.scale(x) + clipped_sink.scale(y)
    vertices = _clip_rectangle_lt(
        int(src_range.lo), int(src_range.hi), int(sink_range.lo), int(sink_range.hi)
    )
    if not vertices:
        return Interval.empty()
    values = [x * u + y * v for u, v in vertices]
    return Interval(min(values), max(values))


def _clip_rectangle_lt(
    u_lo: int, u_hi: int, v_lo: int, v_hi: int
) -> List[Tuple[int, int]]:
    """Vertices of ``[u_lo,u_hi] x [v_lo,v_hi]`` clipped by ``u + 1 <= v``.

    The cutting line has slope one and integer offset, so every vertex of
    the clipped polygon is integral and the bounds stay exact for integer
    iterations.
    """
    vertices = [
        (u, v)
        for u in (u_lo, u_hi)
        for v in (v_lo, v_hi)
        if u + 1 <= v
    ]
    # Intersections of v = u + 1 with the rectangle's edges.
    for u in (u_lo, u_hi):
        v = u + 1
        if v_lo <= v <= v_hi:
            vertices.append((u, v))
    for v in (v_lo, v_hi):
        u = v - 1
        if u_lo <= u <= u_hi:
            vertices.append((u, v))
    return vertices


def banerjee_test(
    pair: SubscriptPair,
    context: PairContext,
    directions: Optional[DirectionAssignment] = None,
) -> TestOutcome:
    """Independence iff ``0`` lies outside the Banerjee bounds of ``h``."""
    if not pair.is_linear:
        return TestOutcome.not_applicable(BANERJEE_TEST)
    bounds = banerjee_bounds(pair, context, directions)
    if not bounds.contains(0):
        return TestOutcome.proves_independence(BANERJEE_TEST, exact=False)
    return TestOutcome(BANERJEE_TEST, exact=False)


# ---------------------------------------------------------------------------
# Banerjee-GCD with direction hierarchy
# ---------------------------------------------------------------------------


def banerjee_gcd_test(pair: SubscriptPair, context: PairContext) -> TestOutcome:
    """The full MIV test: GCD once, then the Banerjee direction hierarchy.

    Returns independence when either the GCD test or the all-``*`` Banerjee
    test refutes every solution; otherwise returns the legal direction
    vectors over the pair's common indices as a coupling.
    """
    name = "banerjee-gcd"
    if not pair.is_linear:
        return TestOutcome.not_applicable(name)
    gcd_outcome = gcd_test(pair, context)
    if gcd_outcome.applicable and gcd_outcome.independent:
        return TestOutcome.proves_independence(name)
    refine = [
        base
        for base in context.common_indices
        if base in context.subscript_bases(pair)
    ]
    vectors = direction_hierarchy(pair, context, refine)
    if not vectors:
        return TestOutcome.proves_independence(name, exact=False)
    outcome = TestOutcome(name, exact=False)
    if refine:
        outcome.couplings.append((tuple(refine), frozenset(vectors)))
        for position, base in enumerate(refine):
            directions = frozenset(vec[position] for vec in vectors)
            outcome.constraints[base] = IndexConstraint(directions)
    return outcome


def minimum_carrier_distance(
    pair: SubscriptPair, context: PairContext, base: str
) -> Optional[int]:
    """Minimal dependence distance on ``base`` for a ``<``-direction dependence.

    The paper notes PFC's Banerjee-GCD test was "extended to calculate the
    level, minimum distance, and interchange information"; the minimum
    distance of the carrier loop bounds how far apart dependent iterations
    are (e.g. for synchronization-free strip sizes).

    Adds the constraint ``i' = i + q`` to the Banerjee bounds of ``h``.
    Those bounds are *linear in q*, so the feasible ``q`` form a closed
    interval solved for directly; the result is the smallest integer
    ``q >= 1`` in it, or None when the ``<`` direction is refuted (up to
    Banerjee precision — soundly conservative, never a false None for
    bounded linear subscripts).
    """
    if not pair.is_linear:
        return None
    src_name, sink_name = context.occurrence_names(base)
    if src_name is None or sink_name is None:
        return None
    h = pair.difference()
    x = h.coeff(src_name)
    y = h.coeff(sink_name)
    index_range = context.range_of(src_name)
    big_l, big_u = index_range.lo, index_range.hi
    # Contribution of every other variable plus the constant.
    env = context.variable_env()
    rest = Interval.point(h.const)
    for name, coeff in h.terms:
        if name in (src_name, sink_name):
            continue
        rest = rest + env.get(name, Interval.unbounded()).scale(coeff)
    # With i in [L, U-q] and i' = i + q:  h = (x+y)*i + y*q + rest.
    s = x + y
    if s >= 0:
        lo0, lo1 = _mul_ext(s, big_l), y          # h_lo = s*L + y*q + rest.lo
        hi0, hi1 = _mul_ext(s, big_u), y - s      # h_hi = s*U + (y-s)*q + rest.hi
    else:
        lo0, lo1 = _mul_ext(s, big_u), y - s
        hi0, hi1 = _mul_ext(s, big_l), y
    lo0 = lo0 + rest.lo
    hi0 = hi0 + rest.hi
    span = context.trip_span(base)
    q_hi = span.hi if is_finite(span.hi) else None
    # Feasibility: lo0 + lo1*q <= 0 <= hi0 + hi1*q, 1 <= q (<= q_hi).
    q_interval = _solve_le(lo0, lo1)                 # lo0 + lo1*q <= 0
    q_interval = q_interval.intersect(_solve_le(-hi0, -hi1))
    q_interval = q_interval.intersect(
        Interval(1, q_hi if q_hi is not None else float("inf"))
    )
    if q_interval.is_empty() or not q_interval.contains_integer():
        return None
    from repro.symbolic.ranges import ceil_frac

    return max(1, ceil_frac(q_interval.lo)) if is_finite(q_interval.lo) else 1


def _mul_ext(coeff: int, value) -> object:
    """coeff * extent with 0 * inf == 0."""
    if coeff == 0 or value == 0:
        return 0
    return coeff * value


def _solve_le(c0, c1: int) -> Interval:
    """The q-interval satisfying ``c0 + c1*q <= 0`` (c0 may be infinite)."""
    from fractions import Fraction

    if c0 == float("-inf"):
        return Interval.unbounded()
    if c0 == float("inf"):
        return Interval.empty()
    if c1 == 0:
        return Interval.unbounded() if c0 <= 0 else Interval.empty()
    bound = Fraction(-c0, c1)
    if c1 > 0:
        return Interval(float("-inf"), bound)
    return Interval(bound, float("inf"))


def direction_hierarchy(
    pair: SubscriptPair,
    context: PairContext,
    refine: Sequence[str],
) -> FrozenSet[Tuple[Direction, ...]]:
    """All direction vectors over ``refine`` that Banerjee cannot refute.

    Depth-first refinement of ``(*, ..., *)``: each level of the tree pins
    one more index to ``<``, ``=``, or ``>``; a subtree is pruned as soon as
    the partial vector is refuted, which is what makes the hierarchy cheap
    in practice.
    """
    legal: List[Tuple[Direction, ...]] = []
    assignment: Dict[str, Optional[Direction]] = {base: None for base in refine}

    def descend(position: int) -> None:
        bounds = banerjee_bounds(pair, context, assignment)
        if bounds.is_empty() or not bounds.contains(0):
            return
        if position == len(refine):
            legal.append(
                tuple(assignment[base] for base in refine)  # type: ignore[misc]
            )
            return
        base = refine[position]
        for direction in (Direction.LT, Direction.EQ, Direction.GT):
            assignment[base] = direction
            descend(position + 1)
        assignment[base] = None

    descend(0)
    return frozenset(legal)
