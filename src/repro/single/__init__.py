"""Single-subscript dependence tests (Section 4 of the paper)."""

from repro.single.outcome import TestOutcome
from repro.single.ziv import ziv_test
from repro.single.siv import (
    exact_siv_test,
    siv_test,
    strong_siv_test,
    weak_crossing_siv_test,
    weak_zero_siv_test,
)
from repro.single.rdiv import rdiv_test
from repro.single.miv import (
    banerjee_bounds,
    banerjee_gcd_test,
    banerjee_test,
    direction_hierarchy,
    gcd_test,
    minimum_carrier_distance,
)

__all__ = [
    "TestOutcome",
    "ziv_test",
    "exact_siv_test",
    "siv_test",
    "strong_siv_test",
    "weak_crossing_siv_test",
    "weak_zero_siv_test",
    "rdiv_test",
    "banerjee_bounds",
    "banerjee_gcd_test",
    "banerjee_test",
    "direction_hierarchy",
    "gcd_test",
    "minimum_carrier_distance",
]
