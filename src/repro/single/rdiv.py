"""The RDIV test (Section 4.4).

An RDIV (Restricted Double Index Variable) subscript has the form
``<a1*i + c1, a2*j + c2>`` with *distinct* indices ``i`` and ``j``.  It is
an MIV subscript, but the SIV machinery applies once we observe that the
two variables simply have different loop bounds: the dependence equation
``a1*i - a2*j = c2 - c1`` is the same two-variable Diophantine problem as
the exact SIV test, solved over the two indices' own ranges.

No direction information relates ``i`` and ``j`` (they index different
loops), so the test proves independence or yields an unconstrained
dependence — which is precisely how the paper uses it.
"""

from __future__ import annotations

from repro.classify.pairs import PairContext, SubscriptPair
from repro.classify.subscript import SubscriptKind, classify, rdiv_shape
from repro.single.outcome import TestOutcome
from repro.symbolic.diophantine import has_solution_with_conditions
from repro.symbolic.ranges import Interval

TEST_NAME = "rdiv"


def rdiv_test(pair: SubscriptPair, context: PairContext) -> TestOutcome:
    """Apply the RDIV test to a two-distinct-index subscript pair."""
    if classify(pair, context) is not SubscriptKind.RDIV:
        return TestOutcome.not_applicable(TEST_NAME)
    shape = rdiv_shape(pair, context)
    target = shape.c2 - shape.c1
    if not target.is_constant():
        return TestOutcome.not_applicable(TEST_NAME)
    c = target.constant_value()
    x_range = (
        context.range_of(shape.src_name) if shape.src_name else Interval.unbounded()
    )
    y_range = (
        context.range_of(shape.sink_name) if shape.sink_name else Interval.unbounded()
    )
    box = [
        (1, 0, x_range.lo, x_range.hi),
        (0, 1, y_range.lo, y_range.hi),
    ]
    if not has_solution_with_conditions(shape.a1, -shape.a2, c, box):
        return TestOutcome.proves_independence(TEST_NAME)
    # The found witness lies inside *known* bounds only when both ranges
    # are bounded; with symbolic bounds the dependence is unverified.
    witness_bounded = x_range.is_bounded() and y_range.is_bounded()
    return TestOutcome(TEST_NAME, exact=witness_bounded)
