"""The common result type of all dependence tests."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dirvec.direction import IndexConstraint
from repro.dirvec.vectors import Coupling


@dataclass
class TestOutcome:
    """What one dependence test concluded about one subscript (or group).

    ``applicable``
        False when the test's preconditions did not hold (e.g. a symbolic
        term kept the strong SIV test from deciding divisibility); the
        driver then falls through to a more general test.
    ``independent``
        True when the test *proved* no dependence exists.  Only meaningful
        when ``applicable``.
    ``exact``
        True when the test is exact for the subscript shape it was given —
        a "dependence" answer then means a dependence really exists.
    ``constraints``
        Per-base-index direction/distance knowledge established by the test
        (empty when independent or when nothing was learned).
    ``notes``
        Free-form extra facts for downstream consumers, e.g. the weak-zero
        test records ``{"zero_iteration": i0}`` so loop peeling can check
        for first/last-iteration dependences, and the weak-crossing test
        records ``{"crossing_sum": s}`` (endpoints satisfy ``i + i' = s``)
        for loop splitting.
    """

    __test__ = False  # not a pytest test class despite the name

    test: str
    applicable: bool = True
    independent: bool = False
    exact: bool = False
    constraints: Dict[str, IndexConstraint] = field(default_factory=dict)
    couplings: List[Coupling] = field(default_factory=list)
    notes: Dict[str, object] = field(default_factory=dict)

    @staticmethod
    def not_applicable(test: str) -> "TestOutcome":
        """The test could not run on this subscript shape."""
        return TestOutcome(test, applicable=False)

    @staticmethod
    def proves_independence(test: str, exact: bool = True) -> "TestOutcome":
        """The test proved no dependence exists."""
        return TestOutcome(test, independent=True, exact=exact)

    def __str__(self) -> str:
        if not self.applicable:
            return f"{self.test}: not applicable"
        if self.independent:
            return f"{self.test}: independent"
        inner = ", ".join(f"{k}: {v}" for k, v in sorted(self.constraints.items()))
        return f"{self.test}: dependence ({inner or 'unconstrained'})"
