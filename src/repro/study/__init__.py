"""Empirical study harness (Section 6 of the paper): Tables 1-3."""

from repro.study.stats import ProgramStats, collect_program_stats, suite_totals
from repro.study.tables import (
    KIND_ORDER,
    Table2Row,
    Table3Row,
    corpus_stats,
    render_table1,
    render_table2,
    render_table3,
    table1,
    table2,
    table3,
)
from repro.study.report import full_report, precision_comparison
from repro.study.vectorstats import VectorRow, render_vector_summary, vector_summary

__all__ = [
    "ProgramStats",
    "collect_program_stats",
    "suite_totals",
    "KIND_ORDER",
    "Table2Row",
    "Table3Row",
    "corpus_stats",
    "render_table1",
    "render_table2",
    "render_table3",
    "table1",
    "table2",
    "table3",
    "full_report",
    "precision_comparison",
    "VectorRow",
    "render_vector_summary",
    "vector_summary",
]
