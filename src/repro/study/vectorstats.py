"""Vectorization / parallelization summary over the corpus.

The paper's introduction motivates dependence testing with what compilers
do with the results ("optimizations utilizing dependence information can
result in integer factor speedups").  This extension table measures, per
suite, what the analysis enables end-to-end: how many loops are DOALLs,
how many statements Allen-Kennedy codegen vectorizes, and how many
transformation opportunities (peeling/splitting) the SIV by-products
surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.corpus.loader import default_symbols, load_corpus
from repro.graph.depgraph import build_dependence_graph
from repro.ir.context import SymbolEnv
from repro.study.tablefmt import render_table
from repro.transform.parallel import find_parallel_loops
from repro.transform.peel import find_peeling_opportunities
from repro.transform.split import find_splitting_opportunities
from repro.transform.vectorize import vectorize


@dataclass
class VectorRow:
    """Per-suite enablement counts."""

    suite: str
    loops: int = 0
    parallel_loops: int = 0
    statements: int = 0
    vector_statements: int = 0
    peel_opportunities: int = 0
    split_opportunities: int = 0

    @property
    def parallel_fraction(self) -> float:
        return self.parallel_loops / self.loops if self.loops else 0.0


def vector_summary(
    suites: Optional[List[str]] = None, symbols: Optional[SymbolEnv] = None
) -> List[VectorRow]:
    """Analyze the corpus and summarize what the dependences enable."""
    symbols = symbols or default_symbols()
    rows: List[VectorRow] = []
    for suite, programs in load_corpus(suites).items():
        row = VectorRow(suite)
        for program in programs:
            for routine in program.routines:
                graph = build_dependence_graph(routine.body, symbols=symbols)
                verdicts = find_parallel_loops(routine.body, symbols, graph)
                row.loops += len(verdicts)
                row.parallel_loops += sum(1 for v in verdicts if v.parallel)
                report = vectorize(routine.body, symbols, graph)
                row.statements += len(report.vectorized) + len(report.serialized)
                row.vector_statements += len(report.vectorized)
                row.peel_opportunities += len(
                    find_peeling_opportunities(routine.body, symbols, graph)
                )
                row.split_opportunities += len(
                    find_splitting_opportunities(routine.body, symbols, graph)
                )
        rows.append(row)
    return rows


def render_vector_summary(rows: Optional[List[VectorRow]] = None) -> str:
    """The summary as a text table."""
    rows = rows if rows is not None else vector_summary()
    headers = (
        "suite", "loops", "parallel", "stmts", "vectorized",
        "peels", "splits",
    )
    body = [
        (
            r.suite, r.loops, r.parallel_loops, r.statements,
            r.vector_statements, r.peel_opportunities, r.split_opportunities,
        )
        for r in rows
    ]
    return render_table(
        headers, body, "Parallelization/vectorization enabled by the analysis"
    )
