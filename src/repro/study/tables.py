"""The paper's evaluation tables, regenerated over the corpus.

* **Table 1** — complexity of array subscripts: per program, source lines,
  number of routines, the dimensionality histogram of tested reference
  pairs, and the separable / coupled / nonlinear partition counts.
* **Table 2** — classification of subscripts: ZIV / strong SIV / weak-zero
  / weak-crossing / weak SIV / RDIV / MIV / nonlinear counts per suite,
  plus the same breakdown restricted to coupled groups.
* **Table 3** — dependence tests applied and independences proved, per
  test, per suite (from an instrumented full-driver run).

Each ``tableN()`` function returns structured rows; ``render_tableN()``
formats them as the text tables the CLI and benchmarks print.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.classify.subscript import SubscriptKind
from repro.corpus.loader import default_symbols, load_corpus
from repro.engine import faultinject
from repro.engine.faults import FailureRecord, describe_error
from repro.instrument import TestRecorder
from repro.ir.context import SymbolEnv
from repro.ir.program import Program
from repro.study.stats import ProgramStats, collect_program_stats, suite_totals
from repro.study.tablefmt import render_table

KIND_ORDER = (
    SubscriptKind.ZIV,
    SubscriptKind.SIV_STRONG,
    SubscriptKind.SIV_WEAK_ZERO,
    SubscriptKind.SIV_WEAK_CROSSING,
    SubscriptKind.SIV_WEAK,
    SubscriptKind.RDIV,
    SubscriptKind.MIV,
    SubscriptKind.NONLINEAR,
)


def corpus_stats(
    suites: Optional[List[str]] = None, symbols: Optional[SymbolEnv] = None
) -> Dict[str, List[ProgramStats]]:
    """Classify the whole corpus; per-suite lists of per-program stats."""
    symbols = symbols or default_symbols()
    corpus = load_corpus(suites)
    return {
        suite: [collect_program_stats(p, symbols) for p in programs]
        for suite, programs in corpus.items()
    }


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


def table1(
    stats: Optional[Dict[str, List[ProgramStats]]] = None,
) -> List[ProgramStats]:
    """Rows of Table 1: per-program stats plus per-suite totals."""
    stats = stats or corpus_stats()
    rows: List[ProgramStats] = []
    for suite, programs in stats.items():
        rows.extend(programs)
        rows.append(suite_totals(programs, suite))
    return rows


def render_table1(rows: Optional[List[ProgramStats]] = None) -> str:
    """Table 1 as text."""
    rows = rows if rows is not None else table1()
    headers = (
        "program", "suite", "lines", "routines", "pairs",
        "1-dim", "2-dim", "3+dim", "separable", "coupled", "nonlinear",
    )
    body = [
        (
            r.name, r.suite, r.lines, r.routines, r.pairs_tested,
            r.dimension_histogram.get(1, 0),
            r.dimension_histogram.get(2, 0),
            r.dimension_histogram.get(3, 0),
            r.separable, r.coupled, r.nonlinear,
        )
        for r in rows
    ]
    return render_table(headers, body, "Table 1: complexity of array subscripts")


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------


@dataclass
class Table2Row:
    """Per-suite subscript classification counts."""

    suite: str
    counts: Counter
    coupled_counts: Counter

    def total(self) -> int:
        return sum(self.counts.values())


def table2(
    stats: Optional[Dict[str, List[ProgramStats]]] = None,
) -> List[Table2Row]:
    """Rows of Table 2: per-suite classification counts."""
    stats = stats or corpus_stats()
    rows = []
    for suite, programs in stats.items():
        total = suite_totals(programs, suite)
        rows.append(Table2Row(suite, total.kind_counts, total.coupled_kind_counts))
    return rows


def render_table2(rows: Optional[List[Table2Row]] = None) -> str:
    """Table 2 as text (all subscripts, then coupled-only)."""
    rows = rows if rows is not None else table2()
    headers = ("suite",) + tuple(str(kind) for kind in KIND_ORDER) + ("total",)
    body = [
        (row.suite,)
        + tuple(row.counts.get(kind, 0) for kind in KIND_ORDER)
        + (row.total(),)
        for row in rows
    ]
    first = render_table(headers, body, "Table 2: classification of subscripts")
    coupled_body = [
        (row.suite,)
        + tuple(row.coupled_counts.get(kind, 0) for kind in KIND_ORDER)
        + (sum(row.coupled_counts.values()),)
        for row in rows
    ]
    second = render_table(
        headers, coupled_body, "Table 2b: classification within coupled groups"
    )
    return first + "\n\n" + second


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------


@dataclass
class Table3Row:
    """Per-suite, per-test application and independence counts."""

    suite: str
    recorder: TestRecorder
    pairs_tested: int
    pairs_independent: int


def table3(
    suites: Optional[List[str]] = None,
    symbols: Optional[SymbolEnv] = None,
    jobs: int = 1,
    engine=None,
) -> List[Table3Row]:
    """Run the instrumented driver over the corpus; per-suite recorders.

    One :class:`~repro.engine.engine.DependenceEngine` serves the whole
    corpus, so canonical cache entries accumulate across suites; its
    recorder parity guarantees the counts match an uncached serial run.
    ``jobs > 1`` fans the tests out over a process pool.  Pass ``engine``
    to share one across report sections (and to choose a fault policy).

    Routines are isolated: a routine whose whole graph build fails —
    something even the engine's per-pair degradation could not absorb —
    is skipped and reported as a ``routine`` failure in the engine's
    stats instead of aborting the study.  Under a strict policy the
    failure propagates.
    """
    from repro.engine import DependenceEngine

    symbols = symbols or default_symbols()
    corpus = load_corpus(suites)
    if engine is None:
        engine = DependenceEngine(symbols=symbols, jobs=jobs)
    rows: List[Table3Row] = []
    for suite, programs in corpus.items():
        recorder = TestRecorder()
        tested = independent = 0
        for program in programs:
            for routine in program.routines:
                try:
                    faultinject.on_routine(routine.name)
                    graph = engine.build_graph(routine.body, recorder=recorder)
                except Exception as exc:
                    if engine.policy.strict:
                        raise
                    engine.stats.record_failure(
                        FailureRecord(
                            "routine",
                            f"{suite}/{program.name}/{routine.name}",
                            describe_error(exc),
                        )
                    )
                    continue
                tested += graph.tested_pairs
                independent += graph.independent_pairs
                checkpoint = getattr(engine, "checkpoint", None)
                if checkpoint is not None and engine.store is not None:
                    try:
                        checkpoint.mark_routine(
                            f"{suite}/{program.name}/{routine.name}"
                        )
                    except Exception as exc:
                        engine.driver._degrade_store(exc)
        rows.append(Table3Row(suite, recorder, tested, independent))
    return rows


def render_table3(rows: Optional[List[Table3Row]] = None) -> str:
    """Table 3 as text."""
    rows = rows if rows is not None else table3()
    test_names = sorted(
        {name for row in rows for name in row.recorder.applications}
    )
    headers = ("suite",) + tuple(
        f"{name} (app/ind)" for name in test_names
    ) + ("pairs", "indep pairs")
    body = []
    for row in rows:
        cells: List[object] = [row.suite]
        for name in test_names:
            apps = row.recorder.applications.get(name, 0)
            inds = row.recorder.independences.get(name, 0)
            cells.append(f"{apps}/{inds}")
        cells.append(row.pairs_tested)
        cells.append(row.pairs_independent)
        body.append(tuple(cells))
    return render_table(
        headers, body, "Table 3: dependence tests applied / independences proved"
    )
