"""Minimal fixed-width text-table rendering for the study reports."""

from __future__ import annotations

from typing import List, Sequence


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table with a rule under the header."""
    columns = len(headers)
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index in range(columns):
            widths[index] = max(widths[index], len(row[index]) if index < len(row) else 0)

    def render_row(values: Sequence[str]) -> str:
        padded = []
        for index in range(columns):
            text = values[index] if index < len(values) else ""
            if index == 0:
                padded.append(text.ljust(widths[index]))
            else:
                padded.append(text.rjust(widths[index]))
        return "  ".join(padded)

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("-" * (sum(widths) + 2 * (columns - 1)))
    for row in cells:
        lines.append(render_row(row))
    return "\n".join(lines)
