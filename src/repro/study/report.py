"""One-shot study report: every table plus the headline comparisons."""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.subscript_by_subscript import (
    test_dependence_lambda,
    test_dependence_power,
    test_dependence_subscript_by_subscript,
)
from repro.corpus.loader import default_symbols, load_corpus
from repro.graph.depgraph import build_dependence_graph
from repro.study.tablefmt import render_table
from repro.study.tables import (
    corpus_stats,
    render_table1,
    render_table2,
    render_table3,
    table1,
    table2,
    table3,
)


def precision_comparison(
    suites: Optional[List[str]] = None, jobs: int = 1, engine=None
) -> str:
    """Independent-pairs comparison: paper's suite vs the baselines.

    Reproduces the Section 7.4 claim that multiple-subscript testing (the
    Delta test) proves more coupled independences than subscript-by-
    subscript testing, at far lower cost than the Power test.

    The partition+delta column runs through the engine (cached, and over
    ``jobs`` workers when asked); the baseline testers have no canonical
    form and always run serially.  Routine-level failures (in either the
    engine or a baseline tester) skip that routine for that tester and
    land in the engine's fault report, unless the policy is strict.
    """
    from repro.engine import DependenceEngine
    from repro.engine.faults import FailureRecord, describe_error

    symbols = default_symbols()
    corpus = load_corpus(suites)
    if engine is None:
        engine = DependenceEngine(symbols=symbols, jobs=jobs)
    testers = (
        ("partition+delta", None),
        ("subscript-by-subscript", test_dependence_subscript_by_subscript),
        ("lambda", test_dependence_lambda),
        ("power", test_dependence_power),
    )
    rows = []
    for suite, programs in corpus.items():
        cells: List[object] = [suite]
        for tester_name, tester in testers:
            tested = independent = 0
            for program in programs:
                for routine in program.routines:
                    try:
                        if tester is None:
                            graph = engine.build_graph(routine.body)
                        else:
                            graph = build_dependence_graph(
                                routine.body, symbols=symbols, tester=tester
                            )
                    except Exception as exc:
                        if engine.policy.strict:
                            raise
                        engine.stats.record_failure(
                            FailureRecord(
                                "routine",
                                f"{suite}/{program.name}/{routine.name}"
                                f" ({tester_name})",
                                describe_error(exc),
                            )
                        )
                        continue
                    tested += graph.tested_pairs
                    independent += graph.independent_pairs
            cells.append(f"{independent}/{tested}")
        rows.append(tuple(cells))
    headers = ("suite",) + tuple(name for name, _ in testers)
    return render_table(
        headers, rows, "Independent pairs proved by each testing strategy"
    )


def full_report(
    suites: Optional[List[str]] = None, jobs: int = 1, engine=None
) -> str:
    """All tables and comparisons as one text report.

    One engine serves every section, so its cache stays warm across them
    and every absorbed failure lands in a single fault report, appended
    as a final section when anything degraded.
    """
    from repro.engine import DependenceEngine

    if engine is None:
        engine = DependenceEngine(symbols=default_symbols(), jobs=jobs)
    stats = corpus_stats(suites)
    sections = [
        render_table1(table1(stats)),
        render_table2(table2(stats)),
        render_table3(table3(suites, jobs=jobs, engine=engine)),
        precision_comparison(suites, jobs=jobs, engine=engine),
    ]
    if engine.stats.degraded:
        sections.append(engine.stats.failure_report())
    return "\n\n".join(sections)
