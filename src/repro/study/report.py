"""One-shot study report: every table plus the headline comparisons."""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.subscript_by_subscript import (
    test_dependence_lambda,
    test_dependence_power,
    test_dependence_subscript_by_subscript,
)
from repro.corpus.loader import default_symbols, load_corpus
from repro.graph.depgraph import build_dependence_graph
from repro.study.tablefmt import render_table
from repro.study.tables import (
    corpus_stats,
    render_table1,
    render_table2,
    render_table3,
    table1,
    table2,
    table3,
)


def precision_comparison(
    suites: Optional[List[str]] = None, jobs: int = 1
) -> str:
    """Independent-pairs comparison: paper's suite vs the baselines.

    Reproduces the Section 7.4 claim that multiple-subscript testing (the
    Delta test) proves more coupled independences than subscript-by-
    subscript testing, at far lower cost than the Power test.

    The partition+delta column runs through the engine (cached, and over
    ``jobs`` workers when asked); the baseline testers have no canonical
    form and always run serially.
    """
    from repro.engine import DependenceEngine

    symbols = default_symbols()
    corpus = load_corpus(suites)
    engine = DependenceEngine(symbols=symbols, jobs=jobs)
    testers = (
        ("partition+delta", None),
        ("subscript-by-subscript", test_dependence_subscript_by_subscript),
        ("lambda", test_dependence_lambda),
        ("power", test_dependence_power),
    )
    rows = []
    for suite, programs in corpus.items():
        cells: List[object] = [suite]
        for _, tester in testers:
            tested = independent = 0
            for program in programs:
                for routine in program.routines:
                    if tester is None:
                        graph = engine.build_graph(routine.body)
                    else:
                        graph = build_dependence_graph(
                            routine.body, symbols=symbols, tester=tester
                        )
                    tested += graph.tested_pairs
                    independent += graph.independent_pairs
            cells.append(f"{independent}/{tested}")
        rows.append(tuple(cells))
    headers = ("suite",) + tuple(name for name, _ in testers)
    return render_table(
        headers, rows, "Independent pairs proved by each testing strategy"
    )


def full_report(suites: Optional[List[str]] = None, jobs: int = 1) -> str:
    """All tables and comparisons as one text report."""
    stats = corpus_stats(suites)
    sections = [
        render_table1(table1(stats)),
        render_table2(table2(stats)),
        render_table3(table3(jobs=jobs)),
        precision_comparison(suites, jobs=jobs),
    ]
    return "\n\n".join(sections)
