"""Per-program subscript statistics (the raw data behind Tables 1 and 2).

For every candidate reference pair of a program, record:

* the dimensionality of the pair (Table 1's histogram),
* each subscript position's classification (Table 2),
* whether each position is separable, part of a coupled group, or
  nonlinear (Table 1's partition columns),
* coupled-group sizes and the classes appearing inside coupled groups
  (the paper's observation that coupled subscripts are almost all SIV).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.classify.pairs import PairContext
from repro.classify.partition import partition_subscripts
from repro.classify.subscript import SubscriptKind, classify
from repro.graph.depgraph import iter_candidate_pairs
from repro.ir.context import SymbolEnv
from repro.ir.program import Program


@dataclass
class ProgramStats:
    """Subscript-shape statistics of one program."""

    name: str
    suite: str
    lines: int = 0
    routines: int = 0
    pairs_tested: int = 0
    dimension_histogram: Counter = field(default_factory=Counter)
    kind_counts: Counter = field(default_factory=Counter)
    separable: int = 0
    coupled: int = 0
    nonlinear: int = 0
    coupled_group_sizes: Counter = field(default_factory=Counter)
    coupled_kind_counts: Counter = field(default_factory=Counter)

    def merge(self, other: "ProgramStats") -> None:
        """Accumulate another program's counts (suite totals)."""
        self.lines += other.lines
        self.routines += other.routines
        self.pairs_tested += other.pairs_tested
        self.dimension_histogram.update(other.dimension_histogram)
        self.kind_counts.update(other.kind_counts)
        self.separable += other.separable
        self.coupled += other.coupled
        self.nonlinear += other.nonlinear
        self.coupled_group_sizes.update(other.coupled_group_sizes)
        self.coupled_kind_counts.update(other.coupled_kind_counts)

    @property
    def total_subscripts(self) -> int:
        """Total classified subscript positions."""
        return sum(self.kind_counts.values())


def collect_program_stats(
    program: Program, symbols: Optional[SymbolEnv] = None
) -> ProgramStats:
    """Walk every candidate reference pair of a program and classify it."""
    stats = ProgramStats(
        name=program.name,
        suite=program.suite or "-",
        lines=program.source_lines,
        routines=len(program.routines),
    )
    for routine in program.routines:
        sites = routine.access_sites()
        for src, sink in iter_candidate_pairs(sites):
            context = PairContext(src, sink, symbols)
            if context.rank_mismatch:
                continue
            stats.pairs_tested += 1
            ndim = src.ref.ndim
            stats.dimension_histogram[min(ndim, 3)] += 1
            partitions = partition_subscripts(context.subscripts, context)
            for partition in partitions:
                for pair in partition.pairs:
                    kind = classify(pair, context)
                    stats.kind_counts[kind] += 1
                    if kind is SubscriptKind.NONLINEAR:
                        stats.nonlinear += 1
                    elif partition.is_separable:
                        stats.separable += 1
                    else:
                        stats.coupled += 1
                        stats.coupled_kind_counts[kind] += 1
                if not partition.is_separable:
                    stats.coupled_group_sizes[len(partition.pairs)] += 1
    return stats


def suite_totals(per_program: List[ProgramStats], suite: str) -> ProgramStats:
    """Aggregate row over a suite's programs."""
    total = ProgramStats(name="TOTAL", suite=suite)
    for stats in per_program:
        total.merge(stats)
    return total
