"""Loop normalization: remove non-unit steps.

The dependence tests (and the paper) assume *normalized* loops with step 1.
``DO I = L, U, S`` is rewritten to ``DO I$ = 0, (U - L) / S`` with every use
of ``I`` replaced by ``L + S * I$``.  When ``(U - L)`` is not provably
divisible by ``S`` the normalized upper bound uses the floor, which is the
correct trip count for Fortran DO semantics.

The paper's Section 1.5 assumes induction-variable substitution and loop
normalization have already run in PFC; this pass makes our front end meet
that assumption.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.expr import (
    Add,
    Call,
    Const,
    Div,
    Expr,
    IndexedLoad,
    Mul,
    Neg,
    Opaque,
    RealConst,
    Sub,
    Var,
)
from repro.ir.loop import ArrayRef, Assign, Conditional, Loop, Node, ScalarRef
from repro.ir.program import Program, Routine


def normalize_steps(body: List[Node], suffix: str = "$") -> List[Node]:
    """Return a copy of ``body`` with every non-unit-step loop normalized.

    Negative steps (``DO I = U, L, -1``) and strides (``DO I = 1, N, 2``)
    both normalize to unit-step loops from 0.  Loops already at step 1 are
    rebuilt structurally but keep their index names.
    """
    return [_normalize_node(node, {}, suffix) for node in body]


def normalize_program(program: Program, suffix: str = "$") -> Program:
    """Normalize every routine of a program."""
    routines = [
        Routine(r.name, normalize_steps(r.body, suffix), r.source_lines)
        for r in program.routines
    ]
    return Program(program.name, routines, program.suite)


def _normalize_node(node: Node, subst: Dict[str, Expr], suffix: str) -> Node:
    if isinstance(node, Loop):
        return _normalize_loop(node, subst, suffix)
    if isinstance(node, Conditional):
        return Conditional(
            node.condition,
            [_normalize_node(item, subst, suffix) for item in node.body],
        )
    if isinstance(node, Assign):
        return Assign(
            _subst_ref(node.lhs, subst),
            _subst_expr(node.rhs, subst),
            node.label,
        )
    raise TypeError(f"unknown node {node!r}")


def _normalize_loop(loop: Loop, subst: Dict[str, Expr], suffix: str) -> Loop:
    lower = _subst_expr(loop.lower, subst)
    upper = _subst_expr(loop.upper, subst)
    if loop.step == 1:
        inner_subst = dict(subst)
        inner_subst.pop(loop.index, None)
        body = [_normalize_node(item, inner_subst, suffix) for item in loop.body]
        return Loop(loop.index, lower, upper, 1, body, loop.label)
    new_index = loop.index + suffix
    # trip-1 = floor((upper - lower) / step); the Div node is normalized
    # lazily — when the difference is a multiple of step, to_linear succeeds,
    # otherwise the bound is treated as non-affine (conservative).
    span = Sub(upper, lower) if loop.step > 0 else Sub(lower, upper)
    new_upper: Expr = Div(span, Const(abs(loop.step)))
    replacement: Expr = Add(lower, Mul(Const(loop.step), Var(new_index)))
    inner_subst = dict(subst)
    inner_subst[loop.index] = replacement
    body = [_normalize_node(item, inner_subst, suffix) for item in loop.body]
    return Loop(new_index, Const(0), new_upper, 1, body, loop.label)


def _subst_ref(ref, subst: Dict[str, Expr]):
    if isinstance(ref, ArrayRef):
        return ArrayRef(
            ref.array, tuple(_subst_expr(s, subst) for s in ref.subscripts)
        )
    if isinstance(ref, ScalarRef):
        return ref
    raise TypeError(f"unknown reference {ref!r}")


def _subst_expr(expr: Expr, subst: Dict[str, Expr]) -> Expr:
    if isinstance(expr, (Const, RealConst, Opaque)):
        return expr
    if isinstance(expr, Var):
        return subst.get(expr.name, expr)
    if isinstance(expr, Add):
        return Add(_subst_expr(expr.left, subst), _subst_expr(expr.right, subst))
    if isinstance(expr, Sub):
        return Sub(_subst_expr(expr.left, subst), _subst_expr(expr.right, subst))
    if isinstance(expr, Mul):
        return Mul(_subst_expr(expr.left, subst), _subst_expr(expr.right, subst))
    if isinstance(expr, Div):
        return Div(_subst_expr(expr.left, subst), _subst_expr(expr.right, subst))
    if isinstance(expr, Neg):
        return Neg(_subst_expr(expr.operand, subst))
    if isinstance(expr, IndexedLoad):
        return IndexedLoad(
            expr.array, tuple(_subst_expr(s, subst) for s in expr.subscripts)
        )
    if isinstance(expr, Call):
        return Call(expr.name, tuple(_subst_expr(a, subst) for a in expr.args))
    raise TypeError(f"unknown expression {expr!r}")
