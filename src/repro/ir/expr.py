"""Surface expression trees for subscript and bound expressions.

The Fortran front end parses subscripts into these trees *before* linearity
is known: the paper's Table 1 counts nonlinear subscripts (e.g. ``A(I*J)`` or
index arrays), so the IR must be able to represent them even though no
dependence test applies.  :func:`to_linear` normalizes a tree into a
:class:`~repro.symbolic.linexpr.LinearExpr`, raising
:class:`~repro.symbolic.linexpr.NonlinearExpressionError` when the tree is
not affine in its variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Set, Tuple, Union

from repro.symbolic.linexpr import LinearExpr, NonlinearExpressionError


class Expr:
    """Base class for surface expressions."""

    __slots__ = ()

    def variables(self) -> Set[str]:
        """All variable names mentioned in the tree."""
        return {node.name for node in self.walk() if isinstance(node, Var)}

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the tree."""
        yield self

    def is_linear(self) -> bool:
        """True when :func:`to_linear` would succeed."""
        try:
            to_linear(self)
        except NonlinearExpressionError:
            return False
        return True

    # Operator sugar so tests and examples can compose expressions naturally.
    def __add__(self, other: "ExprLike") -> "Expr":
        return Add(self, as_expr(other))

    def __radd__(self, other: "ExprLike") -> "Expr":
        return Add(as_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "Expr":
        return Sub(self, as_expr(other))

    def __rsub__(self, other: "ExprLike") -> "Expr":
        return Sub(as_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "Expr":
        return Mul(self, as_expr(other))

    def __rmul__(self, other: "ExprLike") -> "Expr":
        return Mul(as_expr(other), self)

    def __neg__(self) -> "Expr":
        return Neg(self)


ExprLike = Union[Expr, int, str]


def as_expr(value: ExprLike) -> Expr:
    """Coerce ints to :class:`Const` and strings to :class:`Var`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot interpret {value!r} as an expression")


@dataclass(frozen=True, slots=True)
class Const(Expr):
    """An integer literal."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Var(Expr):
    """A scalar variable: a loop index or a loop-invariant symbol."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class RealConst(Expr):
    """A floating-point literal.

    Real constants are legal in right-hand sides (where only array
    references matter for dependence testing) but make a subscript
    nonlinear — Fortran would not allow one there anyway.
    """

    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class _BinOp(Expr):
    left: Expr
    right: Expr

    OP = "?"

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()

    def __str__(self) -> str:
        return f"({self.left} {self.OP} {self.right})"


class Add(_BinOp):
    """``left + right``."""

    __slots__ = ()
    OP = "+"


class Sub(_BinOp):
    """``left - right``."""

    __slots__ = ()
    OP = "-"


class Mul(_BinOp):
    """``left * right``."""

    __slots__ = ()
    OP = "*"


class Div(_BinOp):
    """``left / right`` — integer division; linear only when exact and by a constant."""

    __slots__ = ()
    OP = "/"


@dataclass(frozen=True, slots=True)
class Neg(Expr):
    """Unary minus."""

    operand: Expr

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.operand.walk()

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True, slots=True)
class IndexedLoad(Expr):
    """An array element used *inside an expression*, e.g. ``B(K(I))``.

    Subscripted loads appearing within a subscript make that subscript
    nonlinear (index arrays); as a right-hand-side value they are simply a
    read reference, collected by the IR walker.
    """

    array: str
    subscripts: Tuple[Expr, ...]

    def walk(self) -> Iterator[Expr]:
        yield self
        for sub in self.subscripts:
            yield from sub.walk()

    def __str__(self) -> str:
        inner = ", ".join(str(s) for s in self.subscripts)
        return f"{self.array}({inner})"


@dataclass(frozen=True, slots=True)
class Opaque(Expr):
    """A value the analyses must not reason about.

    The scalar-substitution prepass wraps loop-variant scalars that survive
    into array subscripts: treating such a scalar as an ordinary symbol
    would let the ZIV/SIV tests assume it is loop-invariant, which is
    unsound.  ``to_linear`` rejects the node, so classification lands on
    NONLINEAR and the driver stays conservative.
    """

    name: str

    def __str__(self) -> str:
        return f"{self.name}?"


@dataclass(frozen=True, slots=True)
class Call(Expr):
    """An intrinsic or external function call, e.g. ``SQRT(X)``, ``MOD(I,2)``.

    Calls are opaque to dependence testing; a subscript containing one is
    nonlinear.
    """

    name: str
    args: Tuple[Expr, ...]

    def walk(self) -> Iterator[Expr]:
        yield self
        for arg in self.args:
            yield from arg.walk()

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}({inner})"


def to_linear(expr: Expr) -> LinearExpr:
    """Normalize a surface tree to an affine :class:`LinearExpr`.

    Raises :class:`NonlinearExpressionError` for products of variables,
    non-exact division, indexed loads, and calls.
    """
    if isinstance(expr, Const):
        return LinearExpr.constant(expr.value)
    if isinstance(expr, Var):
        return LinearExpr.var(expr.name)
    if isinstance(expr, Add):
        return to_linear(expr.left) + to_linear(expr.right)
    if isinstance(expr, Sub):
        return to_linear(expr.left) - to_linear(expr.right)
    if isinstance(expr, Neg):
        return -to_linear(expr.operand)
    if isinstance(expr, Mul):
        return to_linear(expr.left) * to_linear(expr.right)
    if isinstance(expr, Div):
        left = to_linear(expr.left)
        right = to_linear(expr.right)
        if not right.is_constant():
            raise NonlinearExpressionError(f"division by non-constant in {expr}")
        divisor = right.constant_value()
        if divisor == 0:
            raise NonlinearExpressionError(f"division by zero in {expr}")
        try:
            return left.exact_div(divisor)
        except ValueError as exc:
            raise NonlinearExpressionError(f"non-exact division in {expr}") from exc
    if isinstance(expr, (IndexedLoad, Call, RealConst, Opaque)):
        raise NonlinearExpressionError(f"{expr} is not an affine expression")
    raise TypeError(f"unknown expression node {expr!r}")


def from_linear(linear: LinearExpr) -> Expr:
    """Rebuild a surface tree from a :class:`LinearExpr` (for printing)."""
    result: Expr = Const(linear.const)
    started = linear.const != 0
    for name, coeff in linear.terms:
        term: Expr = Var(name) if coeff == 1 else Mul(Const(coeff), Var(name))
        if not started:
            result = term
            started = True
        else:
            result = Add(result, term)
    if not started:
        return Const(0)
    return result
