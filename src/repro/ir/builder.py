"""A small Python DSL for building loop nests in tests and examples.

Expressions and references may be given as strings in Fortran syntax (parsed
by the :mod:`repro.fortran` front end) or as :mod:`repro.ir.expr` objects::

    b = NestBuilder()
    with b.loop("i", 1, "n"):
        with b.loop("j", 1, "i"):
            b.assign("a(i, j)", "a(i-1, j) + a(i, j-1)")
    nest = b.build()

The builder exists so that unit tests and worked paper examples do not have
to round-trip through full source files.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Union

from repro.ir.expr import Expr, as_expr
from repro.ir.loop import ArrayRef, Assign, Conditional, Loop, Node, ScalarRef, Ref
from repro.ir.program import Program, Routine

ExprInput = Union[Expr, int, str]
RefInput = Union[ArrayRef, ScalarRef, str]


def parse_expr(text: str) -> Expr:
    """Parse a Fortran-syntax expression string."""
    from repro.fortran.parser import parse_expression

    return parse_expression(text)


def parse_ref(text: str) -> Ref:
    """Parse a Fortran-syntax reference such as ``a(i, j+1)`` or ``x``."""
    from repro.fortran.parser import parse_reference

    return parse_reference(text)


def _coerce_expr(value: ExprInput) -> Expr:
    if isinstance(value, str) and not value.isidentifier():
        return parse_expr(value)
    return as_expr(value)


def _coerce_ref(value: RefInput) -> Ref:
    if isinstance(value, (ArrayRef, ScalarRef)):
        return value
    if isinstance(value, str):
        if "(" in value:
            return parse_ref(value)
        return ScalarRef(value.strip().lower())
    raise TypeError(f"cannot interpret {value!r} as a reference")


class NestBuilder:
    """Accumulates loops and statements through nested ``with`` blocks."""

    def __init__(self) -> None:
        self._root: List[Node] = []
        self._stack: List[List[Node]] = [self._root]

    @contextmanager
    def loop(
        self,
        index: str,
        lower: ExprInput,
        upper: ExprInput,
        step: int = 1,
        label: Optional[str] = None,
    ) -> Iterator[Loop]:
        """Open a ``DO index = lower, upper [, step]`` region."""
        node = Loop(
            index.lower(),
            _coerce_expr(lower),
            _coerce_expr(upper),
            step,
            [],
            label,
        )
        self._stack[-1].append(node)
        self._stack.append(node.body)
        try:
            yield node
        finally:
            self._stack.pop()

    @contextmanager
    def conditional(self, condition: str) -> Iterator[Conditional]:
        """Open an ``IF (condition) THEN`` region."""
        node = Conditional(condition, [])
        self._stack[-1].append(node)
        self._stack.append(node.body)
        try:
            yield node
        finally:
            self._stack.pop()

    def assign(self, lhs: RefInput, rhs: ExprInput, label: Optional[str] = None) -> Assign:
        """Append an assignment to the current region."""
        if isinstance(rhs, str):
            rhs_expr = parse_expr(rhs)
        else:
            rhs_expr = as_expr(rhs)
        stmt = Assign(_coerce_ref(lhs), rhs_expr, label)
        self._stack[-1].append(stmt)
        return stmt

    def build(self) -> List[Node]:
        """The accumulated top-level node list."""
        if len(self._stack) != 1:
            raise RuntimeError("build() called with unclosed loop regions")
        return self._root

    def build_routine(self, name: str = "main") -> Routine:
        """Wrap the accumulated nodes in a routine."""
        return Routine(name, self.build())

    def build_program(self, name: str = "main", suite: Optional[str] = None) -> Program:
        """Wrap the accumulated nodes in a single-routine program."""
        return Program(name, [self.build_routine(name)], suite)


def single_nest(source: str) -> List[Node]:
    """Parse a source fragment (one or more statements) into IR nodes.

    Convenience wrapper around the Fortran parser for doctests and unit
    tests.
    """
    from repro.fortran.parser import parse_fragment

    return parse_fragment(source)
