"""Scalar forward substitution and auxiliary induction-variable removal.

The paper's Section 1.5 assumes a prepass: "all auxiliary induction
variables have been detected and replaced by linear functions of the loop
indices" (citing [2, 3, 5, 52]).  Real Fortran kernels need it constantly —
LINPACK's ``dgefa`` writes ``kp1 = k + 1`` and subscripts with ``kp1``;
integral transforms keep a running offset ``ij = ij + n``.  Without the
pass those subscripts look like opaque symbols and dependence testing
degrades.

Two transformations, applied together by :func:`substitute_scalars`:

* **forward substitution** — a scalar assigned an affine expression of
  enclosing loop indices / symbols is replaced at its uses (flow-sensitive
  along straight-line order; invalidated on reassignment or at a loop
  boundary when redefined inside the loop);
* **auxiliary induction variables** — a scalar updated as ``s = s + c``
  (constant ``c``) once per iteration of loop ``i`` becomes the linear
  function ``s0 + c*(i - L)`` before the update and ``s0 + c*(i - L + 1)``
  after it, where ``s0`` is the scalar's (affine or opaque-symbolic) value
  at loop entry; after the loop the closed form ``s0 + c*(U - L + 1)``
  is used when the trip count is affine.

The pass is conservative: anything it cannot prove affine stays untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ir.expr import (
    Add,
    Call,
    Const,
    Div,
    Expr,
    IndexedLoad,
    Mul,
    Neg,
    Opaque,
    RealConst,
    Sub,
    Var,
    to_linear,
)
from repro.ir.loop import ArrayRef, Assign, Conditional, Loop, Node, ScalarRef
from repro.ir.program import Program, Routine
from repro.symbolic.linexpr import LinearExpr, NonlinearExpressionError


@dataclass
class _Env:
    """Known affine values of scalars at the current program point.

    ``variant`` holds scalars assigned inside some enclosing loop whose
    value could not be expressed as a linear function of the indices: an
    expression referencing one of those is *not* loop-invariant, so it
    must never be recorded as a substitutable value (doing so would make
    the dependence analysis treat a changing quantity as a constant).
    """

    values: Dict[str, Expr] = field(default_factory=dict)
    variant: Set[str] = field(default_factory=set)

    def copy(self) -> "_Env":
        return _Env(dict(self.values), set(self.variant))

    def kill(self, name: str) -> None:
        self.values.pop(name, None)

    def record(self, name: str, value: Expr) -> None:
        """Record a substitutable value unless it references variant state."""
        if value.variables() & self.variant:
            self.kill(name)
        else:
            self.values[name] = value


def substitute_scalars(body: Sequence[Node]) -> List[Node]:
    """Run the pass over a statement list, returning rewritten nodes.

    Scalar assignments that were fully substituted away are *kept* (they
    may still be live after the region — we only rewrite uses), but their
    right-hand sides are simplified through the environment too.
    """
    env = _Env()
    return _rewrite_body(list(body), env)


def substitute_scalars_program(program: Program) -> Program:
    """Apply the pass to every routine of a program."""
    routines = [
        Routine(r.name, substitute_scalars(r.body), r.source_lines)
        for r in program.routines
    ]
    return Program(program.name, routines, program.suite)


# ---------------------------------------------------------------------------


def _rewrite_body(body: List[Node], env: _Env) -> List[Node]:
    result: List[Node] = []
    for node in body:
        if isinstance(node, Assign):
            result.append(_rewrite_assign(node, env))
        elif isinstance(node, Conditional):
            # Both arms may or may not run: rewrite the body against a copy
            # and kill everything the body assigns from the outer env.
            inner = _rewrite_body(list(node.body), env.copy())
            for name in _assigned_scalars(node.body):
                env.kill(name)
            result.append(Conditional(node.condition, inner))
        elif isinstance(node, Loop):
            result.append(_rewrite_loop(node, env))
        else:
            raise TypeError(f"unknown node {node!r}")
    return result


def _rewrite_assign(stmt: Assign, env: _Env) -> Assign:
    rhs = _apply_env(stmt.rhs, env)
    if isinstance(stmt.lhs, ArrayRef):
        lhs: object = ArrayRef(
            stmt.lhs.array,
            tuple(_apply_env(s, env, True) for s in stmt.lhs.subscripts),
        )
        rewritten = Assign(lhs, rhs, stmt.label)
        return rewritten
    # Scalar assignment: record when affine, else kill.
    name = stmt.lhs.name
    if _is_affine(rhs):
        env.record(name, rhs)
    else:
        env.kill(name)
    return Assign(ScalarRef(name), rhs, stmt.label)


def _rewrite_loop(loop: Loop, env: _Env) -> Loop:
    lower = _apply_env(loop.lower, env)
    upper = _apply_env(loop.upper, env)
    assigned = _assigned_scalars(loop.body)
    inductions = _find_inductions(loop, assigned, env)
    body_env = env.copy()
    for name in assigned:
        body_env.kill(name)
        if name not in inductions:
            body_env.variant.add(name)
    # Seed induction variables with their pre-update linear form.
    for name, (entry, step) in inductions.items():
        body_env.values[name] = _iv_value(name, entry, step, loop, offset=0)
    new_body = _rewrite_iv_body(list(loop.body), body_env, inductions, loop)
    # After the loop: killed scalars stay killed; induction variables get
    # their closed form when the trip count is affine.
    for name in assigned:
        env.kill(name)
    for name, (entry, step) in inductions.items():
        closed = _iv_exit_value(entry, step, lower, upper)
        if closed is not None:
            env.values[name] = closed
    return Loop(loop.index, lower, upper, loop.step, new_body, loop.label)


def _rewrite_iv_body(
    body: List[Node],
    env: _Env,
    inductions: Dict[str, Tuple[Expr, int]],
    loop: Loop,
) -> List[Node]:
    """Rewrite a loop body, switching IVs to post-update form at the update."""
    result: List[Node] = []
    for node in body:
        if (
            isinstance(node, Assign)
            and isinstance(node.lhs, ScalarRef)
            and node.lhs.name in inductions
        ):
            name = node.lhs.name
            entry, step = inductions[name]
            # Keep the update statement (the scalar may be live after the
            # loop) but flip subsequent uses to the post-update form.
            rhs = _apply_env(node.rhs, env)
            result.append(Assign(ScalarRef(name), rhs, node.label))
            env.values[name] = _iv_value(name, entry, step, loop, offset=1)
        elif isinstance(node, Assign):
            result.append(_rewrite_assign(node, env))
        elif isinstance(node, Conditional):
            inner = _rewrite_body(list(node.body), env.copy())
            for scalar in _assigned_scalars(node.body):
                env.kill(scalar)
            result.append(Conditional(node.condition, inner))
        elif isinstance(node, Loop):
            result.append(_rewrite_loop(node, env))
        else:
            raise TypeError(f"unknown node {node!r}")
    return result


# ---------------------------------------------------------------------------


def _find_inductions(
    loop: Loop, assigned: Set[str], env: _Env
) -> Dict[str, Tuple[Expr, int]]:
    """Auxiliary induction variables of one loop: name -> (entry value, step).

    Recognized pattern: exactly one top-level ``s = s + c`` (or ``s = s - c``)
    update in the loop body, no other assignment to ``s`` anywhere in the
    loop, and ``s`` not assigned inside conditionals or inner loops.  The
    entry value is the environment's affine value when known, else the
    scalar's own name standing for its (loop-invariant) entry value.
    """
    updates: Dict[str, List[int]] = {}
    for node in loop.body:
        if isinstance(node, Assign) and isinstance(node.lhs, ScalarRef):
            step = _self_increment(node.lhs.name, node.rhs)
            if step is not None:
                updates.setdefault(node.lhs.name, []).append(step)
    nested_assigned: Set[str] = set()
    for node in loop.body:
        if isinstance(node, (Loop, Conditional)):
            nested_assigned |= _assigned_scalars(node.body)
    inductions: Dict[str, Tuple[Expr, int]] = {}
    for name, steps in updates.items():
        if len(steps) != 1 or name in nested_assigned:
            continue
        top_level_writes = sum(
            1
            for node in loop.body
            if isinstance(node, Assign)
            and isinstance(node.lhs, ScalarRef)
            and node.lhs.name == name
        )
        if top_level_writes != 1:
            continue
        if name == loop.index:
            continue
        if name in env.variant:
            # The entry value itself changes across an enclosing loop's
            # iterations; naming it symbolically would freeze it.
            continue
        entry = env.values.get(name, Var(name))
        if loop.index in entry.variables() or (entry.variables() & env.variant):
            continue  # entry value must be loop-invariant
        inductions[name] = (entry, steps[0])
    return inductions


def _self_increment(name: str, rhs: Expr) -> Optional[int]:
    """The constant c when ``rhs == name + c`` (affine check), else None."""
    try:
        linear = to_linear(rhs)
    except NonlinearExpressionError:
        return None
    if linear.coeff(name) != 1:
        return None
    remainder = linear - LinearExpr.var(name)
    if remainder.is_constant():
        return remainder.constant_value()
    return None


def _iv_value(
    name: str, entry: Expr, step: int, loop: Loop, offset: int
) -> Expr:
    """``entry + step * (i - lower + offset)`` as a surface expression."""
    iterations: Expr = Sub(Var(loop.index), loop.lower)
    if offset:
        iterations = Add(iterations, Const(offset))
    return Add(entry, Mul(Const(step), iterations))


def _iv_exit_value(
    entry: Expr, step: int, lower: Expr, upper: Expr
) -> Optional[Expr]:
    """Closed form after the loop: ``entry + step * (upper - lower + 1)``.

    Only valid when the loop executes its full count; conservatively
    requires affine bounds (DO semantics guarantee trip = max(0, U-L+1),
    and for U < L the corpus loops simply don't run — accepting the
    closed form matches Fortran DO-variable semantics for executed loops
    and is how PFC's prepass behaves)."""
    for bound in (lower, upper):
        if not _is_affine(bound):
            return None
    trip = Add(Sub(upper, lower), Const(1))
    return Add(entry, Mul(Const(step), trip))


def _assigned_scalars(body: Sequence[Node]) -> Set[str]:
    names: Set[str] = set()
    for node in body:
        if isinstance(node, Assign) and isinstance(node.lhs, ScalarRef):
            names.add(node.lhs.name)
        elif isinstance(node, (Loop, Conditional)):
            names |= _assigned_scalars(node.body)
    return names


def _is_affine(expr: Expr) -> bool:
    try:
        to_linear(expr)
    except NonlinearExpressionError:
        return False
    return True


def _apply_env(expr: Expr, env: _Env, in_subscript: bool = False) -> Expr:
    """Substitute known scalar values into an expression tree.

    Inside array subscripts (``in_subscript``), a surviving loop-variant
    scalar is wrapped in :class:`Opaque` so downstream classification
    treats the subscript as nonlinear rather than as a loop-invariant
    symbol (which would be unsound).
    """
    if isinstance(expr, (Const, RealConst, Opaque)):
        return expr
    if isinstance(expr, Var):
        replacement = env.values.get(expr.name)
        if replacement is not None:
            return replacement
        if in_subscript and expr.name in env.variant:
            return Opaque(expr.name)
        return expr
    if isinstance(expr, Add):
        return Add(
            _apply_env(expr.left, env, in_subscript),
            _apply_env(expr.right, env, in_subscript),
        )
    if isinstance(expr, Sub):
        return Sub(
            _apply_env(expr.left, env, in_subscript),
            _apply_env(expr.right, env, in_subscript),
        )
    if isinstance(expr, Mul):
        return Mul(
            _apply_env(expr.left, env, in_subscript),
            _apply_env(expr.right, env, in_subscript),
        )
    if isinstance(expr, Div):
        return Div(
            _apply_env(expr.left, env, in_subscript),
            _apply_env(expr.right, env, in_subscript),
        )
    if isinstance(expr, Neg):
        return Neg(_apply_env(expr.operand, env, in_subscript))
    if isinstance(expr, IndexedLoad):
        return IndexedLoad(
            expr.array,
            tuple(_apply_env(s, env, True) for s in expr.subscripts),
        )
    if isinstance(expr, Call):
        return Call(
            expr.name, tuple(_apply_env(a, env, in_subscript) for a in expr.args)
        )
    raise TypeError(f"unknown expression {expr!r}")
