"""Loop-nest intermediate representation.

The IR models the Fortran subset the paper's study runs over: nests of
``DO`` loops with affine bounds (possibly referencing outer loop indices —
*triangular* nests — and loop-invariant symbols), containing assignment
statements whose operands are scalar or subscripted array references.

Control flow other than loops (IF bodies) is modelled by
:class:`Conditional`, which dependence testing treats conservatively: its
statements are analyzed exactly like unconditional ones (the paper's tests
do not exploit execution conditions; see its Section 7 discussion of the
All-Equals and subdomain tests).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.ir.expr import Expr, IndexedLoad, Var, as_expr

_stmt_counter = itertools.count(1)
_loop_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class ArrayRef:
    """A subscripted reference ``array(sub1, sub2, ...)``."""

    array: str
    subscripts: Tuple[Expr, ...]

    @property
    def ndim(self) -> int:
        """Number of subscript positions."""
        return len(self.subscripts)

    def __str__(self) -> str:
        inner = ", ".join(str(s) for s in self.subscripts)
        return f"{self.array}({inner})"


@dataclass(frozen=True, slots=True)
class ScalarRef:
    """A reference to an unsubscripted variable."""

    name: str

    def __str__(self) -> str:
        return self.name


Ref = Union[ArrayRef, ScalarRef]


class Stmt:
    """Base class for statements appearing in a loop body."""

    __slots__ = ()


@dataclass
class Assign(Stmt):
    """An assignment ``lhs = rhs``.

    ``writes`` and ``reads`` are derived views: the single written reference
    and all read references (array loads in ``rhs`` plus, for subscripted
    stores, the loads inside the LHS subscripts).
    """

    lhs: Ref
    rhs: Expr
    label: Optional[str] = None
    stmt_id: int = field(default_factory=lambda: next(_stmt_counter))

    @property
    def writes(self) -> Tuple[Ref, ...]:
        return (self.lhs,)

    @property
    def reads(self) -> Tuple[Ref, ...]:
        # Cached on first access: the view is pure derived data, and stable
        # reference identity lets the engine's prepared-pair memo recognize
        # a statement across repeated walks of the same tree.
        cached = getattr(self, "_reads", None)
        if cached is not None:
            return cached
        loads: List[Ref] = []
        for node in self.rhs.walk():
            if isinstance(node, IndexedLoad):
                loads.append(ArrayRef(node.array, node.subscripts))
            elif isinstance(node, Var):
                loads.append(ScalarRef(node.name))
        if isinstance(self.lhs, ArrayRef):
            for sub in self.lhs.subscripts:
                for node in sub.walk():
                    if isinstance(node, IndexedLoad):
                        loads.append(ArrayRef(node.array, node.subscripts))
        self._reads = cached = tuple(loads)
        return cached

    def __str__(self) -> str:
        return f"{self.lhs} = {self.rhs}"


@dataclass
class Conditional(Stmt):
    """An ``IF (cond) THEN ... ENDIF`` region (condition kept as opaque text)."""

    condition: str
    body: List["Node"] = field(default_factory=list)
    stmt_id: int = field(default_factory=lambda: next(_stmt_counter))

    def __str__(self) -> str:
        return f"IF ({self.condition}) ..."


@dataclass
class Loop:
    """A ``DO`` loop: ``DO index = lower, upper [, step]``.

    Bounds are surface expressions; they must normalize to affine forms over
    outer loop indices and symbols for the dependence tests to use them
    (non-affine bounds degrade to unknown ranges).  ``step`` must be a
    nonzero integer constant; non-unit steps are removed by
    :mod:`repro.ir.normalize` before analysis.
    """

    index: str
    lower: Expr
    upper: Expr
    step: int = 1
    body: List["Node"] = field(default_factory=list)
    label: Optional[str] = None
    #: Stable per-construction serial used by :func:`repro.graph.loop_key`.
    #: Unlike ``id()`` it is ordinary data, so it survives pickling — results
    #: computed in a worker process still key to the parent's loop objects.
    uid: int = field(
        default_factory=lambda: next(_loop_counter), compare=False, repr=False
    )

    def __post_init__(self) -> None:
        self.lower = as_expr(self.lower)
        self.upper = as_expr(self.upper)
        if self.step == 0:
            raise ValueError(f"loop {self.index} has zero step")

    def __str__(self) -> str:
        step = f", {self.step}" if self.step != 1 else ""
        return f"DO {self.index} = {self.lower}, {self.upper}{step}"


Node = Union[Loop, Stmt]


@dataclass
class AccessSite:
    """One static occurrence of an array reference with its loop context.

    ``loops`` is the stack of enclosing loops, outermost first; ``is_write``
    distinguishes stores from loads.  Dependence testing pairs up sites of
    the same array.
    """

    ref: ArrayRef
    stmt: Assign
    loops: Tuple[Loop, ...]
    is_write: bool
    position: int

    @property
    def indices(self) -> Tuple[str, ...]:
        """Enclosing loop indices, outermost first."""
        return tuple(loop.index for loop in self.loops)

    def __str__(self) -> str:
        mode = "write" if self.is_write else "read"
        return f"{self.ref} [{mode} in S{self.stmt.stmt_id}]"


def walk_nodes(body: Sequence[Node]) -> Iterator[Tuple[Tuple[Loop, ...], Stmt]]:
    """Yield ``(loop stack, statement)`` for every statement, in source order."""

    def _walk(items: Sequence[Node], stack: Tuple[Loop, ...]) -> Iterator[Tuple[Tuple[Loop, ...], Stmt]]:
        for item in items:
            if isinstance(item, Loop):
                yield from _walk(item.body, stack + (item,))
            elif isinstance(item, Conditional):
                yield from _walk(item.body, stack)
            else:
                yield (stack, item)

    yield from _walk(body, ())


def collect_access_sites(body: Sequence[Node]) -> List[AccessSite]:
    """All array access sites in a body, in execution/position order.

    Within a statement the reads are listed *before* the write, matching
    execution order (the right-hand side is evaluated first); position
    order therefore encodes "executes no later than" for loop-independent
    dependences.  Scalar references are skipped: the paper's study concerns
    subscripted variables (scalars are handled by classic scalar data-flow
    analysis).
    """
    sites: List[AccessSite] = []
    position = 0
    for stack, stmt in walk_nodes(body):
        if not isinstance(stmt, Assign):
            continue
        for read in stmt.reads:
            if isinstance(read, ArrayRef):
                sites.append(AccessSite(read, stmt, stack, False, position))
                position += 1
        if isinstance(stmt.lhs, ArrayRef):
            sites.append(AccessSite(stmt.lhs, stmt, stack, True, position))
            position += 1
    return sites


def loops_in(body: Sequence[Node]) -> Iterator[Loop]:
    """Yield every loop in the body, outer loops before their contents."""
    for item in body:
        if isinstance(item, Loop):
            yield item
            yield from loops_in(item.body)
        elif isinstance(item, Conditional):
            yield from loops_in(item.body)


def common_loops(a: AccessSite, b: AccessSite) -> Tuple[Loop, ...]:
    """The shared enclosing loops of two sites (longest common prefix)."""
    shared: List[Loop] = []
    for loop_a, loop_b in zip(a.loops, b.loops):
        if loop_a is loop_b:
            shared.append(loop_a)
        else:
            break
    return tuple(shared)


def format_body(body: Sequence[Node], indent: int = 0) -> str:
    """Pretty-print a body as indented pseudo-Fortran (for reports/examples)."""
    lines: List[str] = []
    pad = "  " * indent
    for item in body:
        if isinstance(item, Loop):
            lines.append(f"{pad}{item}")
            lines.append(format_body(item.body, indent + 1))
            lines.append(f"{pad}ENDDO")
        elif isinstance(item, Conditional):
            lines.append(f"{pad}IF ({item.condition}) THEN")
            lines.append(format_body(item.body, indent + 1))
            lines.append(f"{pad}ENDIF")
        else:
            lines.append(f"{pad}{item}")
    return "\n".join(line for line in lines if line)
