"""Loop-nest intermediate representation.

The IR is deliberately small: ``DO`` loops with affine bounds, assignments
over scalar and array references, and opaque conditionals.  This is exactly
the program fragment class the paper's dependence tests read — everything
else in a real Fortran program is irrelevant to subscript analysis.
"""

from repro.ir.expr import (
    Add,
    Call,
    Const,
    Div,
    Expr,
    IndexedLoad,
    Mul,
    Neg,
    Sub,
    Var,
    as_expr,
    from_linear,
    to_linear,
)
from repro.ir.loop import (
    AccessSite,
    ArrayRef,
    Assign,
    Conditional,
    Loop,
    Node,
    Ref,
    ScalarRef,
    Stmt,
    collect_access_sites,
    common_loops,
    format_body,
    loops_in,
    walk_nodes,
)
from repro.ir.context import LoopContext, SymbolEnv, cached_loop_context, eval_interval
from repro.ir.program import Program, Routine
from repro.ir.builder import NestBuilder, single_nest
from repro.ir.normalize import normalize_program, normalize_steps
from repro.ir.scalars import substitute_scalars, substitute_scalars_program

__all__ = [
    "Add",
    "Call",
    "Const",
    "Div",
    "Expr",
    "IndexedLoad",
    "Mul",
    "Neg",
    "Sub",
    "Var",
    "as_expr",
    "from_linear",
    "to_linear",
    "AccessSite",
    "ArrayRef",
    "Assign",
    "Conditional",
    "Loop",
    "Node",
    "Ref",
    "ScalarRef",
    "Stmt",
    "collect_access_sites",
    "common_loops",
    "format_body",
    "loops_in",
    "walk_nodes",
    "LoopContext",
    "SymbolEnv",
    "cached_loop_context",
    "eval_interval",
    "Program",
    "Routine",
    "NestBuilder",
    "single_nest",
    "normalize_program",
    "normalize_steps",
    "substitute_scalars",
    "substitute_scalars_program",
]
