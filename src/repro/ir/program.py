"""Programs and routines: the unit the empirical study iterates over.

The paper's Table 1 reports per-program statistics (lines, number of
subroutines, subscript complexity); a :class:`Program` groups the parsed
routines of one benchmark and remembers enough metadata to regenerate that
table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.ir.loop import AccessSite, Loop, Node, collect_access_sites, loops_in


@dataclass
class Routine:
    """A subroutine/function body: a list of top-level nodes."""

    name: str
    body: List[Node] = field(default_factory=list)
    source_lines: int = 0

    def access_sites(self) -> List[AccessSite]:
        """All array access sites in this routine."""
        return collect_access_sites(self.body)

    def loops(self) -> List[Loop]:
        """All loops, outer before inner."""
        return list(loops_in(self.body))

    def __str__(self) -> str:
        return f"Routine {self.name} ({len(self.body)} top-level nodes)"


@dataclass
class Program:
    """A named collection of routines (one benchmark program or library)."""

    name: str
    routines: List[Routine] = field(default_factory=list)
    suite: Optional[str] = None

    @property
    def source_lines(self) -> int:
        """Total source lines across routines."""
        return sum(routine.source_lines for routine in self.routines)

    def access_sites(self) -> Iterator[Tuple[Routine, AccessSite]]:
        """All array access sites paired with their routine."""
        for routine in self.routines:
            for site in routine.access_sites():
                yield routine, site

    def __str__(self) -> str:
        return f"Program {self.name}: {len(self.routines)} routines"
