"""Loop contexts: index ranges, trip spans, and symbol environments.

This module implements the index-range algorithm of Section 4.3 of the
paper: for loop nests whose bounds reference outer loop indices (triangular
or trapezoidal nests), compute the *maximal* constant range of each index by
substituting the ranges of outer indices into the bound expressions,
outermost-in.  The resulting ranges are all the SIV tests need; Banerjee's
inequalities also consume them (the "triangular Banerjee" enhancement).

Symbolic loop bounds (``N``, ``M``) evaluate through a :class:`SymbolEnv`,
which records any known facts about symbols (e.g. ``N >= 1``).  Unknown
symbols yield unbounded ranges, keeping every test conservative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.ir.expr import to_linear
from repro.ir.loop import Loop
from repro.symbolic.linexpr import LinearExpr, NonlinearExpressionError
from repro.symbolic.ranges import Interval, NEG_INF, POS_INF


@dataclass
class SymbolEnv:
    """Known ranges for loop-invariant symbols.

    The default environment knows nothing: every symbol ranges over the whole
    line.  Callers may assert facts such as ``N in [1, +inf)`` — the corpus
    study asserts lower bounds of 1 for size symbols, matching the paper's
    implicit assumption that loops execute at least once.
    """

    ranges: Dict[str, Interval] = field(default_factory=dict)

    def range_of(self, name: str) -> Interval:
        """The known range of ``name`` (unbounded when unknown)."""
        return self.ranges.get(name, Interval.unbounded())

    def assume(self, name: str, lo=NEG_INF, hi=POS_INF) -> "SymbolEnv":
        """Return a new environment with an added assumption."""
        updated = dict(self.ranges)
        updated[name] = updated.get(name, Interval.unbounded()).intersect(
            Interval(lo, hi)
        )
        return SymbolEnv(updated)


def eval_interval(expr: LinearExpr, env: Mapping[str, Interval]) -> Interval:
    """Interval evaluation of an affine form under per-variable ranges."""
    result = Interval.point(expr.const)
    for name, coeff in expr.terms:
        var_range = env.get(name, Interval.unbounded())
        result = result + var_range.scale(coeff)
    return result


class LoopContext:
    """The enclosing loops shared by a reference pair, plus symbol knowledge.

    Provides the per-index maximal ranges (Section 4.3), the trip span
    ``U - L`` used by the strong SIV test, and nesting levels for
    direction-vector construction.  Ranges are computed once at
    construction.
    """

    def __init__(self, loops: Sequence[Loop], symbols: Optional[SymbolEnv] = None):
        self.loops: Tuple[Loop, ...] = tuple(loops)
        self.symbols = symbols or SymbolEnv()
        self._levels: Dict[str, int] = {}
        self._ranges: Dict[str, Interval] = {}
        self._lower: Dict[str, Optional[LinearExpr]] = {}
        self._upper: Dict[str, Optional[LinearExpr]] = {}
        self._trip_span: Dict[str, Interval] = {}
        self._compute()

    # ------------------------------------------------------------------

    def _compute(self) -> None:
        env: Dict[str, Interval] = dict(self.symbols.ranges)
        for level, loop in enumerate(self.loops, start=1):
            if loop.step != 1:
                raise ValueError(
                    f"loop {loop.index} has step {loop.step}; run "
                    "repro.ir.normalize.normalize_steps first"
                )
            self._levels[loop.index] = level
            lower = _linear_or_none(loop.lower)
            upper = _linear_or_none(loop.upper)
            self._lower[loop.index] = lower
            self._upper[loop.index] = upper
            lo_iv = eval_interval(lower, env) if lower is not None else Interval.unbounded()
            hi_iv = eval_interval(upper, env) if upper is not None else Interval.unbounded()
            index_range = Interval(lo_iv.lo, hi_iv.hi)
            self._ranges[loop.index] = index_range
            env[loop.index] = index_range
            if lower is not None and upper is not None:
                self._trip_span[loop.index] = eval_interval(upper - lower, env)
            else:
                self._trip_span[loop.index] = Interval.unbounded()

    # ------------------------------------------------------------------

    @property
    def indices(self) -> Tuple[str, ...]:
        """Loop index names, outermost first."""
        return tuple(loop.index for loop in self.loops)

    @property
    def depth(self) -> int:
        """Number of loops in the context."""
        return len(self.loops)

    def level(self, index: str) -> int:
        """1-based nesting level of ``index`` (1 = outermost)."""
        return self._levels[index]

    def index_range(self, index: str) -> Interval:
        """Maximal constant range of ``index`` per the Section 4.3 algorithm."""
        return self._ranges[index]

    def index_ranges(self) -> Dict[str, Interval]:
        """Copy of the full index-range map."""
        return dict(self._ranges)

    def lower_expr(self, index: str) -> Optional[LinearExpr]:
        """Affine lower bound of ``index`` (None when non-affine)."""
        return self._lower[index]

    def upper_expr(self, index: str) -> Optional[LinearExpr]:
        """Affine upper bound of ``index`` (None when non-affine)."""
        return self._upper[index]

    def trip_span(self, index: str) -> Interval:
        """Range of ``U - L`` for the loop on ``index``.

        The strong SIV test proves independence when ``|d| > U - L``; with a
        triangular or symbolic bound this is an interval and the test uses
        its maximum (conservative).
        """
        return self._trip_span[index]

    def variable_env(self) -> Dict[str, Interval]:
        """Ranges for *all* variables: indices plus known symbols."""
        env = dict(self.symbols.ranges)
        env.update(self._ranges)
        return env

    def is_index(self, name: str) -> bool:
        """True when ``name`` is one of this context's loop indices."""
        return name in self._levels

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{loop.index}=[{loop.lower}..{loop.upper}]" for loop in self.loops
        )
        return f"LoopContext({inner})"


def _linear_or_none(expr) -> Optional[LinearExpr]:
    try:
        return to_linear(expr)
    except NonlinearExpressionError:
        return None


_CONTEXT_CACHE: Dict[Tuple[Tuple[int, ...], int], LoopContext] = {}


def cached_loop_context(
    loops: Sequence[Loop], symbols: Optional[SymbolEnv] = None
) -> LoopContext:
    """Memoized :class:`LoopContext` construction.

    Dependence testing builds a context per reference pair, but the pairs
    of one routine share a handful of loop stacks; caching by loop-object
    identity (stacks are stable tuples of the parsed IR) makes whole-corpus
    analysis noticeably faster.  The cache is bounded and cleared wholesale
    when full — contexts are cheap to rebuild.
    """
    key = (tuple(id(loop) for loop in loops), id(symbols))
    context = _CONTEXT_CACHE.get(key)
    if context is None:
        if len(_CONTEXT_CACHE) > 4096:
            _CONTEXT_CACHE.clear()
        context = LoopContext(loops, symbols)
        _CONTEXT_CACHE[key] = context
    return context
