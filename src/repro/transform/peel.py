"""Loop peeling suggestions from weak-zero SIV dependences.

The weak-zero SIV test pins one endpoint of every dependence to a single
iteration; when that iteration is the loop's first or last, peeling it off
removes the carried dependence entirely (the paper's tomcatv example,
Section 4.2).  This module scans driver outcomes for those cases and emits
structured suggestions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.graph.depgraph import DependenceEdge, DependenceGraph, build_dependence_graph
from repro.ir.context import SymbolEnv
from repro.ir.loop import Loop, Node


@dataclass
class PeelSuggestion:
    """Peel one iteration (first or last) of a loop to break a dependence."""

    loop: Loop
    which: str  # "first" | "last"
    iteration: object  # int or symbolic LinearExpr
    edge: DependenceEdge

    def __str__(self) -> str:
        return (
            f"peel {self.which} iteration ({self.loop.index} = {self.iteration}) "
            f"of DO {self.loop.index} to eliminate {self.edge.dep_type} dependence "
            f"on {self.edge.source.ref.array}"
        )


def find_peeling_opportunities(
    nodes: Sequence[Node],
    symbols: Optional[SymbolEnv] = None,
    graph: Optional[DependenceGraph] = None,
) -> List[PeelSuggestion]:
    """Scan a statement list for weak-zero boundary dependences."""
    if graph is None:
        graph = build_dependence_graph(nodes, symbols=symbols)
    suggestions: List[PeelSuggestion] = []
    for edge in graph.edges:
        for outcome in edge.result.outcomes:
            if outcome.test != "weak-zero-siv" or outcome.independent:
                continue
            which = outcome.notes.get("boundary")
            if which is None:
                continue
            for index in outcome.constraints:
                loop = edge.result.context.loop_for(index)
                if loop is not None:
                    suggestions.append(
                        PeelSuggestion(
                            loop, str(which), outcome.notes.get("zero_iteration"), edge
                        )
                    )
    return suggestions
