"""Allen-Kennedy layered vectorization over the dependence graph.

PFC — the system the paper's tests live in — is a vectorizer: its "layered
vectorization algorithm" (Section 8) walks the statement-level dependence
graph level by level, serializing the strongly connected components
(recurrences) and vectorizing everything acyclic.  This module implements
that codegen skeleton on top of :mod:`repro.graph`:

1. at loop level *k*, consider dependence edges among the statements that
   are loop-independent or carried at level >= k;
2. compute strongly connected components and process them in topological
   order (loop distribution);
3. a trivial SCC whose statement is nested at depth >= k vectorizes over
   all remaining levels (emitted as a ``FORALL``); a cycle keeps a serial
   ``DO`` at level k and recurses at level k+1.

The output is pseudo-Fortran-90 text; tests check which statements end up
vectorized vs serialized against hand-derived expectations for the classic
kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dirvec.vectors import carrier_level
from repro.graph.depgraph import DependenceGraph, build_dependence_graph
from repro.ir.context import SymbolEnv
from repro.ir.loop import Assign, Loop, Node, walk_nodes


@dataclass
class VectorizationReport:
    """Result of vectorizing one statement region."""

    lines: List[str]
    vectorized: Set[int] = field(default_factory=set)  # stmt ids
    serialized: Set[int] = field(default_factory=set)

    @property
    def text(self) -> str:
        return "\n".join(self.lines)

    def __str__(self) -> str:
        return self.text


@dataclass
class _StmtInfo:
    stmt: Assign
    loops: Tuple[Loop, ...]
    order: int


def vectorize(
    nodes: Sequence[Node],
    symbols: Optional[SymbolEnv] = None,
    graph: Optional[DependenceGraph] = None,
) -> VectorizationReport:
    """Run Allen-Kennedy codegen over a statement list."""
    if graph is None:
        graph = build_dependence_graph(nodes, symbols=symbols)
    infos: List[_StmtInfo] = []
    for order, (stack, stmt) in enumerate(walk_nodes(nodes)):
        if isinstance(stmt, Assign):
            infos.append(_StmtInfo(stmt, stack, order))
    # Statement-level edges: (src stmt id, sink stmt id, carried levels).
    edges: List[Tuple[int, int, Set[int]]] = []
    for edge in graph.edges:
        levels = {carrier_level(v) for v in edge.vectors}
        edges.append((edge.source.stmt.stmt_id, edge.sink.stmt.stmt_id, levels))
    report = VectorizationReport([])
    _codegen(infos, 1, edges, report, indent=0)
    return report


def _codegen(
    infos: List[_StmtInfo],
    level: int,
    edges: List[Tuple[int, int, Set[int]]],
    report: VectorizationReport,
    indent: int,
) -> None:
    pad = "  " * indent
    ids = {info.stmt.stmt_id for info in infos}
    # Edges still relevant at this level: loop independent (0) or carried
    # at level >= `level`, with both endpoints in the region.
    relevant = [
        (src, sink, levels)
        for src, sink, levels in edges
        if src in ids and sink in ids and any(l == 0 or l >= level for l in levels)
    ]
    components = _sccs(ids, relevant, infos)
    for component in components:
        members = [info for info in infos if info.stmt.stmt_id in component]
        members.sort(key=lambda info: info.order)
        cyclic = len(component) > 1 or _has_self_cycle(component, relevant, level)
        deep_enough = all(len(info.loops) >= level for info in members)
        if not cyclic and deep_enough:
            for info in members:
                _emit_vector(info, level, report, pad)
        elif not deep_enough and not cyclic:
            for info in members:
                report.lines.append(f"{pad}{info.stmt}")
        else:
            loop = members[0].loops[level - 1]
            report.serialized.update(info.stmt.stmt_id for info in members)
            report.lines.append(
                f"{pad}DO {loop.index} = {loop.lower}, {loop.upper}"
            )
            inner_edges = [
                (src, sink, {l for l in levels if l == 0 or l > level})
                for src, sink, levels in relevant
                if src in component and sink in component
            ]
            inner_edges = [e for e in inner_edges if e[2]]
            _codegen(members, level + 1, inner_edges, report, indent + 1)
            report.lines.append(f"{pad}ENDDO")


def _emit_vector(
    info: _StmtInfo, level: int, report: VectorizationReport, pad: str
) -> None:
    vector_loops = info.loops[level - 1 :]
    if vector_loops:
        ranges = ", ".join(
            f"{l.index} = {l.lower}:{l.upper}" for l in vector_loops
        )
        report.lines.append(f"{pad}FORALL ({ranges})  {info.stmt}")
        report.vectorized.add(info.stmt.stmt_id)
    else:
        report.lines.append(f"{pad}{info.stmt}")


def _has_self_cycle(
    component: Set[int],
    edges: List[Tuple[int, int, Set[int]]],
    level: int,
) -> bool:
    for src, sink, levels in edges:
        if src in component and sink in component and src == sink:
            if any(l >= level for l in levels if l != 0):
                return True
    return False


def _sccs(
    ids: Set[int],
    edges: List[Tuple[int, int, Set[int]]],
    infos: List[_StmtInfo],
) -> List[Set[int]]:
    """Strongly connected components in topological order.

    Uses networkx when available, else a small Tarjan implementation.
    Ties are broken by source order so output is deterministic.
    """
    order_of = {info.stmt.stmt_id: info.order for info in infos}
    try:
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(ids)
        graph.add_edges_from((src, sink) for src, sink, _ in edges)
        condensed = nx.condensation(graph)
        components = [
            set(condensed.nodes[node]["members"])
            for node in nx.topological_sort(condensed)
        ]
    except ImportError:  # pragma: no cover - networkx is normally present
        components = _tarjan(ids, edges)
    components.sort(key=lambda comp: min(order_of[i] for i in comp))
    return _stable_topo(components, edges)


def _stable_topo(
    components: List[Set[int]], edges: List[Tuple[int, int, Set[int]]]
) -> List[Set[int]]:
    index_of: Dict[int, int] = {}
    for position, component in enumerate(components):
        for member in component:
            index_of[member] = position
    successors: Dict[int, Set[int]] = {i: set() for i in range(len(components))}
    indegree = [0] * len(components)
    for src, sink, _ in edges:
        a, b = index_of[src], index_of[sink]
        if a != b and b not in successors[a]:
            successors[a].add(b)
            indegree[b] += 1
    ready = sorted(i for i in range(len(components)) if indegree[i] == 0)
    ordered: List[Set[int]] = []
    while ready:
        node = ready.pop(0)
        ordered.append(components[node])
        for succ in sorted(successors[node]):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
        ready.sort()
    return ordered


def _tarjan(
    ids: Set[int], edges: List[Tuple[int, int, Set[int]]]
) -> List[Set[int]]:
    adjacency: Dict[int, List[int]] = {i: [] for i in ids}
    for src, sink, _ in edges:
        adjacency[src].append(sink)
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    counter = [0]
    result: List[Set[int]] = []

    def strongconnect(node: int) -> None:
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in adjacency[node]:
            if succ not in index:
                strongconnect(succ)
                lowlink[node] = min(lowlink[node], lowlink[succ])
            elif succ in on_stack:
                lowlink[node] = min(lowlink[node], index[succ])
        if lowlink[node] == index[node]:
            component = set()
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.add(member)
                if member == node:
                    break
            result.append(component)

    for node in sorted(ids):
        if node not in index:
            strongconnect(node)
    return result
