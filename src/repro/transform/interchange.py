"""Loop interchange legality from direction vectors.

Interchanging two loops permutes the corresponding components of every
dependence direction vector; the interchange is legal iff no vector becomes
implausible — i.e. no dependence has ``<`` on the outer loop and ``>`` on
the inner one (the classic test the paper attributes to direction vectors
[4, 25, 53]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.dirvec.direction import Direction
from repro.graph.depgraph import (
    DependenceEdge,
    DependenceGraph,
    build_dependence_graph,
    loop_key,
)
from repro.ir.context import SymbolEnv
from repro.ir.loop import Loop, Node


@dataclass
class InterchangeVerdict:
    """Whether two loops may be interchanged, with the violating edges."""

    outer: Loop
    inner: Loop
    legal: bool
    violations: List[DependenceEdge]

    def __str__(self) -> str:
        status = "legal" if self.legal else "ILLEGAL"
        return f"interchange({self.outer.index}, {self.inner.index}): {status}"


def interchange_legal(
    graph: DependenceGraph, outer: Loop, inner: Loop
) -> InterchangeVerdict:
    """Check interchange legality of two loops against a dependence graph.

    Edges whose common nest does not contain both loops are unaffected by
    the interchange and ignored.
    """
    violations: List[DependenceEdge] = []
    for edge in graph.edges:
        positions = _positions(edge, outer, inner)
        if positions is None:
            continue
        outer_pos, inner_pos = positions
        for vector in edge.vectors:
            if (
                vector[outer_pos] is Direction.LT
                and vector[inner_pos] is Direction.GT
            ):
                violations.append(edge)
                break
    return InterchangeVerdict(outer, inner, not violations, violations)


def _positions(
    edge: DependenceEdge, outer: Loop, inner: Loop
) -> Optional[Tuple[int, int]]:
    loops = edge.common_loops
    outer_key, inner_key = loop_key(outer), loop_key(inner)
    outer_pos = inner_pos = None
    for position, loop in enumerate(loops):
        if loop_key(loop) == outer_key:
            outer_pos = position
        elif loop_key(loop) == inner_key:
            inner_pos = position
    if outer_pos is None or inner_pos is None:
        return None
    return outer_pos, inner_pos


def check_interchange(
    nodes: Sequence[Node],
    outer: Loop,
    inner: Loop,
    symbols: Optional[SymbolEnv] = None,
) -> InterchangeVerdict:
    """Build the graph and check interchange legality in one call."""
    graph = build_dependence_graph(nodes, symbols=symbols)
    return interchange_legal(graph, outer, inner)


@dataclass
class InterchangeAdvice:
    """Legality plus the paper's profitability criterion.

    The paper (Section 2.1) notes direction vectors determine "whether loop
    interchange is legal and profitable".  The classic profitability signal
    for vectorization is moving a dependence-free loop innermost: the
    interchange is *profitable* when the current inner loop carries a
    dependence but the outer one does not (so after swapping, the new inner
    loop is vectorizable).
    """

    verdict: InterchangeVerdict
    profitable: bool
    reason: str

    def __str__(self) -> str:
        status = str(self.verdict)
        return f"{status}; {'profitable' if self.profitable else 'not profitable'} ({self.reason})"


def interchange_advice(
    graph: DependenceGraph, outer: Loop, inner: Loop
) -> InterchangeAdvice:
    """Combine interchange legality with the vectorization-profitability
    heuristic over an existing dependence graph."""
    verdict = interchange_legal(graph, outer, inner)
    outer_carries = bool(graph.edges_carried_by(outer))
    inner_carries = bool(graph.edges_carried_by(inner))
    if not verdict.legal:
        return InterchangeAdvice(verdict, False, "illegal")
    if inner_carries and not outer_carries:
        return InterchangeAdvice(
            verdict,
            True,
            "moves the dependence-free loop innermost (vectorizable after swap)",
        )
    if not inner_carries:
        return InterchangeAdvice(
            verdict, False, "inner loop is already dependence-free"
        )
    return InterchangeAdvice(
        verdict, False, "both loops carry dependences; swapping gains nothing"
    )
