"""Parallel-loop detection: the paper's motivating consumer of dependences.

A loop can run its iterations in parallel (a DOALL) when it carries no
dependence — i.e. no dependence edge between statements in its body has a
direction vector whose leading non-``=`` component is at that loop's level
(Section 2.1: "carried dependences determine which loops cannot be executed
in parallel without synchronization").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.graph.depgraph import (
    DependenceEdge,
    DependenceGraph,
    build_dependence_graph,
    loop_key,
)
from repro.ir.context import SymbolEnv
from repro.ir.loop import Loop, Node, loops_in


@dataclass
class LoopParallelism:
    """Verdict for one loop: parallel, or blocked by specific edges."""

    loop: Loop
    parallel: bool
    blocking_edges: List[DependenceEdge]

    def __str__(self) -> str:
        verdict = "PARALLEL" if self.parallel else "serial"
        blockers = (
            "" if self.parallel else f" (blocked by {len(self.blocking_edges)} edges)"
        )
        return f"DO {self.loop.index}: {verdict}{blockers}"


def find_parallel_loops(
    nodes: Sequence[Node],
    symbols: Optional[SymbolEnv] = None,
    graph: Optional[DependenceGraph] = None,
) -> List[LoopParallelism]:
    """Classify every loop of a statement list as parallel or serial.

    A precomputed dependence graph may be passed to avoid re-testing.
    """
    if graph is None:
        graph = build_dependence_graph(nodes, symbols=symbols)
    verdicts = []
    for loop in loops_in(nodes):
        key = loop_key(loop)
        blocking = [e for e in graph.edges if key in e.carrier_loops()]
        verdicts.append(LoopParallelism(loop, not blocking, blocking))
    return verdicts


def parallel_loop_count(
    nodes: Sequence[Node], symbols: Optional[SymbolEnv] = None
) -> int:
    """Number of DOALL loops found (used by the study summary)."""
    return sum(1 for v in find_parallel_loops(nodes, symbols) if v.parallel)
