"""Loop splitting suggestions from weak-crossing SIV dependences.

Weak-crossing SIV dependences all cross a single iteration (the paper's
Callahan-Dongarra-Levine example: every dependence crosses ``(N + 1)/2``);
splitting the loop at the crossing point yields two dependence-free halves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.graph.depgraph import DependenceEdge, DependenceGraph, build_dependence_graph
from repro.ir.context import SymbolEnv
from repro.ir.loop import Loop, Node


@dataclass
class SplitSuggestion:
    """Split a loop at the crossing iteration to break crossing dependences."""

    loop: Loop
    crossing_iteration: object  # Fraction (possibly half-integral)
    edge: DependenceEdge

    def __str__(self) -> str:
        return (
            f"split DO {self.loop.index} at iteration {self.crossing_iteration} "
            f"to eliminate crossing {self.edge.dep_type} dependence "
            f"on {self.edge.source.ref.array}"
        )


def find_splitting_opportunities(
    nodes: Sequence[Node],
    symbols: Optional[SymbolEnv] = None,
    graph: Optional[DependenceGraph] = None,
) -> List[SplitSuggestion]:
    """Scan a statement list for crossing dependences amenable to splitting."""
    if graph is None:
        graph = build_dependence_graph(nodes, symbols=symbols)
    suggestions: List[SplitSuggestion] = []
    for edge in graph.edges:
        for outcome in edge.result.outcomes:
            if outcome.test != "weak-crossing-siv" or outcome.independent:
                continue
            crossing = outcome.notes.get("crossing_iteration")
            if crossing is None:
                continue
            for index in outcome.constraints:
                loop = edge.result.context.loop_for(index)
                if loop is not None:
                    suggestions.append(SplitSuggestion(loop, crossing, edge))
    return suggestions
