"""Actually apply loop transformations to the IR.

The paper motivates three dependence-driven transformations; this module
performs them so their effect can be *verified by re-analysis* (the
integration tests peel/split/interchange and check that the carried
dependence really disappears):

* :func:`peel_loop` — split off the first or last iteration (weak-zero SIV
  dependences pinned to a boundary iteration);
* :func:`split_loop` — break the iteration space at the crossing point
  (weak-crossing SIV dependences);
* :func:`interchange_loops` — swap two perfectly nested loops (legal when
  no (<, >) direction vector exists — see
  :mod:`repro.transform.interchange`).

Each function is pure: it returns new IR nodes, substituting the peeled
iteration's value into the peeled copy of the body.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Union

from repro.ir.expr import Const, Expr, Sub, Add
from repro.ir.loop import Assign, Conditional, Loop, Node
from repro.ir.normalize import _subst_expr, _subst_ref  # shared rewriting core


def _substitute_body(body: List[Node], name: str, value: Expr) -> List[Node]:
    """Copy a body with every use of index ``name`` replaced by ``value``."""
    result: List[Node] = []
    for node in body:
        if isinstance(node, Loop):
            result.append(
                Loop(
                    node.index,
                    _subst_expr(node.lower, {name: value}),
                    _subst_expr(node.upper, {name: value}),
                    node.step,
                    _substitute_body(node.body, name, value),
                    node.label,
                )
            )
        elif isinstance(node, Conditional):
            result.append(
                Conditional(node.condition, _substitute_body(node.body, name, value))
            )
        elif isinstance(node, Assign):
            result.append(
                Assign(
                    _subst_ref(node.lhs, {name: value}),
                    _subst_expr(node.rhs, {name: value}),
                    node.label,
                )
            )
        else:
            raise TypeError(f"unknown node {node!r}")
    return result


def _copy_body(body: List[Node]) -> List[Node]:
    return _substitute_body(body, "", Const(0))  # no-op substitution copies


def peel_loop(loop: Loop, which: str = "first") -> List[Node]:
    """Peel the first or last iteration off a loop.

    ``DO i = L, U`` becomes ``body[i := L]; DO i = L+1, U`` (or the mirror
    for ``which == "last"``).  Returns the replacement node list.
    """
    if loop.step != 1:
        raise ValueError("peel_loop requires a normalized (step-1) loop")
    if which == "first":
        peeled = _substitute_body(loop.body, loop.index, loop.lower)
        rest = Loop(
            loop.index,
            Add(loop.lower, Const(1)),
            loop.upper,
            1,
            _copy_body(loop.body),
            loop.label,
        )
        return peeled + [rest]
    if which == "last":
        peeled = _substitute_body(loop.body, loop.index, loop.upper)
        rest = Loop(
            loop.index,
            loop.lower,
            Sub(loop.upper, Const(1)),
            1,
            _copy_body(loop.body),
            loop.label,
        )
        return [rest] + peeled
    raise ValueError(f"which must be 'first' or 'last', got {which!r}")


def split_loop(loop: Loop, at: Union[int, Fraction]) -> List[Node]:
    """Split a loop at a crossing point into two loops.

    For a crossing iteration ``x`` (possibly half-integral), produces
    ``DO i = L, floor(x)`` and ``DO i = floor(x)+1, U`` — the paper's loop
    splitting for weak-crossing dependences, whose endpoints always lie on
    opposite sides of ``x``.
    """
    if loop.step != 1:
        raise ValueError("split_loop requires a normalized (step-1) loop")
    boundary = int(Fraction(at))  # floor for positive crossing points
    first = Loop(
        loop.index, loop.lower, Const(boundary), 1, _copy_body(loop.body), loop.label
    )
    second = Loop(
        loop.index,
        Const(boundary + 1),
        loop.upper,
        1,
        _copy_body(loop.body),
        loop.label,
    )
    return [first, second]


def interchange_loops(outer: Loop) -> Loop:
    """Swap a perfectly nested loop pair (outer's body must be one loop).

    The caller is responsible for legality (``interchange_legal``); bounds
    must not reference the other index (rectangular nest).
    """
    if len(outer.body) != 1 or not isinstance(outer.body[0], Loop):
        raise ValueError("interchange requires a perfect two-loop nest")
    inner = outer.body[0]
    for bound in (inner.lower, inner.upper):
        if outer.index in bound.variables():
            raise ValueError(
                f"inner bound {bound} references {outer.index}: "
                "triangular interchange is out of scope"
            )
    new_inner = Loop(
        outer.index, outer.lower, outer.upper, outer.step, inner.body, outer.label
    )
    return Loop(
        inner.index, inner.lower, inner.upper, inner.step, [new_inner], inner.label
    )
