"""Transformation-legality consumers of dependence information."""

from repro.transform.parallel import (
    LoopParallelism,
    find_parallel_loops,
    parallel_loop_count,
)
from repro.transform.interchange import (
    InterchangeAdvice,
    InterchangeVerdict,
    check_interchange,
    interchange_advice,
    interchange_legal,
)
from repro.transform.apply import (
    interchange_loops,
    peel_loop,
    split_loop,
)
from repro.transform.vectorize import VectorizationReport, vectorize
from repro.transform.peel import PeelSuggestion, find_peeling_opportunities
from repro.transform.split import SplitSuggestion, find_splitting_opportunities

__all__ = [
    "LoopParallelism",
    "find_parallel_loops",
    "parallel_loop_count",
    "InterchangeAdvice",
    "InterchangeVerdict",
    "check_interchange",
    "interchange_advice",
    "interchange_legal",
    "interchange_loops",
    "peel_loop",
    "split_loop",
    "VectorizationReport",
    "vectorize",
    "PeelSuggestion",
    "find_peeling_opportunities",
    "SplitSuggestion",
    "find_splitting_opportunities",
]
