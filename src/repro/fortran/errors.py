"""Diagnostics for the Fortran-subset front end."""

from __future__ import annotations


class FortranSyntaxError(SyntaxError):
    """A parse error in the Fortran-subset front end.

    Carries the (1-based) source line number and the offending text so the
    corpus loader can report exactly which kernel line failed.
    """

    def __init__(self, message: str, line_number: int = 0, line_text: str = ""):
        location = f" (line {line_number}: {line_text.strip()!r})" if line_number else ""
        super().__init__(f"{message}{location}")
        self.line_number = line_number
        self.line_text = line_text
