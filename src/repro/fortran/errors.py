"""Diagnostics for the Fortran-subset front end."""

from __future__ import annotations


class FortranSyntaxError(SyntaxError):
    """A parse error in the Fortran-subset front end.

    Carries the (1-based) source line number, the offending text, and —
    when the lexer or parser knows it — the (1-based) column, so the
    corpus loader and the CLI can report exactly which kernel position
    failed.
    """

    def __init__(
        self,
        message: str,
        line_number: int = 0,
        line_text: str = "",
        column: int = 0,
    ):
        location = f" (line {line_number}: {line_text.strip()!r})" if line_number else ""
        super().__init__(f"{message}{location}")
        self.message = message
        self.line_number = line_number
        self.line_text = line_text
        self.column = column

    def diagnostic(self) -> str:
        """Multi-line, human-oriented report: location, snippet, caret.

        Used by the CLI instead of a traceback::

            syntax error: unexpected character '%' at line 3, column 12
              do i = 1 %% n
                       ^
        """
        where = ""
        if self.line_number:
            where = f" at line {self.line_number}"
            if self.column:
                where += f", column {self.column}"
        lines = [f"syntax error: {self.message}{where}"]
        snippet = self.line_text.rstrip()
        if snippet:
            stripped = snippet.lstrip()
            indent_lost = len(snippet) - len(stripped)
            lines.append(f"  {stripped}")
            if self.column and self.column > indent_lost:
                lines.append("  " + " " * (self.column - indent_lost - 1) + "^")
        return "\n".join(lines)
