"""Recursive-descent parser for the Fortran DO-loop subset.

This front end stands in for PFC's Fortran front end: it accepts the loop
kernels the paper's study runs over — classic fixed-form ``DO 10 I = 1, N``
loops closed by labeled ``CONTINUE``, modern ``DO``/``ENDDO`` loops, block
and logical ``IF`` statements, and assignments over scalar and subscripted
references.  Declarations, I/O, ``CALL``, ``GOTO``, and ``FORMAT``
statements are recognized and skipped (they carry no subscript pairs).

Entry points:

* :func:`parse_program` — a full file of ``SUBROUTINE``/``FUNCTION`` units.
* :func:`parse_fragment` — a bare statement list (tests and examples).
* :func:`parse_expression`, :func:`parse_reference` — expression-level.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.fortran.errors import FortranSyntaxError
from repro.fortran.lexer import LogicalLine, Token, preprocess, tokenize
from repro.ir.expr import (
    Add,
    Call,
    Const,
    Div,
    Expr,
    IndexedLoad,
    Mul,
    Neg,
    RealConst,
    Sub,
    Var,
)
from repro.ir.loop import ArrayRef, Assign, Conditional, Loop, Node, Ref, ScalarRef
from repro.ir.program import Program, Routine

#: Fortran-77 intrinsic functions: a name applied to arguments parses as an
#: opaque :class:`Call` rather than an array load.
INTRINSICS = frozenset(
    """
    abs iabs dabs cabs sqrt dsqrt csqrt exp dexp log alog dlog log10 alog10
    sin dsin cos dcos tan dtan asin dasin acos dacos atan datan atan2 datan2
    sign dsign isign mod amod dmod min max min0 max0 min1 max1 amin0 amax0
    amin1 amax1 dmin1 dmax1 float real dble int ifix idint nint idnint aint
    dint anint dnint cmplx conjg aimag dimag dim idim ddim dprod len index
    ichar char sngl lge lgt lle llt
    """.split()
)

#: Statement keywords that are recognized and skipped entirely.
_SKIPPED_KEYWORDS = frozenset(
    """
    integer real doubleprecision double dimension parameter implicit common
    data external intrinsic save equivalence character logical complex
    return stop call goto go write print read format rewind backspace open
    close pause entry assign namelist
    """.split()
)

_SKIPPED_SINGLE = frozenset({"continue", "return", "stop", "cycle", "exit"})


# ---------------------------------------------------------------------------
# Expression parsing
# ---------------------------------------------------------------------------


class _TokenStream:
    def __init__(self, tokens: List[Token], line: LogicalLine):
        self.tokens = tokens
        self.pos = 0
        self.line = line

    def peek(self, offset: int = 0) -> Optional[Token]:
        idx = self.pos + offset
        return self.tokens[idx] if idx < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise self.error("unexpected end of statement")
        self.pos += 1
        return token

    def accept(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token.text == text:
            self.pos += 1
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.peek()
        if token is None or token.text != text:
            found = token.text if token else "end of statement"
            raise self.error(f"expected {text!r}, found {found!r}")
        self.pos += 1
        return token

    def at_end(self) -> bool:
        return self.pos >= len(self.tokens)

    def error(self, message: str) -> FortranSyntaxError:
        # Point at the token the parser is looking at; past the end, at
        # the position just after the last token.
        token = self.peek()
        if token is not None and token.column:
            column = token.column
        elif self.tokens and self.tokens[-1].column:
            last = self.tokens[-1]
            column = last.column + len(last.text)
        else:
            column = 0
        return FortranSyntaxError(
            message, self.line.number, self.line.text, column=column
        )


def _parse_expr(stream: _TokenStream) -> Expr:
    left = _parse_term(stream)
    while True:
        token = stream.peek()
        if token is None or token.text not in ("+", "-"):
            return left
        stream.next()
        right = _parse_term(stream)
        left = Add(left, right) if token.text == "+" else Sub(left, right)


def _parse_term(stream: _TokenStream) -> Expr:
    left = _parse_power(stream)
    while True:
        token = stream.peek()
        if token is None or token.text not in ("*", "/"):
            return left
        stream.next()
        right = _parse_power(stream)
        left = Mul(left, right) if token.text == "*" else Div(left, right)


def _parse_power(stream: _TokenStream) -> Expr:
    base = _parse_primary(stream)
    token = stream.peek()
    if token is not None and token.kind == "POW":
        stream.next()
        exponent = _parse_power(stream)  # right associative
        return Call("pow", (base, exponent))
    return base


def _parse_primary(stream: _TokenStream) -> Expr:
    token = stream.peek()
    if token is None:
        raise stream.error("unexpected end of expression")
    if token.text == "-":
        stream.next()
        operand = _parse_primary(stream)
        # Fold negated literals so `-1` is the constant -1, not Neg(1).
        if isinstance(operand, Const):
            return Const(-operand.value)
        if isinstance(operand, RealConst):
            return RealConst(-operand.value)
        return Neg(operand)
    if token.text == "+":
        stream.next()
        return _parse_primary(stream)
    if token.kind == "INT":
        stream.next()
        return Const(int(token.text))
    if token.kind == "REAL":
        stream.next()
        return RealConst(float(token.text.lower().replace("d", "e")))
    if token.text == "(":
        stream.next()
        inner = _parse_expr(stream)
        stream.expect(")")
        return inner
    if token.kind == "IDENT":
        stream.next()
        name = token.text
        if stream.accept("("):
            args = _parse_arglist(stream)
            if name in INTRINSICS:
                return Call(name, tuple(args))
            return IndexedLoad(name, tuple(args))
        return Var(name)
    raise stream.error(f"unexpected token {token.text!r} in expression")


def _parse_arglist(stream: _TokenStream) -> List[Expr]:
    args: List[Expr] = []
    if stream.accept(")"):
        return args
    args.append(_parse_expr(stream))
    while stream.accept(","):
        args.append(_parse_expr(stream))
    stream.expect(")")
    return args


def parse_expression(text: str) -> Expr:
    """Parse a standalone Fortran expression string."""
    line = LogicalLine(0, None, text)
    stream = _TokenStream(tokenize(text), line)
    expr = _parse_expr(stream)
    if not stream.at_end():
        raise stream.error(f"trailing tokens after expression: {stream.peek()}")
    return expr


def parse_reference(text: str) -> Ref:
    """Parse a reference string such as ``a(i, j+1)`` or ``x``."""
    expr = parse_expression(text)
    if isinstance(expr, IndexedLoad):
        return ArrayRef(expr.array, expr.subscripts)
    if isinstance(expr, Var):
        return ScalarRef(expr.name)
    raise FortranSyntaxError(f"{text!r} is not a scalar or array reference")


# ---------------------------------------------------------------------------
# Statement / block parsing
# ---------------------------------------------------------------------------


class _Frame:
    """One open block: the routine body, a loop, or a conditional arm."""

    def __init__(self, kind: str, body: List[Node], label: Optional[str] = None):
        self.kind = kind  # "top" | "loop" | "cond"
        self.body = body
        self.label = label  # closing label for labeled DO loops


class _BlockParser:
    """Parses a statement list (one routine body) from logical lines."""

    def __init__(self) -> None:
        self.root: List[Node] = []
        self.frames: List[_Frame] = [_Frame("top", self.root)]

    @property
    def current(self) -> List[Node]:
        return self.frames[-1].body

    def feed(self, line: LogicalLine) -> None:
        tokens = tokenize(line.text, line.number)
        if not tokens:
            return
        self._dispatch(line, tokens)
        if line.label:
            self._close_labeled_loops(line.label)

    def finish(self, where: str = "") -> List[Node]:
        open_loops = [f for f in self.frames if f.kind != "top"]
        if open_loops:
            raise FortranSyntaxError(
                f"unclosed {open_loops[-1].kind} at end of {where or 'input'}"
            )
        return self.root

    # -- statement dispatch -------------------------------------------------

    def _dispatch(self, line: LogicalLine, tokens: List[Token]) -> None:
        head = tokens[0]
        stream = _TokenStream(tokens, line)
        # Assignment first: `if(...)=...` can't occur, but `do10i=1,5` and
        # variables named like keywords are distinguished by the '=' shape.
        if self._looks_like_assignment(tokens):
            self.current.append(self._parse_assignment(stream, line.label))
            return
        if head.text == "do":
            self._parse_do(stream)
            return
        if head.text in ("enddo",) or (
            head.text == "end" and len(tokens) > 1 and tokens[1].text == "do"
        ):
            self._close_block("loop", stream)
            return
        if head.text == "if":
            self._parse_if(line, stream)
            return
        if head.text in ("endif",) or (
            head.text == "end" and len(tokens) > 1 and tokens[1].text == "if"
        ):
            self._close_block("cond", stream)
            return
        if head.text == "elseif" or (
            head.text == "else" and len(tokens) > 1 and tokens[1].text == "if"
        ):
            self._swap_conditional_arm("elseif branch")
            return
        if head.text == "else":
            self._swap_conditional_arm("else branch")
            return
        if head.text in _SKIPPED_SINGLE:
            return
        if head.text in _SKIPPED_KEYWORDS:
            return
        if head.kind == "IDENT":
            # Unknown statement form: tolerate and skip (matches how PFC's
            # study only reads subscript pairs).
            return
        raise stream.error(f"cannot parse statement starting with {head.text!r}")

    @staticmethod
    def _looks_like_assignment(tokens: List[Token]) -> bool:
        if not tokens or tokens[0].kind != "IDENT":
            return False
        depth = 0
        for idx, token in enumerate(tokens):
            if token.text == "(":
                depth += 1
            elif token.text == ")":
                depth -= 1
            elif token.text == "=" and depth == 0:
                # `do i = 1, n` also matches; exclude DO/IF keyword heads
                # followed by things that are not a bare designator.
                head = tokens[0].text
                if head == "do":
                    return False
                if head == "if" and idx > 1 and tokens[1].text == "(":
                    return False
                return idx >= 1
        return False

    def _parse_assignment(self, stream: _TokenStream, label: Optional[str]) -> Assign:
        target = _parse_primary(stream)
        if isinstance(target, IndexedLoad):
            lhs: Ref = ArrayRef(target.array, target.subscripts)
        elif isinstance(target, Var):
            lhs = ScalarRef(target.name)
        else:
            raise stream.error(f"invalid assignment target {target}")
        stream.expect("=")
        rhs = _parse_expr(stream)
        if not stream.at_end():
            raise stream.error(f"trailing tokens after assignment: {stream.peek()}")
        return Assign(lhs, rhs, label)

    def _parse_do(self, stream: _TokenStream) -> None:
        stream.expect("do")
        label: Optional[str] = None
        token = stream.peek()
        if token is not None and token.kind == "INT":
            label = stream.next().text
        index_token = stream.next()
        if index_token.kind != "IDENT":
            raise stream.error(f"expected loop index, found {index_token.text!r}")
        if index_token.text == "while":
            raise stream.error("DO WHILE loops are outside the subset")
        stream.expect("=")
        lower = _parse_expr(stream)
        stream.expect(",")
        upper = _parse_expr(stream)
        step = 1
        if stream.accept(","):
            step_expr = _parse_expr(stream)
            step = _constant_step(step_expr, stream)
        if not stream.at_end():
            raise stream.error(f"trailing tokens after DO: {stream.peek()}")
        loop = Loop(index_token.text, lower, upper, step, [], label)
        self.current.append(loop)
        self.frames.append(_Frame("loop", loop.body, label))

    def _parse_if(self, line: LogicalLine, stream: _TokenStream) -> None:
        stream.expect("if")
        stream.expect("(")
        condition, end_pos = self._capture_condition(stream)
        rest = stream.tokens[end_pos:]
        if rest and rest[0].text == "then":
            node = Conditional(condition, [])
            self.current.append(node)
            self.frames.append(_Frame("cond", node.body))
            return
        if not rest:
            raise stream.error("logical IF with no statement")
        # Logical (one-line) IF: parse the remainder as a nested statement.
        node = Conditional(condition, [])
        self.current.append(node)
        inner = _BlockParser()
        inner_line = LogicalLine(line.number, None, " ".join(t.text for t in rest))
        inner._dispatch(inner_line, rest)
        node.body.extend(inner.finish("logical IF"))

    def _capture_condition(self, stream: _TokenStream) -> Tuple[str, int]:
        """Consume tokens up to the matching ')' and return their text."""
        depth = 1
        parts: List[str] = []
        while True:
            token = stream.peek()
            if token is None:
                raise stream.error("unterminated IF condition")
            stream.next()
            if token.text == "(":
                depth += 1
            elif token.text == ")":
                depth -= 1
                if depth == 0:
                    return " ".join(parts), stream.pos
            if depth > 0:
                parts.append(token.text)

    def _close_block(self, kind: str, stream: _TokenStream) -> None:
        if self.frames[-1].kind != kind:
            raise stream.error(
                f"mismatched block close: expected open {kind}, "
                f"found {self.frames[-1].kind}"
            )
        self.frames.pop()

    def _swap_conditional_arm(self, description: str) -> None:
        if self.frames[-1].kind != "cond":
            raise FortranSyntaxError(f"{description} outside a block IF")
        self.frames.pop()
        node = Conditional(f"<{description}>", [])
        self.current.append(node)
        self.frames.append(_Frame("cond", node.body))

    def _close_labeled_loops(self, label: str) -> None:
        while self.frames[-1].kind == "loop" and self.frames[-1].label == label:
            self.frames.pop()


def _constant_step(expr: Expr, stream: _TokenStream) -> int:
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Neg) and isinstance(expr.operand, Const):
        return -expr.operand.value
    raise stream.error(f"loop step must be an integer constant, found {expr}")


# ---------------------------------------------------------------------------
# Routine / program parsing
# ---------------------------------------------------------------------------

_UNIT_HEADS = ("subroutine", "function", "program", "blockdata")


def parse_fragment(source: str) -> List[Node]:
    """Parse a bare statement list (no SUBROUTINE/END wrapper)."""
    parser = _BlockParser()
    for line in preprocess(source):
        parser.feed(line)
    return parser.finish("fragment")


def parse_routine(source: str, name: str = "main") -> Routine:
    """Parse a bare statement list into a named routine."""
    lines = preprocess(source)
    parser = _BlockParser()
    for line in lines:
        parser.feed(line)
    return Routine(name, parser.finish(name), source_lines=len(lines))


def parse_program(source: str, name: str = "program", suite: Optional[str] = None) -> Program:
    """Parse a file of program units into a :class:`Program`.

    Units are delimited by ``SUBROUTINE``/``FUNCTION``/``PROGRAM`` headers
    and ``END`` lines.  Source with no unit headers parses as one implicit
    routine.
    """
    lines = preprocess(source)
    routines: List[Routine] = []
    parser: Optional[_BlockParser] = None
    routine_name = name
    routine_lines = 0

    def close_routine() -> None:
        nonlocal parser, routine_lines
        if parser is not None:
            routines.append(
                Routine(routine_name, parser.finish(routine_name), routine_lines)
            )
            parser = None
            routine_lines = 0

    for line in lines:
        tokens = tokenize(line.text, line.number)
        if not tokens:
            continue
        head = tokens[0].text
        if head in _UNIT_HEADS or _is_typed_function(tokens):
            close_routine()
            routine_name = _unit_name(tokens) or name
            parser = _BlockParser()
            routine_lines = 1
            continue
        if head == "end" and len(tokens) == 1:
            if parser is not None:
                routine_lines += 1
            close_routine()
            continue
        if parser is None:
            parser = _BlockParser()
            routine_name = name
            routine_lines = 0
        routine_lines += 1
        parser.feed(line)
    close_routine()
    return Program(name, routines, suite)


def _is_typed_function(tokens: List[Token]) -> bool:
    """Detect `REAL FUNCTION F(X)`-style headers."""
    if len(tokens) < 2:
        return False
    return (
        tokens[0].text in ("integer", "real", "double", "doubleprecision", "logical", "complex")
        and any(t.text == "function" for t in tokens[1:3])
    )


def _unit_name(tokens: List[Token]) -> Optional[str]:
    for idx, token in enumerate(tokens):
        if token.text in _UNIT_HEADS or token.text == "function":
            if idx + 1 < len(tokens) and tokens[idx + 1].kind == "IDENT":
                return tokens[idx + 1].text
    return None
