"""Fortran DO-loop subset front end (lexer + parser).

Substitutes for PFC's Fortran front end: it parses exactly the fragment
class the paper's dependence tests consume — DO loops (labeled or
ENDDO-closed) with affine bounds, assignments over scalar/array references,
and IF regions — and skips declarations and I/O.
"""

from repro.fortran.errors import FortranSyntaxError
from repro.fortran.lexer import LogicalLine, Token, preprocess, tokenize
from repro.fortran.parser import (
    INTRINSICS,
    parse_expression,
    parse_fragment,
    parse_program,
    parse_reference,
    parse_routine,
)

__all__ = [
    "FortranSyntaxError",
    "LogicalLine",
    "Token",
    "preprocess",
    "tokenize",
    "INTRINSICS",
    "parse_expression",
    "parse_fragment",
    "parse_program",
    "parse_reference",
    "parse_routine",
]
