"""Tokenizer for the Fortran-subset expression and statement grammar.

The front end works line-by-line: :func:`preprocess` strips comments and
joins continuation lines, and :func:`tokenize` turns one logical line into a
token list.  Identifiers are lowercased (Fortran is case-insensitive).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.fortran.errors import FortranSyntaxError

TOKEN_RE = re.compile(
    r"""
    (?P<REAL>\d+\.\d*([eEdD][+-]?\d+)?|\.\d+([eEdD][+-]?\d+)?|\d+[eEdD][+-]?\d+)
  | (?P<INT>\d+)
  | (?P<DOTOP>\.(?:eq|ne|lt|le|gt|ge|and|or|not|true|false)\.)
  | (?P<IDENT>[A-Za-z][A-Za-z0-9_$]*)
  | (?P<POW>\*\*)
  | (?P<OP>[-+*/(),=:])
  | (?P<RELOP><=|>=|==|/=|<|>)
  | (?P<WS>\s+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token: a ``kind`` tag, its source text, and its column.

    ``column`` is the 1-based position in the logical line (0 when the
    token was built synthetically); it only feeds diagnostics, so it does
    not participate in token equality.
    """

    kind: str
    text: str
    column: int = field(default=0, compare=False)

    def __str__(self) -> str:
        return self.text


def tokenize(line: str, line_number: int = 0) -> List[Token]:
    """Tokenize one logical source line.

    Raises :class:`FortranSyntaxError` on characters outside the subset,
    pointing at the offending line and column.
    """
    tokens: List[Token] = []
    pos = 0
    while pos < len(line):
        match = TOKEN_RE.match(line, pos)
        if match is None:
            raise FortranSyntaxError(
                f"unexpected character {line[pos]!r}",
                line_number,
                line,
                column=pos + 1,
            )
        kind = match.lastgroup or ""
        text = match.group()
        column = match.start() + 1
        if kind == "IDENT":
            tokens.append(Token("IDENT", text.lower(), column))
        elif kind == "DOTOP":
            tokens.append(Token("DOTOP", text.lower(), column))
        elif kind != "WS":
            tokens.append(Token(kind, text, column))
        pos = match.end()
    return tokens


@dataclass(frozen=True)
class LogicalLine:
    """A comment-stripped, continuation-joined source line."""

    number: int
    label: Optional[str]
    text: str


_COMMENT_LINE = re.compile(r"^[Cc*!]")
_LABELED = re.compile(r"^\s*(\d+)\s+(.*)$")


def preprocess(source: str) -> List[LogicalLine]:
    """Split source into logical lines.

    Handles: full-line comments (``C``, ``*``, ``!`` in column one), inline
    ``!`` comments, statement labels, free-form trailing-``&``
    continuations, and fixed-form continuation lines (a non-space, non-zero
    character in column 6 of a line whose first five columns are blank).
    """
    logical: List[LogicalLine] = []
    pending: Optional[Tuple[int, Optional[str], str]] = None
    expect_continuation = False

    def flush() -> None:
        nonlocal pending, expect_continuation
        if pending is not None:
            number, label, text = pending
            text = text.strip()
            if text:
                logical.append(LogicalLine(number, label, text))
            pending = None
        expect_continuation = False

    for number, raw in enumerate(source.splitlines(), start=1):
        if _COMMENT_LINE.match(raw):
            continue
        line = raw.rstrip("\n")
        bang = _find_comment(line)
        if bang is not None:
            line = line[:bang]
        if not line.strip():
            continue
        # Fixed-form continuation: columns 1-5 blank and a conventional
        # continuation character in column 6.  Strict Fortran-66 allows any
        # non-blank non-zero character there, but accepting letters would
        # misread free-ish sources that indent statements by five spaces, so
        # only the markers seen in practice are recognized.
        fixed_continuation = (
            pending is not None
            and len(line) >= 6
            and line[:5].strip() == ""
            and (line[5] in "&$*+-./#@" or line[5] in "123456789")
        )
        if fixed_continuation or (expect_continuation and pending is not None):
            extra = line[6:] if fixed_continuation else line.strip()
            expect_continuation = False
            while extra.rstrip().endswith("&"):
                extra = extra.rstrip()[:-1]
                expect_continuation = True
            pending = (pending[0], pending[1], pending[2] + " " + extra)
            continue
        flush()
        label: Optional[str] = None
        text = line.strip()
        labeled = _LABELED.match(line)
        if labeled:
            label = labeled.group(1)
            text = labeled.group(2).strip()
        while text.endswith("&"):
            text = text[:-1].rstrip()
            expect_continuation = True
        pending = (number, label, text)
    flush()
    return logical


def _find_comment(line: str) -> Optional[int]:
    """Index of an inline ``!`` comment, ignoring any inside strings."""
    in_string = False
    for idx, char in enumerate(line):
        if char == "'":
            in_string = not in_string
        elif char == "!" and not in_string:
            return idx
    return None
