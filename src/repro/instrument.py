"""Test-application instrumentation.

The paper's empirical study (its Table 3) counts, for every dependence
test, how many times PFC applied it and how many independences it proved.
A :class:`TestRecorder` threads through the driver and the Delta test to
collect exactly those counters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.single.outcome import TestOutcome


@dataclass
class TestRecorder:
    """Counts test applications and proved independences by test name."""

    __test__ = False  # not a pytest test class despite the name

    applications: Counter = field(default_factory=Counter)
    independences: Counter = field(default_factory=Counter)

    def record(self, outcome: TestOutcome) -> TestOutcome:
        """Record one test application; returns the outcome for chaining."""
        if outcome.applicable:
            self.applications[outcome.test] += 1
            if outcome.independent:
                self.independences[outcome.test] += 1
        return outcome

    def merge(self, other: "TestRecorder") -> None:
        """Fold another recorder's counters into this one."""
        self.applications.update(other.applications)
        self.independences.update(other.independences)

    def rows(self) -> List[Tuple[str, int, int]]:
        """``(test, applications, independences)`` rows, sorted by name."""
        names = sorted(set(self.applications) | set(self.independences))
        return [
            (name, self.applications[name], self.independences[name])
            for name in names
        ]

    def __str__(self) -> str:
        lines = [f"{name}: {apps} applied, {inds} independent"
                 for name, apps, inds in self.rows()]
        return "\n".join(lines) or "<no tests recorded>"


def maybe_record(recorder: Optional[TestRecorder], outcome: TestOutcome) -> TestOutcome:
    """Record when a recorder is present; always returns the outcome."""
    if recorder is not None:
        recorder.record(outcome)
    return outcome
