"""Catalog of the paper's worked examples, with expected outcomes.

Every loop the paper walks through in Sections 1-5 is collected here with
the result the paper derives for it, in machine-checkable form.  The test
suite sweeps the catalog (``tests/test_paper_examples.py``), the docs
reference it, and it doubles as a regression corpus: any change to the
tests that alters a paper-documented verdict fails immediately.

Each entry records the Fortran source, the array under test, and the
expected artifacts: classification of each subscript position, the
dependence verdict, exact distance/direction vectors where the paper
states them, and which test decides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.dirvec.direction import Direction

LT, EQ, GT = Direction.LT, Direction.EQ, Direction.GT


@dataclass(frozen=True)
class PaperExample:
    """One worked example from the paper."""

    name: str
    section: str
    source: str
    array: str = "a"
    #: expected classification per subscript position (names as in
    #: repro.classify.SubscriptKind values); None = don't check
    kinds: Optional[Tuple[str, ...]] = None
    #: expected verdict for the (first, second) site pair in execution order
    independent: Optional[bool] = None
    #: expected direction vectors over the common loops (source order), as
    #: rendered strings; None = don't check
    vectors: Optional[FrozenSet[Tuple[str, ...]]] = None
    #: expected exact distance vector; None = don't check
    distances: Optional[Tuple[Optional[int], ...]] = None
    #: free-form comment tying the entry to the paper's text
    note: str = ""


EXAMPLES: List[PaperExample] = [
    PaperExample(
        name="strong-siv-recurrence",
        section="2.1",
        source="do i = 1, 100\n a(i+1) = a(i)\nenddo",
        kinds=("strong-siv",),
        independent=False,
        vectors=frozenset({(">",)}),  # read-before-write orientation
        distances=(-1,),
        note="the canonical distance-1 recurrence used throughout Section 2",
    ),
    PaperExample(
        name="parity-independence",
        section="3",
        source="do i = 1, 100\n a(2*i) = a(2*i+1)\nenddo",
        kinds=("strong-siv",),
        independent=True,
        note="even cells written, odd cells read: strong SIV, non-integer d",
    ),
    PaperExample(
        name="classification-figure",
        section="3",
        source=(
            "do i = 1, 50\n do j = 1, 50\n do k = 1, 50\n"
            "  a(5, i+1, j) = a(n, i, k) + c(1)\n"
            " enddo\n enddo\nenddo"
        ),
        kinds=("ziv", "strong-siv", "rdiv"),
        note="the ZIV / SIV / MIV taxonomy figure",
    ),
    PaperExample(
        name="coupled-vs-subscript-by-subscript",
        section="2.2",
        source="do i = 1, 100\n a(i+1, i+2) = a(i, i)\nenddo",
        kinds=("strong-siv", "strong-siv"),
        independent=True,
        note=(
            "subscript-by-subscript testing yields the spurious vector (<); "
            "constraint intersection refutes it"
        ),
    ),
    PaperExample(
        name="delta-propagation",
        section="5.3.1",
        source=(
            "do i = 1, 100\n do j = 1, 100\n"
            "  a(i+1, i+j) = a(i, i+j-1)\n enddo\nenddo"
        ),
        kinds=("strong-siv", "miv"),
        independent=False,
        vectors=frozenset({(">", "=")}),
        distances=(-1, 0),
        note="distance constraint d_i reduces the MIV subscript to SIV",
    ),
    PaperExample(
        name="delta-transpose-link",
        section="5.3.2",
        source=(
            "do i = 1, 100\n do j = 1, 100\n"
            "  a(i, j) = a(j, i)\n enddo\nenddo"
        ),
        kinds=("rdiv", "rdiv"),
        independent=False,
        vectors=frozenset({("<", ">"), ("=", "="), (">", "<")}),
        note="linked RDIV subscripts: distances satisfy d_i + d_j = 0",
    ),
    PaperExample(
        name="gcd-independence",
        section="4.4",
        source=(
            "do i = 1, 50\n do j = 1, 50\n"
            "  a(2*i + 2*j) = a(2*i + 2*j - 1)\n enddo\nenddo"
        ),
        kinds=("miv",),
        independent=True,
        note="GCD 2 of the index coefficients does not divide the odd offset",
    ),
    PaperExample(
        name="weak-zero-tomcatv",
        section="4.2",
        source="do i = 1, 100\n b(i) = a(1)\n a(i) = c(i)\nenddo",
        kinds=("weak-zero-siv",),
        independent=False,
        note="the tomcatv first-iteration dependence (loop peeling target)",
    ),
    PaperExample(
        name="weak-crossing-cdl",
        section="4.2",
        source="do i = 1, 100\n a(i) = a(101 - i)\nenddo",
        kinds=("weak-crossing-siv",),
        independent=False,
        note="all dependences cross iteration (N+1)/2 (loop splitting target)",
    ),
    PaperExample(
        name="livermore-wavefront",
        section="5 (distance vectors)",
        source=(
            "do i = 2, 100\n do j = 2, 100\n"
            "  a(i, j) = a(i-1, j) + a(i, j-1)\n enddo\nenddo"
        ),
        independent=False,
        note="the simplified Livermore kernel: distances (1,0) and (0,1)",
    ),
    PaperExample(
        name="triangular-ranges",
        section="4.3",
        source=(
            "do i = 1, 100\n do j = 1, i\n"
            "  a(j) = a(j - 100)\n enddo\nenddo"
        ),
        kinds=("strong-siv",),
        independent=True,
        note=(
            "the index-range algorithm bounds j by [1, 100]; the offset 100 "
            "exceeds the maximal span"
        ),
    ),
    PaperExample(
        name="symbolic-ziv",
        section="4.1/4.5",
        source="do i = 1, 100\n a(n + 1) = a(n + 2)\nenddo",
        kinds=("ziv",),
        independent=True,
        note="symbolic ZIV: the difference simplifies to the constant -1",
    ),
    PaperExample(
        name="symbolic-strong-siv",
        section="4.5",
        source="do i = 1, 100\n a(i + n) = a(i + n + 1)\nenddo",
        kinds=("strong-siv",),
        independent=False,
        distances=(1,),
        note="symbolic additive constants cancel; exact distance survives",
    ),
]


def by_name(name: str) -> PaperExample:
    """Look up a catalog entry."""
    for example in EXAMPLES:
        if example.name == name:
            return example
    raise KeyError(f"no paper example named {name!r}")
