"""Fault-tolerance tests: budgets, degradation, supervision, injection.

The load-bearing property mirrors the engine's contract: a dependence
verdict may be *independent* only when a test proved it, so every fault —
an in-test exception, an exhausted step budget, a crashed or hung worker,
an unparsable routine — must degrade to a conservative assumed-dependence
edge (or a skipped-and-reported routine), never to a lost pair or a
spurious independence.  Faults are injected deterministically through
:mod:`repro.engine.faultinject` (the ``REPRO_FAULTS`` hook).
"""

import pytest

from repro.engine import (
    BudgetExceededError,
    CachedDriver,
    DependenceEngine,
    FailureRecord,
    FaultPolicy,
    PairTestError,
    StepBudget,
    WorkerCrashError,
)
from repro.engine import faultinject
from repro.engine.faultinject import InjectedFaultError, parse_spec
from repro.engine.stats import EngineStats
from repro.fortran.parser import parse_fragment, parse_program
from repro.graph.depgraph import build_dependence_graph
from repro.instrument import TestRecorder

COUPLED = """
      do i = 1, 100
        do j = 1, 100
          A(i+1, i+j) = A(i, i+j-1)
        end do
      end do
"""

TWO_ARRAYS = """
      do i = 1, 100
        A(i+1) = A(i)
        B(i+2) = B(i)
      end do
"""

B_ONLY = """
      do i = 1, 100
        B(i+2) = B(i)
      end do
"""

#: Wide enough to exceed AUTO_SERIAL thresholds indirectly: dispatch is
#: forced with an explicit chunksize, so three statements (9 pairs) give
#: the pool several chunks to fault and recover.
POOL_KERNEL = """
      do i = 1, 100
        A(i+1) = A(i) + B(i+2)
        B(i) = C(i-1) * A(i+3)
        C(i+2) = B(i-3) + C(i)
      end do
"""


def graph_signature(graph):
    edges = []
    for edge in graph.edges:
        edges.append(
            (
                edge.source.position,
                edge.sink.position,
                edge.dep_type.name,
                tuple(sorted(str(v) for v in edge.vectors)),
            )
        )
    edges.sort()
    return (graph.tested_pairs, graph.independent_pairs, tuple(edges))


def recorder_rows(recorder):
    return sorted(recorder.rows())


class TestStepBudget:
    def test_spend_within_limit(self):
        budget = StepBudget(3)
        budget.spend(2)
        assert budget.remaining == 1

    def test_exhaustion_raises(self):
        budget = StepBudget(2)
        budget.spend(2)
        with pytest.raises(BudgetExceededError):
            budget.spend(1)

    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            StepBudget(0)


class TestFaultSpecParsing:
    def test_full_spec(self):
        plan = parse_spec("crash-chunk:1,hang-chunk:2:5.5,pair-error:A,routine-error:S")
        assert plan.crash_chunks == frozenset({1})
        assert plan.hang_chunks == {2: 5.5}
        assert plan.pair_arrays == frozenset({"a"})
        assert plan.routines == frozenset({"s"})

    def test_unknown_and_malformed_directives_ignored(self):
        plan = parse_spec("explode:now,crash-chunk:x,,pair-error:b")
        assert plan.crash_chunks == frozenset()
        assert plan.pair_arrays == frozenset({"b"})

    def test_empty_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(faultinject.ENV_VAR, raising=False)
        assert faultinject.active_plan() is None

    def test_chunk_faults_are_worker_scoped(self, monkeypatch):
        # on_chunk is a no-op in the parent process even with a crash
        # armed — that is what makes serial recovery compute real results.
        monkeypatch.setenv(faultinject.ENV_VAR, "crash-chunk:0")
        assert faultinject.IN_WORKER is False
        faultinject.on_chunk(0)  # must not exit


class TestFailureReporting:
    def test_record_str_and_dict(self):
        record = FailureRecord("budget", "A(i) -> A(i+1)", "exhausted", attempts=3)
        assert "[budget]" in str(record)
        assert "after 3 attempts" in str(record)
        assert record.as_dict()["kind"] == "budget"

    def test_stats_kind_counters_and_report(self):
        stats = EngineStats()
        assert not stats.degraded
        stats.record_failure(FailureRecord("worker-crash", "chunk 0", "boom"))
        stats.record_failure(FailureRecord("chunk-timeout", "chunk 1", "slow"))
        stats.record_failure(FailureRecord("routine", "s/p/r", "bad"))
        assert stats.worker_crashes == 1
        assert stats.chunk_timeouts == 1
        assert stats.routines_skipped == 1
        assert stats.degraded
        report = stats.failure_report()
        assert "fault report: 3 failure(s)" in report
        assert "[worker-crash] chunk 0" in report

    def test_merge_carries_failures(self):
        a, b = EngineStats(), EngineStats()
        b.record_failure(FailureRecord("pair", "x", "y"))
        b.assumed = 2
        a.merge(b)
        assert len(a.failures) == 1 and a.assumed == 2


class TestBudgetDegradation:
    def test_exhausted_budget_becomes_assumed_dependence(self):
        nodes = parse_fragment(COUPLED)
        driver = CachedDriver(policy=FaultPolicy(pair_budget=1))
        recorder = TestRecorder()
        graph = build_dependence_graph(nodes, recorder=recorder, tester=driver)
        # Nothing may be proved independent by a budget trip, and every
        # faulted pair shows up as an all-directions assumed edge.
        assert graph.independent_pairs == 0
        assert graph.edges and all(edge.assumed for edge in graph.edges)
        assert driver.stats.assumed == graph.tested_pairs
        assert {r.kind for r in driver.stats.failures} == {"budget"}
        # Partial test counters from the aborted runs are discarded.
        assert recorder_rows(recorder) == recorder_rows(TestRecorder())

    def test_strict_budget_raises_pair_test_error(self):
        nodes = parse_fragment(COUPLED)
        driver = CachedDriver(policy=FaultPolicy(strict=True, pair_budget=1))
        with pytest.raises(PairTestError) as info:
            build_dependence_graph(nodes, tester=driver)
        assert "BudgetExceededError" in str(info.value)

    def test_default_budget_does_not_trip(self):
        nodes = parse_fragment(COUPLED)
        driver = CachedDriver(policy=FaultPolicy())
        graph = build_dependence_graph(nodes, tester=driver)
        assert not driver.stats.degraded
        assert not any(edge.assumed for edge in graph.edges)


class TestPairErrorInjection:
    def test_faulted_pairs_assumed_and_counters_match_clean_run(
        self, monkeypatch
    ):
        # The A and B statement populations share no candidate pairs, so a
        # run with every A pair faulted must leave counters byte-identical
        # to a clean run over the B statement alone.
        monkeypatch.setenv(faultinject.ENV_VAR, "pair-error:a")
        faulted = TestRecorder()
        driver = CachedDriver(policy=FaultPolicy())
        graph = build_dependence_graph(
            parse_fragment(TWO_ARRAYS), recorder=faulted, tester=driver
        )
        monkeypatch.delenv(faultinject.ENV_VAR)
        clean = TestRecorder()
        clean_graph = build_dependence_graph(
            parse_fragment(B_ONLY), recorder=clean, tester=CachedDriver()
        )
        assert recorder_rows(faulted) == recorder_rows(clean)
        a_edges = [e for e in graph.edges if e.source.ref.array == "a"]
        b_edges = [e for e in graph.edges if e.source.ref.array == "b"]
        assert a_edges and all(edge.assumed for edge in a_edges)
        assert b_edges and not any(edge.assumed for edge in b_edges)
        assert graph.independent_pairs == clean_graph.independent_pairs
        assert all(r.kind == "pair" for r in driver.stats.failures)
        assert "InjectedFaultError" in driver.stats.failures[0].error

    def test_assumed_verdicts_do_not_contaminate_identical_pairs(
        self, monkeypatch
    ):
        # A(i+1)=A(i) and B(i+1)=B(i) share one canonical key; the faulted
        # A verdict must not be served from cache to the healthy B pair.
        monkeypatch.setenv(faultinject.ENV_VAR, "pair-error:a")
        driver = CachedDriver(policy=FaultPolicy())
        graph = build_dependence_graph(
            parse_fragment(
                """
      do i = 1, 100
        A(i+1) = A(i)
        B(i+1) = B(i)
      end do
"""
            ),
            tester=driver,
        )
        b_edges = [e for e in graph.edges if e.source.ref.array == "b"]
        assert b_edges and not any(edge.assumed for edge in b_edges)

    def test_strict_mode_raises(self, monkeypatch):
        monkeypatch.setenv(faultinject.ENV_VAR, "pair-error:a")
        driver = CachedDriver(policy=FaultPolicy(strict=True))
        with pytest.raises(PairTestError):
            build_dependence_graph(parse_fragment(TWO_ARRAYS), tester=driver)


class TestWorkerSupervision:
    def _engine(self, policy, **kwargs):
        return DependenceEngine(jobs=2, chunksize=2, policy=policy, **kwargs)

    def _clean_signature(self, source):
        return graph_signature(
            build_dependence_graph(parse_fragment(source), tester=CachedDriver())
        )

    def test_worker_crash_recovers_with_identical_graph(self, monkeypatch):
        monkeypatch.setenv(faultinject.ENV_VAR, "crash-chunk:0")
        with self._engine(FaultPolicy(restart_backoff=0.0)) as engine:
            graph = engine.build_graph(parse_fragment(POOL_KERNEL))
            stats = engine.stats
        assert stats.worker_crashes == 1
        assert stats.serial_recoveries >= 1
        assert stats.assumed == 0  # parent recovery computed real results
        monkeypatch.delenv(faultinject.ENV_VAR)
        assert graph_signature(graph) == self._clean_signature(POOL_KERNEL)

    def test_hung_worker_times_out_and_recovers(self, monkeypatch):
        monkeypatch.setenv(faultinject.ENV_VAR, "hang-chunk:0:10")
        policy = FaultPolicy(chunk_timeout=1.0, restart_backoff=0.0)
        with self._engine(policy) as engine:
            graph = engine.build_graph(parse_fragment(POOL_KERNEL))
            stats = engine.stats
        assert stats.chunk_timeouts == 1
        assert stats.serial_recoveries >= 1
        monkeypatch.delenv(faultinject.ENV_VAR)
        assert graph_signature(graph) == self._clean_signature(POOL_KERNEL)

    def test_strict_worker_crash_raises(self, monkeypatch):
        monkeypatch.setenv(faultinject.ENV_VAR, "crash-chunk:0")
        policy = FaultPolicy(strict=True, restart_backoff=0.0)
        with self._engine(policy) as engine:
            with pytest.raises(WorkerCrashError):
                engine.build_graph(parse_fragment(POOL_KERNEL))

    def test_engine_pool_usable_after_recovery(self, monkeypatch):
        # A replaced pool must be adopted by the engine: the next build
        # may not go through a dead executor.
        monkeypatch.setenv(faultinject.ENV_VAR, "crash-chunk:0")
        with self._engine(FaultPolicy(restart_backoff=0.0)) as engine:
            engine.build_graph(parse_fragment(POOL_KERNEL))
            monkeypatch.delenv(faultinject.ENV_VAR)
            graph = engine.build_graph(parse_fragment(POOL_KERNEL))
        assert graph_signature(graph) == self._clean_signature(POOL_KERNEL)


class _FakeFuture:
    def __init__(self, value):
        self._value = value

    def done(self):
        return True

    def result(self, timeout=None):
        return self._value


class _FakeExecutor:
    """Executor stub whose ``submit`` starts raising after N calls."""

    def __init__(self, break_after):
        self.break_after = break_after
        self.submitted = 0

    def submit(self, fn, task):
        from concurrent.futures.process import BrokenProcessPool

        if self.submitted >= self.break_after:
            raise BrokenProcessPool(
                "A child process terminated abruptly, "
                "the process pool is not usable anymore"
            )
        self.submitted += 1
        return _FakeFuture(fn(task))

    def shutdown(self, *args, **kwargs):
        pass


class TestSubmitTimeBreak:
    """A worker dying on an early chunk can flag the pool broken while
    the supervisor is *still submitting* later chunks of the same build
    — then ``submit`` itself raises.  That surface must recover exactly
    like a result-time crash, never escape to the caller."""

    def _run(self, policy):
        from repro.engine.supervisor import PoolSupervisor

        stats = EngineStats()
        supervisor = PoolSupervisor(
            _FakeExecutor(break_after=2),
            spawn=lambda: _FakeExecutor(break_after=10**9),
            policy=policy,
            stats=stats,
        )
        results = supervisor.run(
            tasks=list(range(5)),
            worker_fn=lambda t: t * 10,
            serial_runner=lambda t: t * 10,
        )
        return results, stats

    def test_pool_breaking_mid_submit_recovers(self):
        results, stats = self._run(FaultPolicy(restart_backoff=0.0))
        assert results == [0, 10, 20, 30, 40]  # every chunk delivered
        assert stats.worker_crashes == 1
        assert any(
            record.kind == "worker-crash" and "submit" in record.where
            for record in stats.failures
        )

    def test_pool_breaking_mid_submit_strict_raises(self):
        with pytest.raises(WorkerCrashError, match="submitting"):
            self._run(FaultPolicy(strict=True, restart_backoff=0.0))

    def test_retries_exhausted_finishes_serially(self):
        from repro.engine.supervisor import PoolSupervisor

        stats = EngineStats()
        supervisor = PoolSupervisor(
            _FakeExecutor(break_after=0),
            spawn=lambda: _FakeExecutor(break_after=0),
            policy=FaultPolicy(restart_backoff=0.0, max_pool_restarts=2),
            stats=stats,
        )
        results = supervisor.run(
            tasks=list(range(4)),
            worker_fn=lambda t: t,
            serial_runner=lambda t: t,
        )
        assert results == [0, 1, 2, 3]
        assert stats.serial_recoveries >= 4


class TestRoutineIsolation:
    PROGRAM = """
      subroutine good(a, n)
      real a(100)
      do 10 i = 1, n
         a(i+1) = a(i)
 10   continue
      end
      subroutine bad(b, n)
      real b(100)
      do 20 i = 1, n
         b(i+1) = b(i)
 20   continue
      end
"""

    def test_study_skips_faulted_routine_and_reports(self, monkeypatch):
        from repro.study import tables

        program = parse_program(self.PROGRAM, name="prog")
        monkeypatch.setattr(
            tables, "load_corpus", lambda suites=None: {"fake": [program]}
        )
        monkeypatch.setenv(faultinject.ENV_VAR, "routine-error:bad")
        engine = DependenceEngine()
        rows = tables.table3(engine=engine)
        assert engine.stats.routines_skipped == 1
        assert any(
            r.kind == "routine" and "bad" in r.where
            for r in engine.stats.failures
        )
        # The healthy routine's pairs still got tested.
        assert rows[0].pairs_tested > 0
        assert "fault report" in engine.stats.failure_report()

    def test_strict_study_propagates(self, monkeypatch):
        from repro.study import tables

        program = parse_program(self.PROGRAM, name="prog")
        monkeypatch.setattr(
            tables, "load_corpus", lambda suites=None: {"fake": [program]}
        )
        monkeypatch.setenv(faultinject.ENV_VAR, "routine-error:bad")
        engine = DependenceEngine(policy=FaultPolicy(strict=True))
        with pytest.raises(InjectedFaultError):
            tables.table3(engine=engine)
