"""Unit and oracle tests for the I-test baseline."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.baselines.itest import (
    BoundedTerm,
    i_test,
    interval_equation_test,
)

from tests.helpers import pair_context


def term(name, coeff, lo, hi):
    return BoundedTerm(name, coeff, lo, hi)


def brute(terms, constant):
    ranges = [range(t.lo, t.hi + 1) for t in terms]
    for point in itertools.product(*ranges):
        if sum(t.coeff * v for t, v in zip(terms, point)) == constant:
            return True
    return False


class TestIntervalEquation:
    def test_unit_coefficients_exact(self):
        terms = [term("x", 1, 1, 10), term("y", -1, 1, 10)]
        result = interval_equation_test(terms, 3)
        assert result.solvable and result.exact

    def test_refutes_out_of_reach(self):
        terms = [term("x", 1, 1, 10), term("y", -1, 1, 10)]
        result = interval_equation_test(terms, 100)
        assert not result.solvable

    def test_gcd_step(self):
        # 2x + 4y = 7: gcd division empties the interval.
        terms = [term("x", 2, 0, 10), term("y", 4, 0, 10)]
        result = interval_equation_test(terms, 7)
        assert not result.solvable and result.exact

    def test_gcd_then_absorption(self):
        # 2x + 4y = 6 -> x + 2y = 3, solvable within bounds.
        terms = [term("x", 2, 0, 10), term("y", 4, 0, 10)]
        result = interval_equation_test(terms, 6)
        assert result.solvable

    def test_steps_recorded(self):
        terms = [term("x", 1, 0, 5)]
        result = interval_equation_test(terms, 3)
        assert result.steps

    @given(
        st.lists(
            st.tuples(
                st.integers(-4, 4).filter(bool),
                st.integers(-3, 3),
                st.integers(0, 5),
            ),
            min_size=1,
            max_size=3,
        ),
        st.integers(-15, 15),
    )
    @settings(max_examples=200, deadline=None)
    def test_against_brute_force(self, raw_terms, constant):
        terms = [
            term(f"v{k}", coeff, lo, lo + width)
            for k, (coeff, lo, width) in enumerate(raw_terms)
        ]
        result = interval_equation_test(terms, constant)
        truth = brute(terms, constant)
        if not result.solvable:
            assert not truth  # refutation must be sound
        elif result.exact:
            assert truth  # exact solvable answers must be real


class TestITestOnSubscripts:
    def test_proves_independence(self):
        ctx = pair_context("do i = 1, 10\n a(2*i) = a(2*i+1)\nenddo", "a")
        outcome = i_test(ctx.subscripts[0], ctx)
        assert outcome.independent and outcome.exact

    def test_bounded_refutation(self):
        ctx = pair_context("do i = 1, 10\n a(i+50) = a(i)\nenddo", "a")
        outcome = i_test(ctx.subscripts[0], ctx)
        assert outcome.independent

    def test_dependence_detected(self):
        ctx = pair_context("do i = 1, 10\n a(i+1) = a(i)\nenddo", "a")
        outcome = i_test(ctx.subscripts[0], ctx)
        assert outcome.applicable and not outcome.independent
        assert outcome.notes["definitive"]

    def test_symbolic_bound_not_applicable(self):
        ctx = pair_context("do i = 1, n\n a(i+1) = a(i)\nenddo", "a")
        outcome = i_test(ctx.subscripts[0], ctx)
        assert not outcome.applicable

    def test_miv_subscript(self):
        src = "do i=1,8\n do j=1,8\n a(2*i+2*j) = a(2*i+2*j-1)\n enddo\nenddo"
        ctx = pair_context(src, "a")
        outcome = i_test(ctx.subscripts[0], ctx)
        assert outcome.independent

    def test_agrees_with_exact_siv_on_siv_shapes(self):
        """On bounded SIV subscripts the I-test matches the exact SIV test."""
        from repro.single.siv import siv_test

        cases = [
            ("i+1", "i"), ("2*i", "2*i+1"), ("2*i", "i+5"),
            ("i", "1"), ("i", "20"), ("3*i+1", "2*i"),
        ]
        for write, read in cases:
            ctx = pair_context(
                f"do i = 1, 10\n a({write}) = a({read})\nenddo", "a"
            )
            itest_outcome = i_test(ctx.subscripts[0], ctx)
            siv_outcome = siv_test(ctx.subscripts[0], ctx)
            if itest_outcome.independent:
                assert siv_outcome.independent, (write, read)
