"""Unit tests for the ZIV test (Section 4.1)."""

from repro.ir.context import SymbolEnv
from repro.single.ziv import ziv_test

from tests.helpers import pair_context


def run_ziv(src, symbols=None):
    ctx = pair_context(src, "a", symbols)
    return ziv_test(ctx.subscripts[0], ctx)


class TestConstantZIV:
    def test_distinct_constants_independent(self):
        outcome = run_ziv("do i = 1, 10\n a(1) = a(2)\nenddo")
        assert outcome.independent and outcome.exact

    def test_equal_constants_dependent(self):
        outcome = run_ziv("do i = 1, 10\n a(3) = a(3)\nenddo")
        assert not outcome.independent
        assert outcome.exact
        assert not outcome.constraints  # no direction info from ZIV

    def test_folded_expressions(self):
        outcome = run_ziv("do i = 1, 10\n a(2+3) = a(10-5)\nenddo")
        assert not outcome.independent


class TestSymbolicZIV:
    def test_cancelling_symbols_dependent(self):
        outcome = run_ziv("do i = 1, 10\n a(n) = a(n)\nenddo")
        assert not outcome.independent

    def test_symbolic_difference_nonzero_independent(self):
        # n+1 vs n+2 simplifies to the nonzero constant -1.
        outcome = run_ziv("do i = 1, 10\n a(n+1) = a(n+2)\nenddo")
        assert outcome.independent

    def test_unknown_symbol_conservative(self):
        # n vs m: could be equal for some values.
        outcome = run_ziv("do i = 1, 10\n a(n) = a(m)\nenddo")
        assert not outcome.independent
        assert not outcome.exact

    def test_symbol_range_proves_independence(self):
        # a(n) vs a(0) with n >= 1: n - 0 can never be 0.
        symbols = SymbolEnv().assume("n", lo=1)
        outcome = run_ziv("do i = 1, 10\n a(n) = a(0)\nenddo", symbols)
        assert outcome.independent

    def test_scaled_symbol_difference(self):
        # 2n vs 2n + 1
        outcome = run_ziv("do i = 1, 10\n a(2*n) = a(2*n+1)\nenddo")
        assert outcome.independent


class TestApplicability:
    def test_nonlinear_not_applicable(self):
        ctx = pair_context("do i = 1, 10\n a(k(1)) = a(2)\nenddo", "a")
        outcome = ziv_test(ctx.subscripts[0], ctx)
        assert not outcome.applicable
