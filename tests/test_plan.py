"""Precompiled test-plan tests.

Plans are dispatch schedules, not verdicts: replaying one must produce
byte-identical results and recorder statistics to a from-scratch driver
run, and a plan compiled for one canonical key must refuse to apply to
any other.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.driver import test_dependence
from repro.core.plan import PlanAction, PlanRecorder, StalePlanError, TestPlan
from repro.corpus.generator import random_nest
from repro.corpus.loader import default_symbols
from repro.engine import CachedDriver, DependenceEngine
from repro.graph.depgraph import iter_candidate_pairs
from repro.instrument import TestRecorder
from repro.ir.loop import collect_access_sites


def result_signature(result):
    return (
        result.independent,
        result.exact,
        sorted(str(v) for v in result.direction_vectors),
        [
            (o.test, o.applicable, o.independent, o.exact)
            for o in result.outcomes
        ],
    )


def recorder_rows(recorder):
    return sorted(recorder.rows())


class TestPlanObject:
    def test_check_accepts_own_key(self):
        plan = TestPlan(key=("k",), steps=(((0,), PlanAction.ZIV),))
        assert plan.check(("k",)) is plan

    def test_check_rejects_foreign_key(self):
        plan = TestPlan(key=("k",), steps=())
        with pytest.raises(StalePlanError):
            plan.check(("other",))

    def test_recorder_compiles_in_order(self):
        recorder = PlanRecorder()
        recorder.add((0,), PlanAction.ZIV)
        recorder.add((1, 2), PlanAction.DELTA)
        plan = recorder.compile(("k",))
        assert plan.steps == (((0,), PlanAction.ZIV), ((1, 2), PlanAction.DELTA))


class TestPlanReplayParity:
    """Plain driver vs cached (plan-compiling) vs plan-replaying runs."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_three_way_parity(self, seed):
        nodes = random_nest(seed, depth=2, statements=4, ndim=2)
        symbols = default_symbols()
        sites = collect_access_sites(nodes)
        pairs = list(iter_candidate_pairs(sites))

        # capacity=1 evicts almost every verdict, so a second pass over
        # the pairs misses the verdict cache and replays compiled plans.
        driver = CachedDriver(symbols, capacity=1, plan_capacity=256)
        plain_rec, cached_rec, planned_rec = (
            TestRecorder(), TestRecorder(), TestRecorder(),
        )
        plain, cached = [], []
        for first, second in pairs:
            plain.append(
                result_signature(
                    test_dependence(
                        first, second, symbols=symbols, recorder=plain_rec
                    )
                )
            )
            cached.append(
                result_signature(driver(first, second, recorder=cached_rec))
            )
        planned = [
            result_signature(driver(first, second, recorder=planned_rec))
            for first, second in pairs
        ]
        assert plain == cached == planned
        assert (
            recorder_rows(plain_rec)
            == recorder_rows(cached_rec)
            == recorder_rows(planned_rec)
        )

    def test_plans_replayed_after_verdict_eviction(self):
        nodes = random_nest(3, depth=2, statements=4, ndim=2)
        symbols = default_symbols()
        sites = collect_access_sites(nodes)
        pairs = list(iter_candidate_pairs(sites))
        driver = CachedDriver(symbols, capacity=1, plan_capacity=256)
        for first, second in pairs:
            driver(first, second)
        assert driver.stats.plan_misses > 0
        before = driver.stats.plan_hits
        for first, second in pairs:
            driver(first, second)
        assert driver.stats.plan_hits > before
        assert driver.plan_count() > 0

    def test_stale_plan_cannot_cross_keys(self):
        """A plan stored under one key refuses to run for another shape."""
        nodes = random_nest(5, depth=2, statements=4, ndim=2)
        symbols = default_symbols()
        driver = CachedDriver(symbols)
        sites = collect_access_sites(nodes)
        pairs = list(iter_candidate_pairs(sites))
        keys = []
        for first, second in pairs:
            context, mapping, key = driver.prepare(first, second, symbols)
            driver.resolve(context, mapping, key, None)
            keys.append(key)
        distinct = sorted(set(keys), key=repr)
        assert len(distinct) >= 2, "need two shapes to cross"
        plan = driver.plan_for(distinct[0])
        assert plan is not None
        with pytest.raises(StalePlanError):
            plan.check(distinct[1])


class TestEngineCounters:
    def test_engine_compiles_plans(self):
        nodes = random_nest(11, depth=2, statements=4, ndim=2)
        engine = DependenceEngine(symbols=default_symbols())
        engine.build_graph(nodes)
        assert engine.stats.plan_misses > 0
        assert engine.driver.plan_count() == engine.stats.plan_misses
