"""Cross-cutting property tests: the full driver against the oracle.

Random small loop nests with a realistic mix of subscript shapes are run
through the complete partition-based driver; every verdict is checked
against brute-force enumeration.  This is the strongest correctness
evidence in the suite: soundness must hold unconditionally, and exactness
whenever the driver claims it.
"""

import itertools

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines.subscript_by_subscript import (
    test_dependence_lambda,
    test_dependence_power,
    test_dependence_subscript_by_subscript,
)
from repro.fortran.parser import parse_fragment
from repro.ir.loop import collect_access_sites

from tests.oracle import brute_force_vectors
from tests.scenarios import backend_test_dependence as test_dependence

# The strongest oracle suite runs once per registered backend (see
# conftest.py): soundness and exactness are certified per backend.
apply_backend_scenarios = True

subscript_atoms = st.sampled_from(
    ["i", "j", "i+1", "i-1", "j+1", "2*i", "2*i+1", "i+j", "i+j-1",
     "3", "1", "5-i", "11-i", "2*j", "i+2", "j-2"]
)


def nest_source(write_subs, read_subs):
    write = ", ".join(write_subs)
    read = ", ".join(read_subs)
    return (
        "do i = 1, 5\n do j = 1, 5\n"
        f"  a({write}) = a({read})\n"
        " enddo\nenddo"
    )


def a_sites(src):
    return [
        s
        for s in collect_access_sites(parse_fragment(src))
        if s.ref.array == "a"
    ]


TESTERS = (
    ("partition+delta", test_dependence),
    ("subscript-by-subscript", test_dependence_subscript_by_subscript),
    ("power", test_dependence_power),
    ("lambda", test_dependence_lambda),
)


class TestFullDriverOracle:
    @given(
        st.lists(subscript_atoms, min_size=1, max_size=2),
        st.lists(subscript_atoms, min_size=1, max_size=2),
    )
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.differing_executors])
    def test_all_drivers_sound(self, write_subs, read_subs):
        if len(write_subs) != len(read_subs):
            read_subs = (read_subs * 2)[: len(write_subs)]
        src = nest_source(write_subs, read_subs)
        sites = a_sites(src)
        truth = brute_force_vectors(sites[0], sites[1])
        for name, tester in TESTERS:
            result = tester(sites[0], sites[1])
            if result.independent:
                assert not truth, (name, src)
            else:
                assert truth <= result.direction_vectors, (name, src)

    @given(
        st.lists(subscript_atoms, min_size=1, max_size=2),
        st.lists(subscript_atoms, min_size=1, max_size=2),
    )
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.differing_executors])
    def test_main_driver_exactness(self, write_subs, read_subs):
        if len(write_subs) != len(read_subs):
            read_subs = (read_subs * 2)[: len(write_subs)]
        src = nest_source(write_subs, read_subs)
        sites = a_sites(src)
        result = test_dependence(sites[0], sites[1])
        truth = brute_force_vectors(sites[0], sites[1])
        if result.exact and not result.independent:
            assert truth, ("exact dependence must be real", src)

    @given(
        st.lists(subscript_atoms, min_size=1, max_size=2),
        st.lists(subscript_atoms, min_size=1, max_size=2),
    )
    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.differing_executors])
    def test_delta_never_less_precise_than_sxs(self, write_subs, read_subs):
        """The partition+delta driver must prove independence whenever the
        subscript-by-subscript baseline does (it strictly refines it)."""
        if len(write_subs) != len(read_subs):
            read_subs = (read_subs * 2)[: len(write_subs)]
        src = nest_source(write_subs, read_subs)
        sites = a_sites(src)
        sxs = test_dependence_subscript_by_subscript(sites[0], sites[1])
        full = test_dependence(sites[0], sites[1])
        if sxs.independent:
            assert full.independent, src


class TestSelfPairs:
    @given(st.lists(subscript_atoms, min_size=1, max_size=2))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.differing_executors])
    def test_self_pair_always_dependent_on_eq(self, subs):
        """A reference paired with itself is trivially 'dependent' with at
        least the all-= vector (same iteration, same cell)."""
        src = nest_source(subs, subs)
        sites = a_sites(src)
        write = next(s for s in sites if s.is_write)
        result = test_dependence(write, write)
        truth = brute_force_vectors(write, write)
        assert not result.independent
        assert truth <= result.direction_vectors
