"""Unit tests for the Fourier-Motzkin elimination engine."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.baselines.fme import FMSystem, Inequality, box_system


class TestInequality:
    def test_of_drops_zero_coefficients(self):
        ineq = Inequality.of({"x": 0, "y": 2}, 3)
        assert ineq.variables() == {"y"}

    def test_trivial_classification(self):
        assert Inequality.of({}, 1).is_trivially_true()
        assert Inequality.of({}, -1).is_trivially_false()
        assert not Inequality.of({"x": 1}, -1).is_constant()


class TestFeasibility:
    def test_empty_system_feasible(self):
        assert FMSystem().is_rationally_feasible()

    def test_box_feasible(self):
        system = box_system({"x": (0, 10), "y": (0, 10)})
        assert system.is_rationally_feasible()

    def test_contradictory_bounds(self):
        system = FMSystem()
        system.add({"x": 1}, 5)       # x <= 5
        system.add_ge({"x": 1}, 6)    # x >= 6
        assert not system.is_rationally_feasible()

    def test_equality_constraints(self):
        system = box_system({"x": (0, 10), "y": (0, 10)})
        system.add_eq({"x": 1, "y": 1}, 5)
        assert system.is_rationally_feasible()
        system.add_eq({"x": 1, "y": -1}, 100)
        assert not system.is_rationally_feasible()

    def test_transitive_inference(self):
        # x <= y, y <= z, z <= x - 1: infeasible
        system = FMSystem()
        system.add({"x": 1, "y": -1}, 0)
        system.add({"y": 1, "z": -1}, 0)
        system.add({"z": 1, "x": -1}, -1)
        assert not system.is_rationally_feasible()

    def test_rational_feasible_integer_infeasible(self):
        # 2x = 1 is rationally feasible (x = 1/2): FME cannot exclude it.
        system = FMSystem()
        system.add_eq({"x": 2}, 1)
        assert system.is_rationally_feasible()

    def test_operation_counter_increases(self):
        system = box_system({f"v{k}": (0, 10) for k in range(4)})
        for k in range(3):
            system.add({f"v{k}": 1, f"v{k+1}": -1}, 0)
        assert system.is_rationally_feasible()
        assert system.operations > 0

    def test_open_sides(self):
        system = box_system({"x": (None, 5), "y": (0, None)})
        system.add_ge({"x": 1, "y": 1}, 100)
        assert system.is_rationally_feasible()


class TestElimination:
    def test_eliminate_removes_variable(self):
        system = box_system({"x": (0, 10), "y": (0, 10)})
        system.add({"x": 1, "y": 1}, 5)
        reduced = system.eliminate("x")
        assert "x" not in reduced.variables()

    def test_projection_preserves_feasibility(self):
        system = box_system({"x": (0, 10), "y": (3, 4)})
        reduced = system.eliminate("x")
        assert reduced.is_rationally_feasible()


@st.composite
def random_system(draw):
    names = ["x", "y", "z"]
    system = FMSystem()
    count = draw(st.integers(1, 6))
    inequalities = []
    for _ in range(count):
        coeffs = {
            name: draw(st.integers(-3, 3)) for name in names
        }
        bound = draw(st.integers(-10, 10))
        system.add(coeffs, bound)
        inequalities.append((coeffs, bound))
    return system, inequalities


class TestFMEProperties:
    @given(random_system())
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_grid_search(self, data):
        """If some integer grid point satisfies everything, FME must agree."""
        system, inequalities = data
        grid_hit = False
        for x in range(-6, 7):
            for y in range(-6, 7):
                for z in range(-6, 7):
                    env = {"x": x, "y": y, "z": z}
                    if all(
                        sum(c * env[v] for v, c in coeffs.items()) <= bound
                        for coeffs, bound in inequalities
                    ):
                        grid_hit = True
                        break
                if grid_hit:
                    break
            if grid_hit:
                break
        feasible = system.is_rationally_feasible()
        if grid_hit:
            assert feasible
