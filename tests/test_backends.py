"""The backend registry, fallback behavior, and cross-backend parity.

The scenario-parametrized suites (``test_driver``, ``test_properties``,
``test_corpus_oracle``) certify each backend against the oracle; this
module tests the machinery itself — registration, selection via argument
and environment, graceful degradation without numpy — and asserts
*direct* reference-vs-batched parity: identical verdicts, direction
vectors, recorder deltas, and compiled plans on generated corpora, plus
batch-level behavior (deduplication, error isolation) the per-pair
suites cannot reach.
"""

from __future__ import annotations

import sys
import warnings

import pytest

import repro.backends as backends
from repro.backends import (
    BackendUnavailableError,
    BatchItem,
    TestBackend,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
)
from repro.classify.pairs import PairContext
from repro.core.plan import PlanRecorder
from repro.corpus.generator import random_nest
from repro.corpus.loader import default_symbols, load_corpus
from repro.engine import DependenceEngine
from repro.graph.depgraph import iter_candidate_pairs
from repro.instrument import TestRecorder
from repro.ir.loop import collect_access_sites

from tests.helpers import sites_of
from tests.oracle import random_pair_sample


def result_signature(result):
    """Everything observable about a driver result, for byte-parity checks."""
    if result is None:
        return None
    return (
        result.independent,
        result.exact,
        result.assumed,
        result.failure,
        frozenset(result.direction_vectors),
        result.info.distance_vector() if not result.independent else None,
        [
            (o.test, o.applicable, o.independent, o.exact, o.notes)
            for o in result.outcomes
        ],
    )


def corpus_pairs():
    symbols = default_symbols()
    for _, programs in load_corpus().items():
        for program in programs:
            for routine in program.routines:
                sites = collect_access_sites(routine.body)
                for src, sink in iter_candidate_pairs(sites):
                    yield src, sink, symbols


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert "reference" in backend_names()
        assert "batched" in backend_names()

    def test_get_backend_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(backends.ENV_VAR, raising=False)
        assert get_backend().name == "reference"

    def test_get_backend_by_name(self):
        assert get_backend("reference").name == "reference"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "batched")
        pytest.importorskip("numpy")
        assert get_backend().name == "batched"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(backends.ENV_VAR, "batched")
        assert get_backend("reference").name == "reference"

    def test_unknown_backend_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("no-such-backend")

    def test_instances_are_memoized(self):
        assert get_backend("reference") is get_backend("reference")

    def test_register_and_replace(self):
        class Custom(TestBackend):
            name = "custom-test-backend"

        register_backend("custom-test-backend", Custom)
        try:
            assert get_backend("custom-test-backend").name == "custom-test-backend"
            assert "custom-test-backend" in available_backends()
        finally:
            backends._REGISTRY.pop("custom-test-backend", None)
            backends._INSTANCES.pop("custom-test-backend", None)

    def test_unavailable_backend_warns_and_falls_back(self):
        def broken():
            raise BackendUnavailableError("synthetic prerequisite missing")

        register_backend("broken-test-backend", broken)
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                backend = get_backend("broken-test-backend")
            assert backend.name == "reference"
            assert any(
                issubclass(w.category, RuntimeWarning)
                and "falling back to 'reference'" in str(w.message)
                for w in caught
            )
        finally:
            backends._REGISTRY.pop("broken-test-backend", None)
            backends._INSTANCES.pop("broken-test-backend", None)

    def test_batched_without_numpy_warns_not_raises(self, monkeypatch):
        """--backend batched on a numpy-less install degrades cleanly."""
        monkeypatch.setitem(sys.modules, "numpy", None)  # import -> error
        monkeypatch.delitem(backends._INSTANCES, "batched", raising=False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend = get_backend("batched")
        assert backend.name == "reference"
        assert any(
            issubclass(w.category, RuntimeWarning)
            and "'batched' unavailable" in str(w.message)
            for w in caught
        )
        # The memo must not have cached the degraded resolution under
        # the batched name: with numpy back, batched works again.
        monkeypatch.undo()
        pytest.importorskip("numpy")
        assert get_backend("batched").name == "batched"


@pytest.mark.skipif(
    "batched" not in available_backends(), reason="numpy not installed"
)
class TestBatchedParity:
    def run_both(self, triples, plan_recorders=False):
        ref = get_backend("reference")
        bat = get_backend("batched")
        out = []
        for backend in (ref, bat):
            items = [
                BatchItem(
                    context=PairContext(src, sink, symbols),
                    plan_recorder=PlanRecorder() if plan_recorders else None,
                )
                for src, sink, symbols in triples
            ]
            backend.run_batch(items)
            out.append(items)
        return out

    def test_corpus_parity(self):
        triples = list(corpus_pairs())
        ref_items, bat_items = self.run_both(triples)
        for ir, ib in zip(ref_items, bat_items):
            assert result_signature(ir.result) == result_signature(ib.result)
            assert ir.recorder.rows() == ib.recorder.rows()
            assert ir.error is None and ib.error is None

    def test_generated_nest_parity_with_plans(self):
        triples = []
        for seed in range(12):
            nest = random_nest(seed, depth=2 + seed % 2, statements=5, arrays=3)
            sites = collect_access_sites([nest])
            for src, sink in iter_candidate_pairs(sites):
                triples.append((src, sink, None))
        ref_items, bat_items = self.run_both(triples, plan_recorders=True)
        for ir, ib in zip(ref_items, bat_items):
            assert result_signature(ir.result) == result_signature(ib.result)
            assert ir.recorder.rows() == ib.recorder.rows()
            # The batched backend's synthesized schedules must compile to
            # the exact plan a reference run records, or the plan tier
            # would diverge between backends.
            assert (
                ir.plan_recorder.compile("k").steps
                == ib.plan_recorder.compile("k").steps
            )

    def test_random_sample_parity(self):
        triples = [
            (src, sink, None)
            for src, sink, _ in random_pair_sample(seed=7, max_pairs=120)
        ]
        ref_items, bat_items = self.run_both(triples)
        for ir, ib in zip(ref_items, bat_items):
            assert result_signature(ir.result) == result_signature(ib.result)
            assert ir.recorder.rows() == ib.recorder.rows()

    def test_engine_graphs_identical(self):
        symbols = default_symbols()
        work = []
        for _, programs in load_corpus().items():
            for program in programs:
                for routine in program.routines:
                    work.append(routine.body)
        signatures = {}
        for name in ("reference", "batched"):
            recorder = TestRecorder()
            with DependenceEngine(symbols=symbols, backend=name) as engine:
                graphs = [
                    engine.build_graph(body, recorder=recorder) for body in work
                ]
            signatures[name] = (
                [
                    (g.tested_pairs, g.independent_pairs,
                     sorted(str(e) for e in g.edges))
                    for g in graphs
                ],
                recorder.rows(),
                (engine.stats.hits, engine.stats.misses,
                 engine.stats.plan_hits, engine.stats.plan_misses,
                 engine.stats.assumed),
            )
        assert signatures["reference"] == signatures["batched"]

    def test_batch_error_isolation(self, monkeypatch):
        """A faulted pair degrades alone; batch-mates still get verdicts."""
        from repro.engine import faultinject

        src = "do i = 1, 10\n a(i) = a(i-1)\n b(i) = b(i+2)\nenddo"
        sites = sites_of(src)
        a_sites = [s for s in sites if s.ref.array == "a"]
        b_sites = [s for s in sites if s.ref.array == "b"]
        monkeypatch.setenv(faultinject.ENV_VAR, "pair-error:a")
        items = [
            BatchItem(context=PairContext(a_sites[0], a_sites[1], None)),
            BatchItem(context=PairContext(b_sites[0], b_sites[1], None)),
        ]
        get_backend("batched").run_batch(items)
        assert isinstance(items[0].error, faultinject.InjectedFaultError)
        assert items[0].result is None
        assert items[0].recorder.rows() == []  # partial counters discarded
        assert items[1].error is None and items[1].result is not None


def test_cli_backend_flag(tmp_path, capsys):
    """``analyze --backend`` is accepted for every registered backend."""
    from repro.cli import main

    source = tmp_path / "loop.f"
    source.write_text(
        "      subroutine s(n, a)\n"
        "      integer n, i\n"
        "      real a(n)\n"
        "      do 10 i = 1, n\n"
        "         a(i+1) = a(i)\n"
        "   10 continue\n"
        "      end\n"
    )
    import re

    outputs = {}
    for name in available_backends():
        assert main(["analyze", str(source), "--backend", name]) == 0
        # Statement ids are a process-global counter; normalize them so
        # the comparison sees only the dependence content.
        outputs[name] = re.sub(r"S\d+", "S#", capsys.readouterr().out)
    assert len(set(outputs.values())) == 1, "backends must print identically"
