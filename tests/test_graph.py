"""Unit tests for dependence-graph construction."""

from repro.dirvec.direction import Direction
from repro.fortran.parser import parse_fragment
from repro.graph.depgraph import (
    DependenceType,
    build_dependence_graph,
    dependence_type,
    iter_candidate_pairs,
)
from repro.instrument import TestRecorder
from repro.ir.loop import collect_access_sites

LT, EQ, GT = Direction.LT, Direction.EQ, Direction.GT


def graph_of(src, **kwargs):
    return build_dependence_graph(parse_fragment(src), **kwargs)


class TestDependenceTypes:
    def test_type_table(self):
        assert dependence_type(True, False) is DependenceType.FLOW
        assert dependence_type(False, True) is DependenceType.ANTI
        assert dependence_type(True, True) is DependenceType.OUTPUT
        assert dependence_type(False, False) is DependenceType.INPUT


class TestCandidatePairs:
    def test_requires_write(self):
        sites = collect_access_sites(parse_fragment("a(1) = b(1) + b(2)"))
        pairs = list(iter_candidate_pairs(sites))
        # b-b read pair excluded; a self pair included
        arrays = [(p[0].ref.array, p[1].ref.array) for p in pairs]
        assert ("a", "a") in arrays
        assert ("b", "b") not in arrays

    def test_include_input(self):
        sites = collect_access_sites(parse_fragment("a(1) = b(1) + b(2)"))
        pairs = list(iter_candidate_pairs(sites, include_input=True))
        arrays = [(p[0].ref.array, p[1].ref.array) for p in pairs]
        assert ("b", "b") in arrays

    def test_different_arrays_never_paired(self):
        sites = collect_access_sites(parse_fragment("a(1) = b(1)"))
        for first, second in iter_candidate_pairs(sites):
            assert first.ref.array == second.ref.array


class TestEdges:
    def test_flow_recurrence(self):
        graph = graph_of("do i = 1, 9\n a(i+1) = a(i)\nenddo")
        flows = graph.edges_of_type(DependenceType.FLOW)
        assert len(flows) == 1
        edge = flows[0]
        assert edge.source.is_write and not edge.sink.is_write
        assert edge.vectors == frozenset({(LT,)})
        assert edge.carried_levels() == frozenset({1})

    def test_anti_dependence(self):
        graph = graph_of("do i = 1, 9\n a(i) = a(i+1)\nenddo")
        antis = graph.edges_of_type(DependenceType.ANTI)
        assert len(antis) == 1
        assert antis[0].vectors == frozenset({(LT,)})

    def test_loop_independent_same_statement(self):
        graph = graph_of("do i = 1, 9\n a(i) = a(i) + 1\nenddo")
        antis = graph.edges_of_type(DependenceType.ANTI)
        assert len(antis) == 1
        assert antis[0].loop_independent

    def test_self_output_dependence(self):
        graph = graph_of("do i = 1, 9\n a(5) = b(i)\nenddo")
        outputs = graph.edges_of_type(DependenceType.OUTPUT)
        assert len(outputs) == 1
        assert outputs[0].vectors == frozenset({(LT,)})

    def test_no_self_edge_for_private_cells(self):
        graph = graph_of("do i = 1, 9\n a(i) = b(i)\nenddo")
        assert not graph.edges_of_type(DependenceType.OUTPUT)

    def test_independent_counted(self):
        graph = graph_of("do i = 1, 9\n a(2*i) = a(2*i+1)\nenddo")
        assert graph.independent_pairs >= 1

    def test_input_dependences_optional(self):
        src = "do i = 1, 9\n c(i) = a(i) + a(i)\nenddo"
        without = graph_of(src)
        with_input = graph_of(src, include_input=True)
        assert not without.edges_of_type(DependenceType.INPUT)
        assert with_input.edges_of_type(DependenceType.INPUT)

    def test_reversed_vectors_flipped(self):
        # write a(i+1) read a(i): tested pair (read, write) has vector (>),
        # reported as write->read edge with (<).
        graph = graph_of("do i = 1, 9\n a(i+1) = a(i)\nenddo")
        edge = graph.edges[0]
        assert all(v[0] is not GT for v in edge.vectors)

    def test_distance_vector_sign_follows_edge(self):
        graph = graph_of("do i = 1, 9\n a(i+1) = a(i)\nenddo")
        edge = graph.edges_of_type(DependenceType.FLOW)[0]
        assert edge.distance_vector() == (1,)

    def test_edges_for_array(self):
        src = "do i = 1, 9\n a(i+1) = a(i)\n b(i+1) = b(i)\nenddo"
        graph = graph_of(src)
        assert len(graph.edges_for_array("a")) == 1
        assert len(graph.edges_for_array("b")) == 1

    def test_str_mentions_counts(self):
        graph = graph_of("do i = 1, 9\n a(i+1) = a(i)\nenddo")
        assert "pairs tested" in str(graph)


class TestRecorderIntegration:
    def test_recorder_attached(self):
        recorder = TestRecorder()
        graph = graph_of(
            "do i = 1, 9\n a(i+1) = a(i)\nenddo", recorder=recorder
        )
        assert graph.recorder is recorder
        assert recorder.applications["strong-siv"] >= 1


class TestNetworkx:
    def test_export(self):
        graph = graph_of("do i = 1, 9\n a(i+1) = a(i)\nenddo")
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_edges() == len(graph.edges)
        for _, _, data in nx_graph.edges(data=True):
            assert "dep_type" in data and "vectors" in data


class TestCarriedBy:
    def test_edges_carried_by_loop(self):
        src = "do i=1,9\n do j=1,9\n a(i, j) = a(i-1, j)\n enddo\nenddo"
        nodes = parse_fragment(src)
        graph = build_dependence_graph(nodes)
        outer = nodes[0]
        inner = outer.body[0]
        assert graph.edges_carried_by(outer)
        assert not graph.edges_carried_by(inner)
