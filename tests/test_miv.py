"""Unit and oracle tests for the MIV tests: GCD and Banerjee (Section 4.4)."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.dirvec.direction import Direction
from repro.fortran.parser import parse_fragment
from repro.ir.context import SymbolEnv
from repro.ir.loop import collect_access_sites
from repro.single.miv import (
    banerjee_bounds,
    banerjee_gcd_test,
    banerjee_test,
    direction_hierarchy,
    gcd_test,
)

from tests.helpers import pair_context
from tests.oracle import brute_force_vectors, eval_expr


def miv_fixture(write_sub, read_sub, n=8):
    src = (
        f"do i = 1, {n}\n do j = 1, {n}\n"
        f"  a({write_sub}) = a({read_sub})\n enddo\nenddo"
    )
    ctx = pair_context(src, "a")
    sites = [
        s for s in collect_access_sites(parse_fragment(src)) if s.ref.array == "a"
    ]
    return ctx, ctx.subscripts[0], sites


class TestGCD:
    def test_divisible_maybe_dependent(self):
        ctx, pair, _ = miv_fixture("2*i + 2*j", "2*i + 2*j + 2")
        outcome = gcd_test(pair, ctx)
        assert outcome.applicable and not outcome.independent

    def test_non_divisible_independent(self):
        # the paper's GCD example: gcd 2 does not divide the odd constant
        ctx, pair, _ = miv_fixture("2*i + 2*j", "2*i + 2*j - 1")
        outcome = gcd_test(pair, ctx)
        assert outcome.independent and outcome.exact

    def test_symbolic_divisible_coefficients(self):
        # 2i + 2j vs 2i + 2j + 2n + 1: symbols' coefficients divisible by 2,
        # residual constant 1 is not.
        ctx, pair, _ = miv_fixture("2*i + 2*j", "2*i + 2*j + 2*n + 1")
        outcome = gcd_test(pair, ctx)
        assert outcome.independent

    def test_symbolic_non_divisible_conservative(self):
        ctx, pair, _ = miv_fixture("2*i + 2*j", "2*i + 2*j + n")
        outcome = gcd_test(pair, ctx)
        assert not outcome.independent

    def test_ziv_not_applicable(self):
        src = "do i = 1, 5\n a(1) = a(2)\nenddo"
        ctx = pair_context(src, "a")
        assert not gcd_test(ctx.subscripts[0], ctx).applicable

    @given(
        st.integers(-3, 3), st.integers(-3, 3),
        st.integers(-3, 3), st.integers(-3, 3),
        st.integers(-9, 9),
    )
    @settings(max_examples=200, deadline=None)
    def test_gcd_soundness(self, a1, b1, a2, b2, c):
        """If the GCD test claims independence, no unconstrained solution."""
        if a1 == a2 and b1 == b2:
            return  # difference would be ZIV
        write_sub = f"{a1}*i + {b1}*j"
        read_sub = f"{a2}*i + {b2}*j + {c}"
        ctx, pair, _ = miv_fixture(write_sub, read_sub)
        outcome = gcd_test(pair, ctx)
        if outcome.applicable and outcome.independent:
            # no integer solution anywhere: check a wide window
            found = any(
                a2 * x2 + b2 * y2 + c == a1 * x1 + b1 * y1
                for x1, y1, x2, y2 in itertools.product(range(-6, 7), repeat=4)
            )
            assert not found


class TestBanerjeeBounds:
    def test_unconstrained_bounds(self):
        # h = (i + j) - (i' + j' + 3); i,j,i',j' in [1,8]
        ctx, pair, _ = miv_fixture("i + j", "i + j + 3")
        bounds = banerjee_bounds(pair, ctx)
        # source read (i+j+3), sink write (i+j): h = src - sink
        assert bounds.contains(0)

    def test_direction_constrained_empty_loop(self):
        src = "do i = 1, 1\n a(i) = a(i)\nenddo"
        ctx = pair_context(src, "a")
        bounds = banerjee_bounds(
            ctx.subscripts[0], ctx, {"i": Direction.LT}
        )
        assert bounds.is_empty()

    def test_banerjee_disproves_out_of_range(self):
        ctx, pair, _ = miv_fixture("i + j", "i + j + 100")
        outcome = banerjee_test(pair, ctx)
        assert outcome.independent

    def test_exact_for_bounded_triangle(self):
        """Vertex bounds for '<' must match brute-force extrema."""
        ctx, pair, _ = miv_fixture("i + 2*j", "3*i + j + 1", n=5)
        h = pair.difference()
        for direction in (Direction.LT, Direction.EQ, Direction.GT, None):
            bounds = banerjee_bounds(
                pair, ctx, {"i": direction, "j": None}
            )
            values = []
            for i, ip, j, jp in itertools.product(range(1, 6), repeat=4):
                if direction is Direction.LT and not i < ip:
                    continue
                if direction is Direction.EQ and i != ip:
                    continue
                if direction is Direction.GT and not i > ip:
                    continue
                env = {"i": i, "i'": ip, "j": j, "j'": jp}
                value = sum(c * env[v] for v, c in h.terms) + h.const
                values.append(value)
            assert bounds.lo == min(values)
            assert bounds.hi == max(values)


class TestDirectionHierarchy:
    def test_stencil_vectors(self):
        # write a(i+j), read a(i+j-1): dependences at distance 1 in i+j.
        ctx, pair, sites = miv_fixture("i + j", "i + j - 1", n=4)
        vectors = direction_hierarchy(pair, ctx, ["i", "j"])
        truth = brute_force_vectors(sites[0], sites[1])
        assert truth <= vectors

    def test_banerjee_gcd_full(self):
        ctx, pair, _ = miv_fixture("2*i + 2*j", "2*i + 2*j - 1")
        outcome = banerjee_gcd_test(pair, ctx)
        assert outcome.independent

    def test_couplings_restrict_vectors(self):
        ctx, pair, sites = miv_fixture("i + j", "i + j", n=4)
        outcome = banerjee_gcd_test(pair, ctx)
        assert not outcome.independent
        assert outcome.couplings
        indices, vectors = outcome.couplings[0]
        assert indices == ("i", "j")
        truth = brute_force_vectors(sites[0], sites[1])
        assert truth <= vectors

    @given(
        st.integers(-2, 2), st.integers(-2, 2),
        st.integers(-2, 2), st.integers(-2, 2),
        st.integers(-6, 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_hierarchy_soundness(self, a1, b1, a2, b2, c):
        write_sub = f"{a1}*i + {b1}*j"
        read_sub = f"{a2}*i + {b2}*j + {c}"
        ctx, pair, sites = miv_fixture(write_sub, read_sub, n=5)
        truth = brute_force_vectors(sites[0], sites[1])
        outcome = banerjee_gcd_test(pair, ctx)
        if not outcome.applicable:
            return
        if outcome.independent:
            assert not truth, (write_sub, read_sub)
        elif outcome.couplings:
            indices, vectors = outcome.couplings[0]
            positions = [ctx.common_indices.index(name) for name in indices]
            projected = {tuple(v[p] for p in positions) for v in truth}
            assert projected <= vectors, (write_sub, read_sub)


class TestSymbolicBanerjee:
    def test_unknown_symbol_conservative(self):
        ctx, pair, _ = miv_fixture("i + j", "i + j + n")
        outcome = banerjee_test(pair, ctx)
        assert not outcome.independent

    def test_symbol_range_disproves(self):
        symbols = SymbolEnv().assume("n", lo=100)
        src = (
            "do i = 1, 8\n do j = 1, 8\n"
            "  a(i + j) = a(i + j + n)\n enddo\nenddo"
        )
        ctx = pair_context(src, "a", symbols)
        outcome = banerjee_test(ctx.subscripts[0], ctx)
        assert outcome.independent


class TestAsymmetricTermBounds:
    """Direction-constrained Banerjee bounds with unequal occurrence ranges
    (arising from the Delta test's range tightening)."""

    def test_exact_on_clipped_rectangle(self):
        import itertools as it

        from repro.single.miv import _term_bounds
        from repro.symbolic.ranges import Interval

        for x, y in it.product(range(-2, 3), repeat=2):
            for direction in (Direction.LT, Direction.EQ, Direction.GT, None):
                src = Interval(1, 3)
                sink = Interval(2, 7)
                bounds = _term_bounds(x, y, src, sink, direction)
                values = []
                for u in range(1, 4):
                    for v in range(2, 8):
                        if direction is Direction.LT and not u < v:
                            continue
                        if direction is Direction.EQ and u != v:
                            continue
                        if direction is Direction.GT and not u > v:
                            continue
                        values.append(x * u + y * v)
                if not values:
                    assert bounds.is_empty()
                else:
                    assert bounds.lo == min(values), (x, y, direction)
                    assert bounds.hi == max(values), (x, y, direction)

    def test_disjoint_eq_region_empty(self):
        from repro.single.miv import _term_bounds
        from repro.symbolic.ranges import Interval

        bounds = _term_bounds(
            1, 1, Interval(1, 3), Interval(5, 9), Direction.EQ
        )
        assert bounds.is_empty()

    def test_gt_infeasible_when_sink_above(self):
        from repro.single.miv import _term_bounds
        from repro.symbolic.ranges import Interval

        bounds = _term_bounds(
            1, -1, Interval(1, 3), Interval(4, 9), Direction.GT
        )
        assert bounds.is_empty()
