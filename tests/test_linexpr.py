"""Unit and property tests for repro.symbolic.linexpr."""

import pytest
from hypothesis import given, strategies as st

from repro.symbolic.linexpr import LinearExpr, NonlinearExpressionError, as_linear


def lin(terms=None, const=0):
    return LinearExpr(terms or {}, const)


class TestConstruction:
    def test_constant(self):
        expr = LinearExpr.constant(5)
        assert expr.is_constant()
        assert expr.constant_value() == 5

    def test_var(self):
        expr = LinearExpr.var("i")
        assert expr.coeff("i") == 1
        assert expr.coeff("j") == 0
        assert expr.variables() == {"i"}

    def test_var_with_coeff(self):
        expr = LinearExpr.var("i", 3)
        assert expr.coeff("i") == 3

    def test_zero_coefficients_dropped(self):
        expr = lin({"i": 0, "j": 2})
        assert expr.variables() == {"j"}

    def test_duplicate_names_combine(self):
        expr = LinearExpr([("i", 1), ("i", 2)], 0)
        assert expr.coeff("i") == 3

    def test_rejects_non_string_names(self):
        with pytest.raises(TypeError):
            LinearExpr({1: 2}, 0)

    def test_rejects_non_int_coeff(self):
        with pytest.raises(TypeError):
            LinearExpr({"i": 1.5}, 0)

    def test_rejects_non_int_const(self):
        with pytest.raises(TypeError):
            LinearExpr({}, 1.5)

    def test_zero_and_one_constants(self):
        assert LinearExpr.ZERO == 0
        assert LinearExpr.ONE == 1


class TestArithmetic:
    def test_add(self):
        result = lin({"i": 1}, 2) + lin({"i": 3, "j": 1}, -1)
        assert result == lin({"i": 4, "j": 1}, 1)

    def test_add_int(self):
        assert lin({"i": 1}) + 5 == lin({"i": 1}, 5)

    def test_radd_str(self):
        assert "j" + lin({"i": 1}) == lin({"i": 1, "j": 1})

    def test_sub(self):
        assert lin({"i": 2}, 3) - lin({"i": 2}, 1) == lin({}, 2)

    def test_sub_cancels_symbols(self):
        n_plus_1 = lin({"n": 1}, 1)
        n_plus_2 = lin({"n": 1}, 2)
        assert (n_plus_1 - n_plus_2) == -1

    def test_neg(self):
        assert -lin({"i": 2}, -3) == lin({"i": -2}, 3)

    def test_scale(self):
        assert lin({"i": 2}, 3).scale(-2) == lin({"i": -4}, -6)

    def test_scale_zero(self):
        assert lin({"i": 2}, 3).scale(0) == 0

    def test_mul_by_constant_expr(self):
        assert lin({"i": 1}) * LinearExpr.constant(4) == lin({"i": 4})

    def test_mul_nonlinear_raises(self):
        with pytest.raises(NonlinearExpressionError):
            lin({"i": 1}) * lin({"j": 1})

    def test_exact_div(self):
        assert lin({"i": 4}, 6).exact_div(2) == lin({"i": 2}, 3)

    def test_exact_div_inexact_raises(self):
        with pytest.raises(ValueError):
            lin({"i": 3}).exact_div(2)

    def test_exact_div_inexact_const_raises(self):
        with pytest.raises(ValueError):
            lin({"i": 2}, 3).exact_div(2)

    def test_exact_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            lin({"i": 2}).exact_div(0)


class TestQueries:
    def test_split(self):
        expr = lin({"i": 2, "n": 3}, 5)
        index_part, invariant = expr.split({"i"})
        assert index_part == lin({"i": 2})
        assert invariant == lin({"n": 3}, 5)
        assert index_part + invariant == expr

    def test_content(self):
        assert lin({"i": 4, "j": 6}).content() == 2
        assert lin({}, 7).content() == 0

    def test_indices_in(self):
        expr = lin({"i": 1, "n": 1})
        assert expr.indices_in({"i", "j"}) == {"i"}

    def test_bool(self):
        assert not lin({}, 0)
        assert lin({}, 1)
        assert lin({"i": 1})


class TestSubstitution:
    def test_substitute(self):
        expr = lin({"i": 2, "j": 1}, 1)
        result = expr.substitute("i", lin({"k": 1}, 3))
        assert result == lin({"k": 2, "j": 1}, 7)

    def test_substitute_absent_is_noop(self):
        expr = lin({"j": 1})
        assert expr.substitute("i", lin({"k": 1})) is expr

    def test_substitute_all(self):
        expr = lin({"i": 1, "j": 1})
        result = expr.substitute_all({"i": lin({}, 1), "j": lin({}, 2)})
        assert result == 3

    def test_rename(self):
        expr = lin({"i": 2, "j": 1})
        assert expr.rename({"i": "i'"}) == lin({"i'": 2, "j": 1})

    def test_rename_collision_combines(self):
        expr = lin({"i": 2, "j": 1})
        assert expr.rename({"j": "i"}) == lin({"i": 3})


class TestProtocol:
    def test_eq_int(self):
        assert lin({}, 3) == 3
        assert lin({"i": 1}) != 3

    def test_hashable(self):
        assert hash(lin({"i": 1}, 2)) == hash(lin({"i": 1}, 2))
        mapping = {lin({"i": 1}): "a"}
        assert mapping[lin({"i": 1})] == "a"

    def test_str_formats(self):
        assert str(lin({}, 0)) == "0"
        assert str(lin({"i": 1})) == "i"
        assert str(lin({"i": -1})) == "-i"
        assert str(lin({"i": 2}, -3)) == "2*i - 3"
        assert str(lin({"i": 1, "j": -2}, 1)) == "i - 2*j + 1"

    def test_as_linear_coercions(self):
        assert as_linear(3) == LinearExpr.constant(3)
        assert as_linear("i") == LinearExpr.var("i")
        with pytest.raises(TypeError):
            as_linear(3.5)


small_exprs = st.builds(
    LinearExpr,
    st.dictionaries(st.sampled_from(["i", "j", "n"]), st.integers(-5, 5), max_size=3),
    st.integers(-10, 10),
)


class TestProperties:
    @given(small_exprs, small_exprs)
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(small_exprs, small_exprs, small_exprs)
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(small_exprs)
    def test_neg_is_inverse(self, a):
        assert a + (-a) == 0

    @given(small_exprs, st.integers(-4, 4), st.integers(-4, 4))
    def test_scale_distributes(self, a, k, m):
        assert a.scale(k) + a.scale(m) == a.scale(k + m)

    @given(small_exprs, st.integers(1, 5))
    def test_scale_then_exact_div_roundtrips(self, a, k):
        assert a.scale(k).exact_div(k) == a

    @given(small_exprs, small_exprs)
    def test_hash_consistent_with_eq(self, a, b):
        if a == b:
            assert hash(a) == hash(b)

    @given(small_exprs)
    def test_evaluation_consistency(self, a):
        env = {"i": 2, "j": -3, "n": 7}
        direct = sum(c * env[v] for v, c in a.terms) + a.const
        substituted = a.substitute_all(
            {name: LinearExpr.constant(env[name]) for name in a.variables()}
        )
        assert substituted == direct
