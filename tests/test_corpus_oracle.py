"""Corpus-wide oracle validation.

For the suites whose kernels have small enumerable iteration spaces once
the size symbols are pinned to concrete values, every candidate reference
pair's driver verdict is checked against brute-force enumeration:
independence claims must be truly independent, direction vectors must
cover the truth, and exact results must be dead-on.

Pairs whose subscripts or bounds reference values the oracle cannot
evaluate (opaque scalars, index arrays) are skipped — the skip count is
asserted to stay a minority so the sweep keeps its teeth.
"""

import pytest

from repro.graph.depgraph import iter_candidate_pairs
from repro.ir.context import SymbolEnv
from repro.corpus.loader import load_suite

from tests.oracle import brute_force_vectors, eval_expr
from tests.scenarios import backend_test_dependence as test_dependence

# The corpus sweep runs once per registered backend (see conftest.py),
# so every backend's verdicts are certified against brute force.
apply_backend_scenarios = True

#: Concrete values for the corpus size symbols: small enough to enumerate,
#: big enough to exercise offsets up to ~4.
SYMBOL_VALUES = {
    "n": 7, "m": 6, "nm": 7, "lda": 7, "ldt": 7, "ldm": 7,
    "il": 6, "jl": 6, "jn": 6, "kn": 6, "n1": 6, "n2": 6, "nt": 3,
    "low": 1, "igh": 6, "nnz": 7, "k": 2, "inc": 2, "itmax": 2,
    "ncycle": 2, "matz": 1,
}


def concrete_env() -> SymbolEnv:
    env = SymbolEnv()
    for name, value in SYMBOL_VALUES.items():
        env = env.assume(name, lo=value, hi=value)
    return env


def _oracle_size(site, values) -> int:
    total = 1
    for loop in site.loops:
        try:
            lo = eval_expr(loop.lower, dict(values))
            hi = eval_expr(loop.upper, dict(values))
        except (KeyError, ValueError):
            return -1
        total *= max(0, hi - lo + 1)
    return total


@pytest.mark.parametrize("suite", ["cdl", "linpack", "livermore", "eispack", "riceps"])
def test_suite_against_oracle(suite):
    symbols = concrete_env()
    checked = skipped = 0
    for program in load_suite(suite):
        for routine in program.routines:
            sites = routine.access_sites()
            for src, sink in iter_candidate_pairs(sites):
                if _oracle_size(src, SYMBOL_VALUES) < 0 or _oracle_size(
                    sink, SYMBOL_VALUES
                ) < 0:
                    skipped += 1
                    continue
                if (
                    _oracle_size(src, SYMBOL_VALUES)
                    * _oracle_size(sink, SYMBOL_VALUES)
                    > 500_000
                ):
                    skipped += 1
                    continue
                try:
                    truth = brute_force_vectors(src, sink, dict(SYMBOL_VALUES))
                except (KeyError, ValueError):
                    skipped += 1  # opaque scalar / index array in a subscript
                    continue
                result = test_dependence(src, sink, symbols)
                checked += 1
                label = (program.name, routine.name, str(src.ref), str(sink.ref))
                if result.independent:
                    assert not truth, label
                else:
                    assert truth <= result.direction_vectors, label
                    if result.exact:
                        # "exact" certifies the existence verdict (a real
                        # dependence exists), not vector-set tightness.
                        assert truth, label
    assert checked > 20, f"{suite}: oracle sweep lost its teeth ({checked} checked)"
    # deep triple nests exceed the enumeration cap (eispack especially);
    # the sweep keeps teeth as long as a healthy absolute count is checked.
    assert skipped <= 2 * checked, f"{suite}: too many skips ({skipped} vs {checked})"
