"""Engine tests: canonical keys, the LRU cache, and builder parity.

The load-bearing property: the serial, cached, and parallel builders must
produce byte-identical dependence graphs and recorder statistics for any
statement list.  Alongside it, the canonical key must be exactly as
coarse as the driver's observable inputs — sharing across alpha-renamed
twins, never across pairs that differ in bounds, symbols, or orientation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus.generator import random_nest
from repro.corpus.loader import default_symbols, load_corpus
from repro.engine import CachedDriver, DependenceEngine
from repro.engine.canonical import canonical_pair_key, rename_map
from repro.fortran.parser import parse_fragment
from repro.graph.depgraph import build_dependence_graph, iter_candidate_pairs
from repro.instrument import TestRecorder
from repro.ir.context import SymbolEnv
from repro.ir.loop import collect_access_sites


def graph_signature(graph):
    """Everything observable about a graph's verdicts, as plain data."""
    edges = []
    for edge in graph.edges:
        edges.append(
            (
                edge.source.position,
                edge.sink.position,
                edge.dep_type.name,
                tuple(sorted(str(v) for v in edge.vectors)),
                edge.reversed_from_test,
                tuple(sorted(edge.carrier_loops())),
            )
        )
    edges.sort()
    return (graph.tested_pairs, graph.independent_pairs, tuple(edges))


def recorder_rows(recorder):
    return sorted(recorder.rows())


def key_of(source, symbols=None):
    """Canonical key of the first candidate pair of a fragment."""
    sites = collect_access_sites(parse_fragment(source))
    pairs = list(iter_candidate_pairs(sites))
    assert pairs, "fragment has no candidate pairs"
    driver = CachedDriver(symbols)
    _, _, key = driver.prepare(*pairs[0], symbols)
    return key


class TestCanonicalKey:
    def test_alpha_renamed_twins_share_a_key(self):
        a = key_of(
            """
      do i = 1, 100
        A(i+1) = A(i)
      end do
"""
        )
        b = key_of(
            """
      do k = 1, 100
        A(k+1) = A(k)
      end do
"""
        )
        assert a == b

    def test_different_array_names_share_a_key(self):
        # The array's name is not observable by any test; only the
        # subscript structure is.
        a = key_of("      do i = 1, 100\n        A(i+1) = A(i)\n      end do\n")
        b = key_of("      do i = 1, 100\n        B(i+1) = B(i)\n      end do\n")
        assert a == b

    def test_different_bounds_do_not_collide(self):
        a = key_of("      do i = 1, 9\n        A(i+1) = A(i)\n      end do\n")
        b = key_of("      do i = 1, 8\n        A(i+1) = A(i)\n      end do\n")
        assert a != b

    def test_different_offsets_do_not_collide(self):
        a = key_of("      do i = 1, 100\n        A(i+1) = A(i)\n      end do\n")
        b = key_of("      do i = 1, 100\n        A(i+2) = A(i)\n      end do\n")
        assert a != b

    def test_different_symbols_do_not_collide(self):
        # n and m keep their own names in the key, and their assumed
        # ranges ride along, so distinct assumptions never share entries.
        base = "      do i = 1, 100\n        A(i+{sym}) = A(i)\n      end do\n"
        env_n = SymbolEnv().assume("n", lo=1).assume("m", lo=5)
        a = key_of(base.format(sym="n"), env_n)
        b = key_of(base.format(sym="m"), env_n)
        assert a != b

    def test_same_symbol_different_assumptions_do_not_collide(self):
        src = "      do i = 1, 100\n        A(i+n) = A(i)\n      end do\n"
        a = key_of(src, SymbolEnv().assume("n", lo=1))
        b = key_of(src, SymbolEnv().assume("n", lo=2))
        assert a != b

    def test_swapped_orientation_does_not_collide(self):
        # A(i+1)=A(i) and A(i)=A(i+1) yield mirrored constant differences;
        # their direction vectors differ, so their keys must too.
        a = key_of("      do i = 1, 100\n        A(i+1) = A(i)\n      end do\n")
        b = key_of("      do i = 1, 100\n        A(i) = A(i+1)\n      end do\n")
        assert a != b

    def test_rename_map_is_injective(self):
        source = """
      do i = 1, 10
        do j = 1, 10
          A(i, j) = A(j, i) + B(i)
        end do
      end do
"""
        sites = collect_access_sites(parse_fragment(source))
        driver = CachedDriver()
        for pair in iter_candidate_pairs(sites):
            context, mapping, _ = driver.prepare(*pair)
            assert len(set(mapping.values())) == len(mapping)


class TestCachedDriver:
    SRC = """
      do i = 1, 100
        A(i+1) = A(i)
        B(i+1) = B(i)
        C(i+1) = C(i)
      end do
"""

    def test_structural_twins_hit(self):
        sites = collect_access_sites(parse_fragment(self.SRC))
        driver = CachedDriver()
        for first, second in iter_candidate_pairs(sites):
            driver(first, second)
        # Three arrays, identical shape: pairs after the first all hit.
        assert driver.stats.hits > 0
        assert driver.stats.misses < driver.stats.lookups

    def test_lru_eviction_at_capacity_two(self):
        fragments = [
            "      do i = 1, 100\n        A(i+1) = A(i)\n      end do\n",
            "      do i = 1, 100\n        A(i+2) = A(i)\n      end do\n",
            "      do i = 1, 100\n        A(i+3) = A(i)\n      end do\n",
        ]
        pairs = []
        for fragment in fragments:
            sites = collect_access_sites(parse_fragment(fragment))
            pairs.append(next(iter(iter_candidate_pairs(sites))))
        driver = CachedDriver(capacity=2)
        for first, second in pairs:
            driver(first, second)
        assert len(driver) == 2
        assert driver.stats.evictions == 1
        # The first entry (least recently used) was evicted: re-testing
        # pair 0 misses, re-testing pair 2 hits.
        misses = driver.stats.misses
        driver(*pairs[2])
        assert driver.stats.misses == misses
        driver(*pairs[0])
        assert driver.stats.misses == misses + 1

    def test_recorder_parity_on_hits(self):
        sites = collect_access_sites(parse_fragment(self.SRC))
        pairs = list(iter_candidate_pairs(sites))
        fresh = TestRecorder()
        for first, second in pairs:
            from repro.core.driver import test_dependence

            test_dependence(first, second, recorder=fresh)
        driver = CachedDriver()
        cached = TestRecorder()
        for first, second in pairs:
            driver(first, second, recorder=cached)
        assert recorder_rows(fresh) == recorder_rows(cached)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            CachedDriver(capacity=0)


def build_three_ways(nodes, symbols):
    """(signature, recorder rows) for serial / cached / parallel builds."""
    out = []
    serial_recorder = TestRecorder()
    serial = build_dependence_graph(
        nodes, symbols=symbols, recorder=serial_recorder
    )
    out.append((graph_signature(serial), recorder_rows(serial_recorder)))
    for engine in (
        DependenceEngine(symbols=symbols),
        DependenceEngine(symbols=symbols, jobs=2, chunksize=4),
    ):
        recorder = TestRecorder()
        graph = engine.build_graph(nodes, recorder=recorder)
        out.append((graph_signature(graph), recorder_rows(recorder)))
    return out


class TestBuilderParity:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_nests_cached_parity(self, seed):
        """Property: cached verdicts are byte-identical to serial ones."""
        nodes = random_nest(seed, depth=2, statements=4, ndim=2)
        symbols = default_symbols()
        serial_recorder = TestRecorder()
        serial = build_dependence_graph(
            nodes, symbols=symbols, recorder=serial_recorder
        )
        engine = DependenceEngine(symbols=symbols)
        for _ in range(2):  # second build runs fully from cache
            recorder = TestRecorder()
            graph = engine.build_graph(nodes, recorder=recorder)
            assert graph_signature(graph) == graph_signature(serial)
            assert recorder_rows(recorder) == recorder_rows(serial_recorder)

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_random_nests_three_way_parity(self, seed):
        nodes = random_nest(seed, depth=3, statements=5, ndim=2)
        results = build_three_ways(nodes, default_symbols())
        assert results[0] == results[1] == results[2]

    def test_corpus_kernels_three_way_parity(self):
        symbols = default_symbols()
        corpus = load_corpus(["riceps"])
        for programs in corpus.values():
            for program in programs:
                for routine in program.routines:
                    results = build_three_ways(routine.body, symbols)
                    assert results[0] == results[1] == results[2], (
                        f"{program.name}/{routine.name} diverged"
                    )

    def test_parallel_no_dedup_parity(self):
        nodes = random_nest(3, depth=2, statements=5, ndim=2)
        symbols = default_symbols()
        serial_recorder = TestRecorder()
        serial = build_dependence_graph(
            nodes, symbols=symbols, recorder=serial_recorder
        )
        engine = DependenceEngine(
            symbols=symbols, jobs=2, use_cache=False, chunksize=4
        )
        recorder = TestRecorder()
        graph = engine.build_graph(nodes, recorder=recorder)
        assert graph_signature(graph) == graph_signature(serial)
        assert recorder_rows(recorder) == recorder_rows(serial_recorder)

    def test_parallel_edges_resolve_parent_loops(self):
        """Edges built from worker verdicts key to the parent's loops."""
        source = """
      do i = 1, 100
        do j = 1, 100
          A(i, j) = A(i-1, j)
        end do
      end do
"""
        nodes = parse_fragment(source)
        engine = DependenceEngine(jobs=2, chunksize=1)
        graph = engine.build_graph(nodes)
        outer = nodes[0]
        inner = outer.body[0]
        assert graph.edges, "expected a carried flow dependence"
        assert graph.edges_carried_by(outer)
        assert not graph.edges_carried_by(inner)

    def test_engine_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            DependenceEngine(jobs=0)


class TestEngineStats:
    def test_shared_cache_accumulates_across_builds(self):
        nodes = random_nest(5, depth=2, statements=4, ndim=2)
        engine = DependenceEngine(symbols=default_symbols())
        engine.build_graph(nodes)
        first_misses = engine.stats.misses
        engine.build_graph(nodes)
        assert engine.stats.misses == first_misses  # all hits second time
        assert engine.stats.hit_rate > 0

    def test_merge_and_reset(self):
        from repro.engine import EngineStats

        a = EngineStats(hits=2, misses=1, evictions=1, seeded=3, dispatched=4)
        b = EngineStats(hits=1, misses=1)
        b.merge(a)
        assert b.hits == 3 and b.misses == 2 and b.dispatched == 4
        assert b.as_dict()["hit_rate"] == 0.6
        b.reset()
        assert b.lookups == 0 and b.hit_rate == 0.0


class TestAdaptiveDispatch:
    """The parallel builder's cost model and auto-serial fallback."""

    def test_tiny_build_stays_serial(self):
        """Below the pair threshold, --jobs never touches the pool."""
        nodes = random_nest(2, depth=2, statements=3, ndim=2)
        symbols = default_symbols()
        serial = build_dependence_graph(nodes, symbols=symbols)
        with DependenceEngine(symbols=symbols, jobs=2) as engine:
            graph = engine.build_graph(nodes)
            assert engine.stats.auto_serial >= 1
            assert engine.stats.dispatched == 0
            assert engine._pool is None  # lazy pool never created
        assert graph_signature(graph) == graph_signature(serial)

    def test_explicit_chunksize_opts_out_of_adaptivity(self):
        nodes = random_nest(2, depth=2, statements=3, ndim=2)
        symbols = default_symbols()
        with DependenceEngine(symbols=symbols, jobs=2, chunksize=4) as engine:
            engine.build_graph(nodes)
            assert engine.stats.auto_serial == 0
            assert engine.stats.dispatched > 0

    def test_cost_estimate_orders_tiers(self):
        """ZIV-only pairs cost less than MIV pairs, coupled cost most."""
        from repro.engine import estimate_pair_cost

        def first_pair_cost(source):
            sites = collect_access_sites(parse_fragment(source))
            pairs = list(iter_candidate_pairs(sites))
            driver = CachedDriver(default_symbols())
            context, _, _ = driver.prepare(*pairs[0])
            return estimate_pair_cost(context)

        ziv = first_pair_cost(
            "DO 10 I = 1, 100\n      A(1) = A(2)\n   10 CONTINUE"
        )
        siv = first_pair_cost(
            "DO 10 I = 1, 100\n      A(I) = A(I-1)\n   10 CONTINUE"
        )
        coupled = first_pair_cost(
            "DO 10 I = 1, 100\n      DO 20 J = 1, 100\n"
            "      A(I+J, I) = A(I+J-1, I)\n   20 CONTINUE\n   10 CONTINUE"
        )
        assert ziv < siv < coupled


class TestProfiling:
    def test_profile_collects_phases(self):
        nodes = random_nest(7, depth=2, statements=4, ndim=2)
        engine = DependenceEngine(symbols=default_symbols(), profile=True)
        engine.build_graph(nodes)
        engine.build_graph(nodes)  # second pass exercises the hit path
        profile = engine.profile
        assert profile is not None
        phases = profile.as_dict()["phases"]
        assert "prepare" in phases and "test" in phases
        assert "rehydrate" in phases
        assert profile.total_seconds() > 0
        assert "profile" in engine.stats.as_dict()

    def test_profile_off_by_default(self):
        engine = DependenceEngine(symbols=default_symbols())
        assert engine.profile is None
