"""Tests for the test-application recorder."""

from repro.instrument import TestRecorder, maybe_record
from repro.single.outcome import TestOutcome


class TestRecording:
    def test_counts_applications(self):
        recorder = TestRecorder()
        recorder.record(TestOutcome("ziv"))
        recorder.record(TestOutcome.proves_independence("ziv"))
        assert recorder.applications["ziv"] == 2
        assert recorder.independences["ziv"] == 1

    def test_skips_inapplicable(self):
        recorder = TestRecorder()
        recorder.record(TestOutcome.not_applicable("rdiv"))
        assert recorder.applications["rdiv"] == 0

    def test_merge(self):
        a = TestRecorder()
        b = TestRecorder()
        a.record(TestOutcome("gcd"))
        b.record(TestOutcome.proves_independence("gcd"))
        a.merge(b)
        assert a.applications["gcd"] == 2
        assert a.independences["gcd"] == 1

    def test_rows_sorted(self):
        recorder = TestRecorder()
        recorder.record(TestOutcome("ziv"))
        recorder.record(TestOutcome("banerjee"))
        names = [name for name, _, _ in recorder.rows()]
        assert names == sorted(names)

    def test_maybe_record_with_none(self):
        outcome = TestOutcome("ziv")
        assert maybe_record(None, outcome) is outcome

    def test_str_rendering(self):
        recorder = TestRecorder()
        assert "no tests" in str(recorder)
        recorder.record(TestOutcome("ziv"))
        assert "ziv" in str(recorder)


class TestOutcomeType:
    def test_factories(self):
        na = TestOutcome.not_applicable("x")
        assert not na.applicable
        ind = TestOutcome.proves_independence("x")
        assert ind.independent and ind.exact

    def test_str_forms(self):
        assert "not applicable" in str(TestOutcome.not_applicable("t"))
        assert "independent" in str(TestOutcome.proves_independence("t"))
        assert "dependence" in str(TestOutcome("t"))
