"""Unit tests for the λ-test baseline."""

from repro.baselines.lam import lambda_combinations, lambda_test
from repro.baselines.subscript_by_subscript import test_dependence_lambda
from repro.core.driver import test_dependence
from repro.symbolic.linexpr import LinearExpr

from tests.helpers import pair_context, sites_of


class TestLambdaCombinations:
    def test_includes_originals(self):
        eqs = [LinearExpr({"i": 1}, 1), LinearExpr({"i": 2, "j": 1}, 0)]
        combos = list(lambda_combinations(eqs))
        assert eqs[0] in combos and eqs[1] in combos

    def test_cancels_shared_variable(self):
        eqs = [LinearExpr({"i": 1, "j": 1}), LinearExpr({"i": 2, "j": -1})]
        combos = list(lambda_combinations(eqs))
        cancelled = [c for c in combos if "i" not in c.variables() and c not in eqs]
        assert cancelled  # some combination eliminated i


class TestLambdaTest:
    def test_coupled_independence(self):
        # the Delta distance-conflict example is also λ-provable:
        # combining (i + 1 - i') and (i + 2 - i') gives the constant 1.
        ctx = pair_context("do i=1,9\n a(i+1, i+2) = a(i, i)\nenddo", "a")
        outcome = lambda_test(ctx.subscripts, ctx)
        assert outcome.independent

    def test_coupled_dependence_conservative(self):
        ctx = pair_context("do i=1,9\n a(i, i) = a(i, i)\nenddo", "a")
        outcome = lambda_test(ctx.subscripts, ctx)
        assert not outcome.independent

    def test_nonlinear_only_not_applicable(self):
        ctx = pair_context("do i=1,9\n a(i*i) = a(i*i)\nenddo", "a")
        outcome = lambda_test(ctx.subscripts, ctx)
        assert not outcome.applicable

    def test_driver_agrees_with_full_driver_on_separable(self):
        src = "do i=1,9\n a(2*i) = a(2*i+1)\nenddo"
        sites = [s for s in sites_of(src) if s.ref.array == "a"]
        lam = test_dependence_lambda(sites[0], sites[1])
        full = test_dependence(sites[0], sites[1])
        assert lam.independent == full.independent == True  # noqa: E712
